"""Shared benchmark fixtures.

Datasets and indexes are cached in one session-scoped
:class:`~repro.bench.harness.BenchContext`.  Set ``REPRO_BENCH_SCALE``
(e.g. ``0.25``) to shrink every dataset proportionally for a quick run.

Each benchmark prints the same rows/series its paper figure plots (via
``capsys.disabled()`` so the tables appear even under output capture)
and asserts the figure's qualitative *shape* — who wins, how trends
move — never absolute numbers.
"""

from __future__ import annotations

import pytest

from pathlib import Path

from repro.bench.harness import BenchContext
from repro.bench.reporting import format_table, save_csv, slugify
from repro.bench.trajectory import TrajectoryWriter

RESULTS_DIR = Path(__file__).parent / "results"

#: Session-wide trajectory: every `show`-n table is recorded and the
#: JSON artifact (BENCH_PR5.json, or $REPRO_BENCH_TRAJECTORY) written
#: once at session end (merging into any existing artifact, so partial
#: ``-k`` runs extend the trajectory instead of clobbering it).
_TRAJECTORY = TrajectoryWriter()


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext()


@pytest.fixture()
def show(capsys):
    """Print a table through pytest's capture and save it as CSV."""

    def _show(rows, title=""):
        with capsys.disabled():
            print()
            print(format_table(rows, title))
        if title:
            save_csv(rows, RESULTS_DIR / f"{slugify(title)}.csv")
            _TRAJECTORY.record(title, rows)

    return _show


def pytest_sessionfinish(session, exitstatus):
    path = _TRAJECTORY.write()
    if path is not None:
        print(f"\nBenchmark trajectory written to {path}")


def run_once(benchmark, fn):
    """Run a whole sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
