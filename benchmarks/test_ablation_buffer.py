"""Ablation A3 — LRU buffer size sensitivity.

The paper fixes the buffer at 2 % of the network dataset size (§5).
This ablation sweeps the buffer from nothing to generous and shows the
physical-I/O curve that motivates the choice: CCAM's Z-order locality
makes even a small buffer absorb most of the expansion's adjacency
reads, with diminishing returns beyond a few percent.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_sk_queries
from repro.workloads.runner import run_sk_workload

BUFFER_PAGES = (0, 8, 32, 128, 512, 2048)
CONFIG = WorkloadConfig(num_queries=30, num_keywords=3, seed=333)


def test_ablation_buffer_size(ctx, benchmark, show):
    def sweep():
        db = ctx.database("NA")
        index = ctx.index("NA", "sif", file_prefix="bufablation-sif")
        queries = generate_sk_queries(db, CONFIG)
        original = db.disk.buffer.capacity
        rows = []
        try:
            for pages in BUFFER_PAGES:
                db.disk.resize_buffer(pages)
                db.disk.clear_buffer()
                index.counters.reset()
                report = run_sk_workload(db, index, queries)
                rows.append(
                    {
                        "buffer_pages": pages,
                        "avg_physical_io": round(report.avg_io, 1),
                        "avg_time_ms": round(report.avg_response_time * 1e3, 2),
                    }
                )
        finally:
            db.disk.resize_buffer(original)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Ablation A3: physical I/O vs LRU buffer size (NA, SIF)")

    ios = [r["avg_physical_io"] for r in rows]
    # More buffer never hurts, and the first pages buy the most.
    assert all(b <= a + 1e-9 for a, b in zip(ios, ios[1:]))
    assert ios[0] > 1.3 * ios[2], "a small buffer should already pay off"
    # Diminishing returns: the last doubling saves less than the first.
    first_saving = ios[0] - ios[1]
    last_saving = ios[-2] - ios[-1]
    assert first_saving >= last_saving
