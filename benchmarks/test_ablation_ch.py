"""Ablation A5 — Contraction-Hierarchies distance backend.

The paper calls pairwise ``δ(o_i, o_j)`` evaluation "cost expensive"
(§4.1); the CH oracle answers the same exact distances by settling tens
of nodes instead of thousands, and serves SEQ's candidate×candidate
matrix through one bucket-based many-to-many pass.  This ablation runs
the same diversified workload on the standard synthetic dataset under
both backends and records the pairwise-evaluation speedup (answers must
be identical — CH is an oracle, not an approximation).
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

CONFIG = WorkloadConfig(num_queries=10, num_keywords=2, k=6, lambda_=0.7,
                        seed=4455)


def test_ablation_ch_backend(ctx, benchmark, show):
    def sweep():
        db = ctx.database("SYN")
        index = ctx.index("SYN", "sif")
        queries = generate_diversified_queries(db, CONFIG)

        def run(backend):
            db.use_distance_backend(backend)
            out = []
            for q in queries:
                r = db.diversified_search(index, q, method="seq")
                out.append(r)
            return out

        try:
            plain = run("dijkstra")
            oracle = db.ch_oracle()  # built before the timed CH run
            boosted = run("ch")
        finally:
            db.use_distance_backend("dijkstra")

        rows = []
        agg = {"dijkstra_s": 0.0, "ch_s": 0.0, "mismatches": 0}
        for i, (p, b) in enumerate(zip(plain, boosted)):
            dj = p.stats.stage_seconds.get("pairwise_dijkstra", 0.0)
            ch = b.stats.stage_seconds.get("pairwise_dijkstra", 0.0)
            agg["dijkstra_s"] += dj
            agg["ch_s"] += ch
            equal = (
                p.object_ids() == b.object_ids()
                and abs(p.objective_value - b.objective_value) < 1e-9
            )
            if not equal:
                agg["mismatches"] += 1
            rows.append(
                {
                    "query": i,
                    "candidates": p.stats.candidates,
                    "dijkstra_pairwise_ms": round(dj * 1e3, 3),
                    "ch_pairwise_ms": round(ch * 1e3, 3),
                    "speedup": round(dj / max(ch, 1e-9), 2),
                    "ch_settled_nodes": b.stats.backend_settled_nodes,
                    "f_equal": equal,
                }
            )
        build_rows = [
            {
                "nodes": oracle.num_nodes,
                "shortcuts_added": oracle.shortcuts_added,
                "upward_edges": oracle.upward_edges,
                "build_ms": round(oracle.preprocess_seconds * 1e3, 3),
            }
        ]
        return rows, build_rows, agg

    rows, build_rows, agg = run_once(benchmark, sweep)
    show(rows, "Ablation A5: CH vs Dijkstra pairwise distances (SYN)")
    show(build_rows, "Ablation A5: CH oracle construction (SYN)")

    # CH is exact: every query returns the identical answer.
    assert agg["mismatches"] == 0
    # The acceptance bar: >= 2x faster pairwise-distance evaluation
    # across the workload (per-query ratios are noisier; the total is
    # what the trajectory's `speedup` headline tracks).
    assert agg["dijkstra_s"] >= 2.0 * agg["ch_s"], agg
