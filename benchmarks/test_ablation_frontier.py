"""Ablation — CSR-routed INE frontier vs the dict-adjacency loop.

PR 10 lets the database route every expansion (Algorithm 3) over a
flat CSR snapshot: array distance/settled state, contiguous relaxation
ranges, no per-visit ``network.edge()`` dict lookups.  This ablation
runs the same diversified workload (SEQ and COM) under both frontier
modes and records the p50/p95 movement; answers, objective values and
the invariant traversal counters must be identical — the array loop is
a reroute, not an approximation.
"""

import statistics

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

CONFIG = WorkloadConfig(num_queries=24, num_keywords=2, delta_max=2500.0,
                        k=6, lambda_=0.7, seed=6611)


def test_ablation_csr_frontier(ctx, benchmark, show):
    def sweep():
        import time

        db = ctx.database("SYN")
        index = ctx.index("SYN", "sif")
        queries = generate_diversified_queries(db, CONFIG)

        def run(mode, method):
            db.use_frontier_mode(mode)
            out = []
            for q in queries:
                t0 = time.perf_counter()
                r = db.diversified_search(index, q, method=method)
                out.append((time.perf_counter() - t0, r))
            return out

        rows = []
        agg = {"mismatches": 0}
        try:
            for method in ("seq", "com"):
                run("csr", method)  # warm caches/CSR before timing
                dict_runs = run("dict", method)
                csr_runs = run("csr", method)
                for (_, d), (_, c) in zip(dict_runs, csr_runs):
                    same = (
                        d.object_ids() == c.object_ids()
                        and d.objective_value == c.objective_value
                        and d.stats.candidates == c.stats.candidates
                        and d.stats.nodes_accessed == c.stats.nodes_accessed
                        and d.stats.edges_accessed == c.stats.edges_accessed
                    )
                    if not same:
                        agg["mismatches"] += 1
                dict_ms = sorted(t * 1e3 for t, _ in dict_runs)
                csr_ms = sorted(t * 1e3 for t, _ in csr_runs)
                row = {
                    "method": method.upper(),
                    "queries": len(queries),
                    "dict_p50_ms": round(statistics.median(dict_ms), 3),
                    "csr_p50_ms": round(statistics.median(csr_ms), 3),
                    "dict_p95_ms": round(dict_ms[int(0.95 * len(dict_ms))], 3),
                    "csr_p95_ms": round(csr_ms[int(0.95 * len(csr_ms))], 3),
                }
                row["p50_speedup"] = round(
                    row["dict_p50_ms"] / max(row["csr_p50_ms"], 1e-9), 2
                )
                rows.append(row)
        finally:
            db.use_frontier_mode("csr")
        return rows, agg

    rows, agg = run_once(benchmark, sweep)
    show(rows, "Ablation: CSR vs dict INE frontier (SYN diversified)")
    # The frontier is a reroute: zero answer/counter divergence.
    assert agg["mismatches"] == 0
    # Soft performance gate: the CSR frontier must not lose outright
    # (>= 0.75x p50 on both methods keeps the gate robust to CI noise;
    # measured runs land above 1x).
    for row in rows:
        assert row["p50_speedup"] >= 0.75, row
