"""Ablation A6 — hub-label distance backend.

The 2-hop labels answer the same exact distances as CH but replace the
per-query upward searches with sorted label merges, and serve SEQ's
candidate×candidate matrix through one batched label-join kernel.  This
ablation runs a wide diversified workload (single keyword, large range,
k=10 — the pools the pairwise stage actually hurts on) under all three
backends and records hub's pairwise-evaluation speedup over both
Dijkstra and CH.  Answers must be identical — the labels are an exact
oracle, not an approximation.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

# One frequent keyword + a large range produces the big candidate pools
# (hundreds of objects) where the O(n^2) pairwise stage dominates.
CONFIG = WorkloadConfig(num_queries=8, num_keywords=1, delta_max=4000.0,
                        k=10, lambda_=0.7, seed=7781)


def test_ablation_hub_backend(ctx, benchmark, show):
    def sweep():
        db = ctx.database("SYN")
        index = ctx.index("SYN", "sif")
        queries = generate_diversified_queries(db, CONFIG)

        def run(backend):
            db.use_distance_backend(backend)
            return [
                db.diversified_search(index, q, method="seq")
                for q in queries
            ]

        try:
            plain = run("dijkstra")
            db.ch_oracle()  # built before the timed CH run
            ch_runs = run("ch")
            oracle = db.hub_oracle()  # built before the timed hub run
            hub_runs = run("hub")
        finally:
            db.use_distance_backend("dijkstra")

        rows = []
        agg = {"dijkstra_s": 0.0, "ch_s": 0.0, "hub_s": 0.0, "mismatches": 0}
        for i, (p, c, h) in enumerate(zip(plain, ch_runs, hub_runs)):
            dj = p.stats.stage_seconds.get("pairwise_dijkstra", 0.0)
            ch = c.stats.stage_seconds.get("pairwise_dijkstra", 0.0)
            hub = h.stats.stage_seconds.get("pairwise_dijkstra", 0.0)
            agg["dijkstra_s"] += dj
            agg["ch_s"] += ch
            agg["hub_s"] += hub
            equal = (
                p.object_ids() == c.object_ids() == h.object_ids()
                and abs(p.objective_value - h.objective_value) < 1e-9
            )
            if not equal:
                agg["mismatches"] += 1
            rows.append(
                {
                    "query": i,
                    "candidates": p.stats.candidates,
                    "dijkstra_pairwise_ms": round(dj * 1e3, 3),
                    "ch_pairwise_ms": round(ch * 1e3, 3),
                    "hub_pairwise_ms": round(hub * 1e3, 3),
                    "speedup_vs_dijkstra": round(dj / max(hub, 1e-9), 2),
                    "speedup_vs_ch": round(ch / max(hub, 1e-9), 2),
                    "hub_kernel_hits": h.stats.backend_bucket_hits,
                    "f_equal": equal,
                }
            )
        stats = oracle.stats()
        build_rows = [
            {
                "nodes": stats["labels"],
                "label_entries": stats["label_entries"],
                "avg_label_size": round(stats["avg_label_size"], 2),
                "max_label_size": stats["max_label_size"],
                "build_ms": round(stats["build_seconds"] * 1e3, 3),
            }
        ]
        headline = [
            {
                "dijkstra_ms": round(agg["dijkstra_s"] * 1e3, 3),
                "ch_ms": round(agg["ch_s"] * 1e3, 3),
                "hub_ms": round(agg["hub_s"] * 1e3, 3),
                "hub_speedup_vs_dijkstra": round(
                    agg["dijkstra_s"] / max(agg["hub_s"], 1e-9), 2
                ),
                "hub_speedup_vs_ch": round(
                    agg["ch_s"] / max(agg["hub_s"], 1e-9), 2
                ),
                "mismatches": agg["mismatches"],
            }
        ]
        return rows, build_rows, headline, agg

    rows, build_rows, headline, agg = run_once(benchmark, sweep)
    show(rows, "Ablation A6: hub labels vs CH vs Dijkstra pairwise (SYN)")
    show(build_rows, "Ablation A6: hub label construction (SYN)")
    show(headline, "Ablation A6: hub pairwise speedup headline (SYN)")

    # Hub labels are exact: every query returns the identical answer.
    assert agg["mismatches"] == 0
    # The acceptance bar: >= 5x faster pairwise evaluation than plain
    # Dijkstra across the workload — the ">= 5x beyond BENCH_PR5"
    # target, since PR 5's CH ablation recorded ~5.7x on the same
    # stage.  The recorded ratios run far higher (typically 20-30x vs
    # Dijkstra, 2-4x vs CH); the floor keeps the gate robust to noisy
    # CI machines.
    assert agg["dijkstra_s"] >= 5.0 * agg["hub_s"], agg
