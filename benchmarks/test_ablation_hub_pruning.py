"""Ablation — path-cover pruning of hub labels.

PR 10 prunes label entries whose upward distance is not the true
distance (they can never win a join).  This ablation builds the hub
oracle twice over one shared CH — raw search spaces vs pruned — and
records the size reduction and the query-side effect on the batched
label-join kernel, with answers asserted bit-identical.
"""

import time

import numpy as np

from conftest import run_once

from repro.network.hub_labels import HubLabelBackend

POOL = 96
MATRIX_ROUNDS = 5


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_ablation_hub_label_pruning(ctx, benchmark, show):
    def sweep():
        db = ctx.database("SYN")
        network = db.network
        pruned = HubLabelBackend(network)
        raw = HubLabelBackend(network, ch=pruned.ch, prune_labels=False)

        rng = np.random.default_rng(20260808)
        edges = list(network.edges())
        from repro.network.graph import NetworkPosition

        positions = []
        for _ in range(POOL):
            edge = edges[int(rng.integers(0, len(edges)))]
            positions.append(
                NetworkPosition(
                    edge.edge_id, float(rng.uniform(0, edge.weight))
                )
            )

        # Identical answers first (fresh position-label caches each).
        want = raw.position_matrix_array(positions)
        got = pruned.position_matrix_array(positions)
        identical = bool(np.array_equal(got, want))

        def run_matrix(oracle):
            oracle._label_cache.clear()
            for _ in range(MATRIX_ROUNDS):
                oracle.position_matrix_array(positions)

        raw_s = min(_timed(lambda: run_matrix(raw)) for _ in range(3))
        pruned_s = min(
            _timed(lambda: run_matrix(pruned)) for _ in range(3)
        )
        stats = pruned.stats()
        rows = [
            {
                "nodes": stats["labels"],
                "entries_raw": raw.label_entries,
                "entries_pruned": pruned.label_entries,
                "pruned_entries": stats["pruned_entries"],
                "pruned_pct": round(
                    100.0
                    * stats["pruned_entries"]
                    / max(1, stats["label_entries_unpruned"]),
                    1,
                ),
                "avg_label_raw": round(raw.avg_label_size, 2),
                "avg_label_pruned": round(pruned.avg_label_size, 2),
                "matrix_raw_ms": round(raw_s * 1e3, 3),
                "matrix_pruned_ms": round(pruned_s * 1e3, 3),
                "matrix_speedup": round(raw_s / max(pruned_s, 1e-9), 2),
                "identical_matrix": identical,
            }
        ]
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Ablation: hub label path-cover pruning (SYN)")
    row = rows[0]
    # Exactness is the contract; the size drop is the point.
    assert row["identical_matrix"]
    assert row["entries_pruned"] < row["entries_raw"], row
    assert row["avg_label_pruned"] < row["avg_label_raw"], row
