"""Ablation A4 — landmark distance bounds in COM.

COM's θ-skip uses the triangle inequality through the query; an
ALT-style landmark index supplies strictly tighter (still exact) upper
bounds, skipping more pairwise Dijkstras without changing any answer.
The pre-computation (one full Dijkstra per landmark, here through the
CCAM store so its I/O is honestly charged) pays off across a workload.
"""

from conftest import run_once

from repro.network.landmarks import LandmarkIndex
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

CONFIG = WorkloadConfig(num_queries=10, num_keywords=3, k=6, lambda_=0.6,
                        delta_max=2500.0, seed=4444)


def test_ablation_landmark_bounds(ctx, benchmark, show):
    def sweep():
        db = ctx.database("NA")
        index = ctx.index("NA", "sif")
        landmarks = LandmarkIndex(db.ccam, db.network, num_landmarks=8)
        queries = generate_diversified_queries(db, CONFIG)
        rows = []
        agg = {"plain_dijkstras": 0, "lm_dijkstras": 0,
               "plain_thetas": 0, "lm_thetas": 0, "mismatches": 0}
        for i, q in enumerate(queries):
            plain = db.diversified_search(index, q, method="com")
            boosted = db.diversified_search(index, q, method="com",
                                            landmarks=landmarks)
            agg["plain_dijkstras"] += plain.stats.pairwise_dijkstras
            agg["lm_dijkstras"] += boosted.stats.pairwise_dijkstras
            agg["plain_thetas"] += plain.stats.theta_evaluations
            agg["lm_thetas"] += boosted.stats.theta_evaluations
            if abs(plain.objective_value - boosted.objective_value) > 1e-9:
                agg["mismatches"] += 1
            rows.append(
                {
                    "query": i,
                    "plain_dijkstras": plain.stats.pairwise_dijkstras,
                    "landmark_dijkstras": boosted.stats.pairwise_dijkstras,
                    "plain_thetas": plain.stats.theta_evaluations,
                    "landmark_thetas": boosted.stats.theta_evaluations,
                    "f_equal": abs(
                        plain.objective_value - boosted.objective_value
                    ) < 1e-9,
                }
            )
        return rows, agg

    rows, agg = run_once(benchmark, sweep)
    show(rows, "Ablation A4: COM with landmark bounds (NA)")

    # Exactness is untouched...
    assert agg["mismatches"] == 0
    # ...while the tighter bounds skip exact pair-distance (θ)
    # evaluations, and never add Dijkstra runs.
    assert agg["lm_thetas"] <= agg["plain_thetas"]
    assert agg["lm_dijkstras"] <= agg["plain_dijkstras"]
