"""Ablation A1 — exact DP vs greedy edge partitioning (§3.3, §5).

The paper reports the greedy approach "up to two orders of magnitude
faster than the dynamic programming based approach while they achieve
similar performance in terms of I/O costs reduced"; the DP costs
``O(c² m³)`` against the greedy's ``O(c·m·(s_t + |Q|·q_t))``.  This
ablation sweeps the edge size m and checks (a) the DP/greedy time ratio
grows superlinearly with m, (b) the greedy's achieved false-hit cost
stays close to the DP optimum, and (c) the DP is never beaten.
"""

import time

import numpy as np
from conftest import run_once

from repro.index.partition import dp_partition, greedy_partition, partition_cost
from repro.index.query_log import frequency_edge_log
from repro.text.zipf import ZipfSampler


def _synthetic_edge(m, rng, vocab_size=40):
    sampler = ZipfSampler(
        [f"t{i}" for i in range(vocab_size)], z=1.0, seed=int(rng.integers(1e9))
    )
    return [frozenset(sampler.sample_distinct(int(rng.integers(2, 6))))
            for _ in range(m)]


def test_ablation_dp_vs_greedy(ctx, benchmark, show):
    def sweep():
        rng = np.random.default_rng(42)
        rows = []
        for m in (8, 16, 24, 32):
            dp_s = greedy_s = dp_cost = greedy_cost = 0.0
            for _ in range(3):
                kws = _synthetic_edge(m, rng)
                log = frequency_edge_log(kws, num_queries=32, num_terms=3,
                                         rng=rng)
                t0 = time.perf_counter()
                dp_cuts, _ = dp_partition(kws, 5, log)
                dp_s += time.perf_counter() - t0
                t0 = time.perf_counter()
                greedy_cuts, _ = greedy_partition(kws, 5, log)
                greedy_s += time.perf_counter() - t0
                dp_cost += partition_cost(kws, dp_cuts, log)
                greedy_cost += partition_cost(kws, greedy_cuts, log)
            rows.append(
                {
                    "m": m,
                    "dp_ms": round(dp_s * 1e3, 1),
                    "greedy_ms": round(greedy_s * 1e3, 1),
                    "speed_ratio": round(dp_s / max(greedy_s, 1e-9), 1),
                    "dp_cost": round(dp_cost, 2),
                    "greedy_cost": round(greedy_cost, 2),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Ablation A1: DP vs greedy partitioning, growing edge size")

    # The DP/greedy gap explodes with edge size (the paper's motivation
    # for shipping the greedy).
    assert rows[-1]["speed_ratio"] > 4 * max(rows[0]["speed_ratio"], 1.0)
    assert rows[-1]["speed_ratio"] > 5
    for row in rows:
        # DP is optimal: never worse than greedy...
        assert row["dp_cost"] <= row["greedy_cost"] + 1e-9, row
        # ...and the greedy stays close (paper: "similar performance").
        assert row["greedy_cost"] <= row["dp_cost"] * 2.0 + 1.0, row
