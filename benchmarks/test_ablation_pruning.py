"""Ablation A2 — COM's diversity pruning on vs off (§4.3).

With the pruning disabled COM still processes the stream incrementally
but must exhaust it, like SEQ.  The ablation isolates the benefit of
the θ-bound pruning: same answers, fewer candidates and less I/O.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_diversified_queries


CONFIG = WorkloadConfig(num_queries=10, num_keywords=3, k=6, lambda_=0.9,
                        delta_max=2500.0, seed=4242)


def test_ablation_diversity_pruning(ctx, benchmark, show):
    def sweep():
        db = ctx.database("NA")
        index = ctx.index("NA", "sif")
        queries = generate_diversified_queries(db, CONFIG)
        rows = []
        agg = {"on_cands": 0, "off_cands": 0, "on_io": 0, "off_io": 0,
               "value_mismatches": 0, "early_terminations": 0}
        for i, q in enumerate(queries):
            on = db.diversified_search(index, q, method="com",
                                       enable_pruning=True)
            off = db.diversified_search(index, q, method="com",
                                        enable_pruning=False)
            agg["on_cands"] += on.stats.candidates
            agg["off_cands"] += off.stats.candidates
            agg["on_io"] += on.stats.physical_reads
            agg["off_io"] += off.stats.physical_reads
            agg["early_terminations"] += on.stats.expansion_terminated_early
            if abs(on.objective_value - off.objective_value) > 1e-9:
                agg["value_mismatches"] += 1
            rows.append(
                {
                    "query": i,
                    "pruned_cands": on.stats.candidates,
                    "full_cands": off.stats.candidates,
                    "early_stop": on.stats.expansion_terminated_early,
                    "f_on": round(on.objective_value, 4),
                    "f_off": round(off.objective_value, 4),
                }
            )
        return rows, agg

    rows, agg = run_once(benchmark, sweep)
    show(rows, "Ablation A2: COM with and without diversity pruning (NA)")

    # Pruning never changes the answer quality.
    assert agg["value_mismatches"] == 0
    # It does reduce work: fewer candidates processed overall, and the
    # expansion terminates early for at least some queries.
    assert agg["on_cands"] <= agg["off_cands"]
    assert agg["early_terminations"] >= 1
