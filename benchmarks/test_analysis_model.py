"""§3.2 performance-analysis table: predicted vs measured object loads.

The paper derives expected object loads C1 (objects with edges), C2
(inverted file) and C3 (signature-based inverted file) and concludes
"the signature-based inverted indexing technique is expected to achieve
better performance compared with other two alternatives".  This
benchmark measures all three on a dataset matching the model's
assumptions and prints them against the closed-form predictions.
"""

from conftest import run_once

from repro.core.analysis import CostModel
from repro.core.ine import INEExpansion
from repro.datasets.catalog import DatasetProfile, build_dataset
from repro.workloads.queries import WorkloadConfig, generate_sk_queries

UNIFORM = DatasetProfile(
    name="UNIFORM",
    network_kind="planar",
    num_nodes=600,
    neighbours=3,
    num_objects=6000,
    vocabulary_size=150,
    avg_keywords=5,
    zipf_z=0.0,
    num_topics=1,
    seed=99,
)


def test_analysis_cost_model(ctx, benchmark, show):
    def sweep():
        db = build_dataset(UNIFORM)
        indexes = {
            "ccam": db.build_index("ccam"),
            "if": db.build_index("if"),
            "sif": db.build_index("sif"),
        }
        model = CostModel.from_store(db.store)
        rows = []
        for l in (1, 2, 3):
            queries = generate_sk_queries(
                db,
                WorkloadConfig(num_queries=30, num_keywords=l,
                               keyword_source="frequency",
                               delta_max=2500.0, seed=l),
            )
            measured = {}
            edges = 0
            for kind, index in indexes.items():
                index.counters.reset()
                edges = 0
                for q in queries:
                    exp = INEExpansion(
                        db.ccam, db.network, index, q.position, q.terms,
                        q.delta_max,
                    )
                    exp.run_to_completion()
                    edges += exp.stats.edges_accessed
                measured[kind] = index.counters.objects_loaded
            rows.append(
                {
                    "l": l,
                    "C1_pred": round(model.c1_edge_store(edges), 0),
                    "C1_meas": measured["ccam"],
                    "C2_pred": round(model.c2_inverted_file(edges, l), 0),
                    "C2_meas": measured["if"],
                    "C3_pred": round(model.c3_signature(edges, l), 0),
                    "C3_meas": measured["sif"],
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Analysis (§3.2): predicted vs measured object loads")

    for row in rows:
        # The paper's conclusion: C3 <= C2 <= C1, in prediction and
        # in measurement.
        assert row["C3_meas"] <= row["C2_meas"] <= row["C1_meas"], row
        assert row["C3_pred"] <= row["C2_pred"] <= row["C1_pred"], row
        # Closed forms track measurements (C1/C2 tightly; C3 is a
        # homogeneity-assuming lower bound).
        assert row["C1_meas"] <= row["C1_pred"] * 1.5
        assert row["C2_meas"] <= row["C2_pred"] * 1.5
        assert row["C3_meas"] >= row["C3_pred"] * 0.5
