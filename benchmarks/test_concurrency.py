"""Concurrent workload throughput — the engine's ``workers=N`` payoff.

The simulated disk charges ``physical_reads × io_latency`` per query
arithmetically; a :class:`~repro.engine.executor.QueryEngine` built
with ``io_wait_latency`` serves that charge as a real (GIL-releasing)
stall instead, modelling the paper's disk-resident deployment.  Four
workers must then overlap their I/O stalls: identical answers, batch
wall clock cut by ≥ 1.5× (in practice close to the worker count, since
the workload is I/O-bound exactly as the 2014 testbed was).

The buffer pool is cleared before each measured run so serial and
pooled runs pay comparable physical-read counts.
"""

from conftest import run_once

from repro.engine import QueryEngine
from repro.workloads.queries import WorkloadConfig, generate_sk_queries
from repro.workloads.runner import DEFAULT_IO_LATENCY, run_sk_workload

CONFIG = WorkloadConfig(num_queries=24, num_keywords=3, seed=4242)
WORKERS = 4
#: Per-physical-read stall, matching the report's simulated-I/O charge.
IO_WAIT = DEFAULT_IO_LATENCY


def test_concurrent_throughput(ctx, benchmark, show):
    db = ctx.database("SYN")
    index = ctx.index("SYN", "sif")
    queries = generate_sk_queries(db, CONFIG)
    db.engine = QueryEngine(db, io_wait_latency=IO_WAIT)

    def sweep():
        rows = []
        for workers in (1, WORKERS):
            db.disk.clear_buffer()
            report = run_sk_workload(
                db, index, queries, label=f"workers={workers}",
                workers=workers,
            )
            rows.append({
                "workers": workers,
                "wall_clock_s": round(report.wall_clock_seconds, 3),
                "qps": round(report.qps, 1),
                "avg_io": round(report.avg_io, 1),
                "results": report.total_results,
            })
        return rows

    try:
        rows = run_once(benchmark, sweep)
    finally:
        db.engine = QueryEngine(db)

    serial, pooled = rows
    speedup = serial["wall_clock_s"] / max(pooled["wall_clock_s"], 1e-9)
    serial["speedup"] = 1.0
    pooled["speedup"] = round(speedup, 2)
    show(rows, "Concurrency: io-wait engine, serial vs 4 workers")

    # Same answers, same per-query I/O — only the wall clock moves.
    assert pooled["results"] == serial["results"]
    assert pooled["qps"] > serial["qps"]
    assert speedup >= 1.5, rows
