"""Fig. 10 — sensitivity of SIF-P to the query log used at build time.

SIF-P-Real partitions against the actual query load, SIF-P-Freq against
per-edge frequency-weighted synthetic logs (the default), SIF-P-Rand
against uniform per-edge logs.  Expected shape (paper §5.1): Real is
best, Freq close behind, Rand degrades but still beats plain SIF.

The paper's datasets carry 10-15 objects per edge; partition choice
(and hence log sensitivity) only matters when edges hold clearly more
objects than the cut budget, so this benchmark runs on dense variants
of two datasets (~15 objects/edge) — the same density regime as the
paper's NA and TW.
"""

from conftest import run_once

from repro.index.query_log import (
    frequency_log_builder,
    random_log_builder,
    workload_log_builder,
)
from repro.workloads.queries import WorkloadConfig, generate_sk_queries
from repro.workloads.runner import run_sk_workload

CONFIG = WorkloadConfig(
    num_queries=60, num_keywords=3, keyword_source="frequency",
    delta_max=900.0, seed=1010,
)

#: Dense-edge overrides per dataset (paper-scale objects/edge).
DENSE = {
    "NA": dict(num_nodes=900, num_objects=20000),
    "TW": dict(num_nodes=900, num_objects=24000),
}


def test_fig10_query_log_models(ctx, benchmark, show):
    def sweep():
        rows = []
        for dataset in ("NA", "TW"):
            db = ctx.database(dataset, **DENSE[dataset])
            queries = generate_sk_queries(db, CONFIG)
            variants = {
                "SIF-P-Real": db.build_index(
                    "sif-p",
                    log_builder=workload_log_builder(q.terms for q in queries),
                    file_prefix=f"fig10-real-{dataset}",
                ),
                "SIF-P-Freq": db.build_index(
                    "sif-p",
                    log_builder=frequency_log_builder(num_terms=3),
                    file_prefix=f"fig10-freq-{dataset}",
                ),
                "SIF-P-Rand": db.build_index(
                    "sif-p",
                    log_builder=random_log_builder(num_terms=3),
                    file_prefix=f"fig10-rand-{dataset}",
                ),
                "SIF": db.build_index("sif", file_prefix=f"fig10-sif-{dataset}"),
            }
            row = {"dataset": dataset}
            for label, index in variants.items():
                index.counters.reset()
                report = run_sk_workload(db, index, queries, label=label)
                row[label] = round(report.avg_false_hit_objects, 2)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 10: false-hit objects per query-log model (dense edges)")

    for row in rows:
        # Real <= Freq <= Rand, and every SIF-P variant beats plain SIF.
        assert row["SIF-P-Real"] <= row["SIF-P-Freq"] * 1.05, row
        assert row["SIF-P-Freq"] <= row["SIF-P-Rand"] * 1.05, row
        for label in ("SIF-P-Real", "SIF-P-Freq", "SIF-P-Rand"):
            assert row[label] < row["SIF"], (label, row)
