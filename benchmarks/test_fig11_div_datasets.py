"""Fig. 11 — diversified SK search, SEQ vs COM, on all four datasets.

Expected shape (paper §5.2): COM significantly outperforms SEQ on every
dataset because the diversity bounds prune non-promising objects and
terminate the network expansion early.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

DATASETS = ("NA", "SF", "TW", "SYN")
CONFIG = WorkloadConfig(num_queries=8, num_keywords=3, k=6, lambda_=0.8,
                        delta_max=2500.0, seed=1111)


def test_fig11_div_datasets(ctx, benchmark, show):
    def sweep():
        rows = []
        for dataset in DATASETS:
            row = {"dataset": dataset}
            for method in ("seq", "com"):
                report = ctx.diversified_report(dataset, "sif", method, CONFIG)
                row[f"{method.upper()}_ms"] = round(
                    report.avg_response_time * 1e3, 1
                )
                row[f"{method.upper()}_io"] = round(report.avg_io, 1)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 11: diversified search SEQ vs COM per dataset")

    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.05, row
        assert row["COM_io"] <= row["SEQ_io"] * 1.05, row
    # COM wins clearly in aggregate (paper: a multiple, not a margin).
    seq_total = sum(r["SEQ_ms"] for r in rows)
    com_total = sum(r["COM_ms"] for r in rows)
    assert com_total * 1.5 < seq_total
