"""Fig. 12 — diversified search vs the number of query keywords (NA).

Expected shape: COM significantly outperforms SEQ at every l; COM's
cost grows with l (the search region δmax = 500·l grows and more
objects are involved).
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

L_VALUES = (1, 2, 3, 4)


def test_fig12_div_keywords(ctx, benchmark, show):
    def sweep():
        rows = []
        for l in L_VALUES:
            config = WorkloadConfig(
                num_queries=8, num_keywords=l, k=6, lambda_=0.8,
                delta_max=850.0 * l, seed=1212,
            )
            row = {"l": l}
            for method in ("seq", "com"):
                report = ctx.diversified_report("NA", "sif", method, config)
                row[f"{method.upper()}_ms"] = round(
                    report.avg_response_time * 1e3, 1
                )
                row[f"{method.upper()}_cands"] = round(report.avg_candidates, 1)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 12: diversified search vs l on NA")

    for row in rows:
        # When the candidate set barely exceeds k there is nothing to
        # prune and COM's incremental maintenance is pure overhead; the
        # paper's claims concern the large-candidate regime.
        slack = 1.10 if row["SEQ_cands"] > 1.5 * 6 else 1.30
        assert row["COM_ms"] <= row["SEQ_ms"] * slack, row
        assert row["COM_cands"] <= row["SEQ_cands"] * 1.02, row
    # COM consistently degrades as l grows (paper's observation).
    assert rows[-1]["COM_ms"] > rows[0]["COM_ms"]
    # And clearly beats SEQ once candidates outnumber k.
    big = [r for r in rows if r["SEQ_cands"] > 1.5 * 6]
    assert big and all(r["COM_ms"] < r["SEQ_ms"] for r in big)
