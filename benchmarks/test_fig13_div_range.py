"""Fig. 13 — diversified search vs the search range δmax (NA).

Expected shape: COM beats SEQ at every δmax and the gap widens with the
range — SEQ must load *all* candidates and compute their pairwise
distances, while COM's diversity pruning caps the useful frontier.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

DELTAS = (1250, 1750, 2250, 2750)


def test_fig13_div_range(ctx, benchmark, show):
    def sweep():
        rows = []
        for delta in DELTAS:
            config = WorkloadConfig(
                num_queries=8, num_keywords=3, k=6, lambda_=0.8,
                delta_max=float(delta), seed=1313,
            )
            row = {"delta_max": delta}
            for method in ("seq", "com"):
                report = ctx.diversified_report("NA", "sif", method, config)
                row[f"{method.upper()}_ms"] = round(
                    report.avg_response_time * 1e3, 1
                )
                row[f"{method.upper()}_cands"] = round(report.avg_candidates, 1)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 13: diversified search vs delta_max on NA")

    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.10, row
    # The gap widens with the search range (paper: "especially when the
    # search range is larger").
    first_gap = rows[0]["SEQ_ms"] / max(rows[0]["COM_ms"], 1e-9)
    last_gap = rows[-1]["SEQ_ms"] / max(rows[-1]["COM_ms"], 1e-9)
    assert last_gap >= first_gap * 0.95
    assert rows[-1]["SEQ_ms"] - rows[-1]["COM_ms"] > (
        rows[0]["SEQ_ms"] - rows[0]["COM_ms"]
    )
