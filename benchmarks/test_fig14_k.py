"""Fig. 14 — diversified search vs the result size k (NA).

Expected shape: SEQ is insensitive to k (its cost is retrieving all
candidates and their pairwise distances); COM degrades as k grows
because a larger k lowers the pruning threshold θ_T.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

K_VALUES = (5, 10, 15, 20)


def test_fig14_k(ctx, benchmark, show):
    def sweep():
        rows = []
        for k in K_VALUES:
            config = WorkloadConfig(
                num_queries=8, num_keywords=3, k=k, lambda_=0.8,
                delta_max=2750.0, seed=1414,
            )
            row = {"k": k}
            for method in ("seq", "com"):
                report = ctx.diversified_report("NA", "sif", method, config)
                row[f"{method.upper()}_ms"] = round(
                    report.avg_response_time * 1e3, 1
                )
                row[f"{method.upper()}_cands"] = round(report.avg_candidates, 1)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 14: diversified search vs k on NA")

    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.05, row
    # SEQ is flat in k (same candidates regardless).
    seq_values = [r["SEQ_cands"] for r in rows]
    assert max(seq_values) == min(seq_values)
    # COM processes more candidates as k grows (lower θ_T, weaker
    # pruning) — compare sweep endpoints.
    assert rows[-1]["COM_cands"] >= rows[0]["COM_cands"]
