"""Fig. 15 — diversified search vs the trade-off parameter λ (NA).

Expected shape: SEQ is insensitive to λ (it always retrieves every
candidate); COM improves as λ grows because prioritising relevance
shrinks the diversity bounds faster and terminates the expansion
earlier.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

LAMBDAS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig15_lambda(ctx, benchmark, show):
    def sweep():
        rows = []
        for lam in LAMBDAS:
            config = WorkloadConfig(
                num_queries=8, num_keywords=3, k=6, lambda_=lam,
                delta_max=2500.0, seed=1515,
            )
            row = {"lambda": lam}
            for method in ("seq", "com"):
                report = ctx.diversified_report("NA", "sif", method, config)
                row[f"{method.upper()}_ms"] = round(
                    report.avg_response_time * 1e3, 1
                )
                row[f"{method.upper()}_cands"] = round(report.avg_candidates, 1)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 15: diversified search vs lambda on NA")

    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.05, row
    # SEQ flat in lambda; COM's candidate count shrinks as lambda grows.
    seq_values = [r["SEQ_cands"] for r in rows]
    assert max(seq_values) == min(seq_values)
    assert rows[-1]["COM_cands"] <= rows[0]["COM_cands"]
    assert rows[-1]["COM_ms"] <= rows[0]["COM_ms"] * 1.05
