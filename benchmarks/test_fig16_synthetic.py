"""Fig. 16 — scalability sweeps on the synthetic dataset SYN.

(a) term-frequency skew z ∈ 0.9..1.3, (b) number of objects,
(c) keywords per object, (d) vocabulary size.  Expected shapes: both
algorithms degrade with z, object count and keywords per object, and
improve as the vocabulary grows; COM stays ahead of (or level with) SEQ
everywhere and scales better.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

CONFIG = WorkloadConfig(num_queries=8, num_keywords=3, k=6, lambda_=0.8,
                        delta_max=2000.0, seed=1616)


def _both(ctx, overrides, config=CONFIG):
    out = {}
    for method in ("seq", "com"):
        report = ctx.diversified_report(
            "SYN", "sif", method, config, db_overrides=overrides
        )
        out[f"{method.upper()}_ms"] = round(report.avg_response_time * 1e3, 1)
        out[f"{method.upper()}_cands"] = round(report.avg_candidates, 1)
    return out


def test_fig16a_zipf_skew(ctx, benchmark, show):
    def sweep():
        rows = []
        for z in (0.9, 1.0, 1.1, 1.2, 1.3):
            row = {"z": z}
            row.update(_both(ctx, {"zipf_z": z}))
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 16(a): diversified search vs Zipf skew z (SYN)")
    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.05, row
    # Higher skew -> more matching objects -> both degrade.
    assert rows[-1]["SEQ_cands"] > rows[0]["SEQ_cands"]
    assert rows[-1]["SEQ_ms"] > rows[0]["SEQ_ms"]


def test_fig16b_num_objects(ctx, benchmark, show):
    base = 20000
    def sweep():
        rows = []
        for factor in (0.5, 1.0, 1.5, 2.0):
            n = int(base * factor)
            row = {"num_objects": n}
            row.update(_both(ctx, {"num_objects": n}))
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 16(b): diversified search vs number of objects (SYN)")
    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.05, row
    assert rows[-1]["SEQ_ms"] > rows[0]["SEQ_ms"]
    assert rows[-1]["SEQ_cands"] > rows[0]["SEQ_cands"]
    # COM's growth is gentler than SEQ's (paper: "less significant").
    seq_growth = rows[-1]["SEQ_ms"] / max(rows[0]["SEQ_ms"], 1e-9)
    com_growth = rows[-1]["COM_ms"] / max(rows[0]["COM_ms"], 1e-9)
    assert com_growth <= seq_growth * 1.10


def test_fig16c_keywords_per_object(ctx, benchmark, show):
    def sweep():
        rows = []
        for nk in (5, 10, 15, 20):
            row = {"kw_per_obj": nk}
            row.update(_both(ctx, {"avg_keywords": float(nk)}))
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 16(c): diversified search vs keywords per object (SYN)")
    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.05, row
    # More keywords per object -> more objects satisfy the constraint.
    assert rows[-1]["SEQ_cands"] > rows[0]["SEQ_cands"]
    assert rows[-1]["SEQ_ms"] > rows[0]["SEQ_ms"]


def test_fig16d_vocabulary_size(ctx, benchmark, show):
    def sweep():
        rows = []
        # 200..1000 scaled stands in for the paper's 20K..100K.
        for nv in (200, 400, 600, 800, 1000):
            row = {"vocab": nv}
            row.update(_both(ctx, {"vocabulary_size": nv}))
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 16(d): diversified search vs vocabulary size (SYN)")
    for row in rows:
        assert row["COM_ms"] <= row["SEQ_ms"] * 1.05, row
    # A larger vocabulary makes the AND constraint more selective:
    # fewer candidates, faster queries.
    assert rows[-1]["SEQ_cands"] < rows[0]["SEQ_cands"]
    assert rows[-1]["SEQ_ms"] < rows[0]["SEQ_ms"]
