"""Fig. 6 — SK search across the four datasets and four indexes.

(a) query response time, (b) index construction time, (c) index size.

Expected shapes (paper §5.1): IR is the slowest by a large factor
(network-oblivious, pays per-candidate verification); IF improves on it;
SIF and SIF-P improve on IF via signature pruning.  SIF-P has the
longest construction time (edge partitioning); SIF/SIF-P sizes are only
slightly above IF (signatures are compact).
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

DATASETS = ("NA", "SF", "TW", "SYN")
INDEXES = ("ir", "if", "sif", "sif-p")
CONFIG = WorkloadConfig(num_queries=25, num_keywords=3, seed=606)


def test_fig6a_response_time(ctx, benchmark, show):
    def sweep():
        rows = []
        for dataset in DATASETS:
            row = {"dataset": dataset}
            for kind in INDEXES:
                report = ctx.sk_report(dataset, kind, CONFIG)
                row[kind.upper()] = round(report.avg_response_time * 1e3, 2)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 6(a): SK response time (ms) per dataset")

    for row in rows:
        # IR is the outlier; the signature indexes beat the plain
        # inverted file on every dataset.
        assert row["IR"] > row["SIF"], row
        assert row["SIF"] <= row["IF"] * 1.05, row
        assert row["SIF-P"] <= row["IF"] * 1.05, row
    # Aggregate: IR is clearly the slowest overall (paper: ~4x).
    total = {k: sum(r[k.upper()] for r in rows) for k in INDEXES}
    assert total["ir"] > 1.5 * total["sif"]


def test_fig6b_construction_time(ctx, benchmark, show):
    def sweep():
        rows = []
        for dataset in DATASETS:
            row = {"dataset": dataset}
            for kind in INDEXES:
                index = ctx.index(dataset, kind)
                row[kind.upper()] = round(index.build_seconds, 3)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 6(b): index construction time (s)")

    for row in rows:
        # SIF-P pays for partitioning: the longest build among the
        # inverted-file family.  (SIF builds an IF plus signatures, so
        # it is logically >= IF, but single-run wall-clock noise makes
        # that comparison flaky; the partitioning cost is the robust
        # signal.)
        assert row["SIF-P"] >= row["SIF"], row
        assert row["SIF"] >= 0.5 * row["IF"], row


def test_fig6c_index_size(ctx, benchmark, show):
    def sweep():
        rows = []
        for dataset in DATASETS:
            row = {"dataset": dataset}
            for kind in INDEXES:
                index = ctx.index(dataset, kind)
                row[kind.upper()] = round(index.size_bytes() / (1 << 20), 2)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 6(c): index size (MiB)")

    for row in rows:
        # Signatures are compact: SIF within 15 % of IF, SIF-P within
        # 20 % (paper: "only take slightly more space").
        assert row["IF"] <= row["SIF"] <= row["IF"] * 1.15, row
        assert row["SIF-P"] <= row["IF"] * 1.20, row
