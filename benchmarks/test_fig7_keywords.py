"""Fig. 7 — SK search vs the number of query keywords l (dataset NA).

(a) response time and (b) disk accesses for IF / SIF / SIF-P, l = 1..4.
Expected shape: all degrade as l grows (each keyword costs a B+-tree
descent and postings reads, and the search region δmax = 500·l also
grows); SIF significantly outperforms IF; SIF-P is at least as good as
SIF.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

INDEXES = ("if", "sif", "sif-p")
L_VALUES = (1, 2, 3, 4)


def test_fig7_keyword_sweep(ctx, benchmark, show):
    def sweep():
        time_rows, io_rows = [], []
        for l in L_VALUES:
            config = WorkloadConfig(num_queries=25, num_keywords=l, seed=707)
            t_row = {"l": l}
            io_row = {"l": l}
            for kind in INDEXES:
                report = ctx.sk_report("NA", kind, config)
                t_row[kind.upper()] = round(report.avg_response_time * 1e3, 2)
                io_row[kind.upper()] = round(report.avg_io, 1)
            time_rows.append(t_row)
            io_rows.append(io_row)
        return time_rows, io_rows

    time_rows, io_rows = run_once(benchmark, sweep)
    show(time_rows, "Fig 7(a): SK response time (ms) vs l on NA")
    show(io_rows, "Fig 7(b): disk accesses vs l on NA")

    for rows in (time_rows, io_rows):
        for row in rows:
            assert row["SIF"] <= row["IF"] * 1.05, row
            assert row["SIF-P"] <= row["SIF"] * 1.10, row
        # Performance degrades with l (compare the sweep's endpoints).
        for kind in ("IF", "SIF"):
            assert rows[-1][kind] > rows[0][kind], kind
