"""Fig. 8 — SK search vs the maximal search distance δmax.

(a) response time of IF / SIF / SIF-P on NA as δmax grows 250 → 1500:
IF is much more sensitive (false hits grow with the region; IF cannot
avoid their I/O).  (b) the number of candidate objects on all four
datasets grows with δmax.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig

DELTAS = (250, 500, 750, 1000, 1250, 1500)
INDEXES = ("if", "sif", "sif-p")
DATASETS = ("NA", "SF", "TW", "SYN")


def test_fig8a_response_time(ctx, benchmark, show):
    def sweep():
        rows = []
        for delta in DELTAS:
            config = WorkloadConfig(
                num_queries=25, num_keywords=3, delta_max=float(delta), seed=808
            )
            row = {"delta_max": delta}
            for kind in INDEXES:
                report = ctx.sk_report("NA", kind, config)
                row[kind.upper()] = round(report.avg_response_time * 1e3, 2)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 8(a): SK response time (ms) vs delta_max on NA")

    for row in rows:
        assert row["SIF"] <= row["IF"] * 1.05, row
    # IF's growth across the sweep outpaces SIF's (false-hit I/O).
    if_growth = rows[-1]["IF"] - rows[0]["IF"]
    sif_growth = rows[-1]["SIF"] - rows[0]["SIF"]
    assert if_growth > sif_growth
    # Everything degrades with the search radius.
    assert rows[-1]["SIF"] > rows[0]["SIF"]


def test_fig8b_candidates(ctx, benchmark, show):
    def sweep():
        rows = []
        for delta in DELTAS:
            config = WorkloadConfig(
                num_queries=25, num_keywords=3, delta_max=float(delta), seed=808
            )
            row = {"delta_max": delta}
            for dataset in DATASETS:
                report = ctx.sk_report(dataset, "sif", config)
                row[dataset] = round(report.avg_candidates, 1)
            rows.append(row)
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Fig 8(b): candidate objects vs delta_max")

    for dataset in DATASETS:
        assert rows[-1][dataset] > rows[0][dataset], dataset
        # Monotone up to small noise.
        values = [r[dataset] for r in rows]
        assert all(b >= a * 0.8 for a, b in zip(values, values[1:])), dataset
