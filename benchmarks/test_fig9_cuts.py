"""Fig. 9 — space cost-effectiveness of SIF-P on SF.

False hits as the number of maximal cuts grows 2 → 32, against the
group-based alternative SIF-G whose extra term-pair lists cost several
times the space of SIF-P's signatures.  Expected shape: SIF-P's false
hits fall as cuts (index space) grow, and SIF-P is more space
cost-effective than SIF-G.

As in the Fig. 10 benchmark, a dense-edge SF variant (~15 objects per
edge, the paper's density regime) is used so that the cut budget is the
binding constraint.
"""

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_sk_queries
from repro.workloads.runner import run_sk_workload

CUTS = (2, 4, 8, 16, 32)
CONFIG = WorkloadConfig(
    num_queries=60, num_keywords=3, keyword_source="frequency",
    delta_max=900.0, seed=909,
)
DENSE = dict(num_nodes=800, num_objects=22000)


def test_fig9_false_hits_vs_cuts(ctx, benchmark, show):
    def sweep():
        db = ctx.database("SF", **DENSE)
        queries = generate_sk_queries(db, CONFIG)
        rows = []
        for cuts in CUTS:
            index = ctx.index("SF", "sif-p", db_overrides=DENSE, max_cuts=cuts,
                              file_prefix=f"fig9-sifp{cuts}")
            index.counters.reset()
            report = run_sk_workload(db, index, queries, label=f"cuts={cuts}")
            rows.append(
                {
                    "max_cuts": cuts,
                    "SIF-P_false_hit_objs": round(report.avg_false_hit_objects, 2),
                    "sig_bytes": index.signature_size_bytes(),
                }
            )
        # Baselines: plain SIF and the space-hungry SIF-G.
        sif = ctx.index("SF", "sif", db_overrides=DENSE, file_prefix="fig9-sif")
        sif.counters.reset()
        sif_rep = run_sk_workload(db, sif, queries, label="SIF")
        sifg = ctx.index("SF", "sif-g", db_overrides=DENSE, top_terms=25,
                         file_prefix="fig9-sifg")
        sifg.counters.reset()
        sifg_rep = run_sk_workload(db, sifg, queries, label="SIF-G")
        extras = {
            "SIF_false_hit_objs": round(sif_rep.avg_false_hit_objects, 2),
            "SIFG_false_hit_objs": round(sifg_rep.avg_false_hit_objects, 2),
            "SIFG_extra_bytes": sifg.group_size_bytes(),
        }
        return rows, extras

    rows, extras = run_once(benchmark, sweep)
    show(rows, "Fig 9: SIF-P false-hit objects vs max cuts (dense SF)")
    show([extras], "Fig 9 baselines: SIF and SIF-G")

    # More cuts (more signature space) -> fewer false hits.
    assert rows[-1]["SIF-P_false_hit_objs"] < rows[0]["SIF-P_false_hit_objs"]
    assert rows[-1]["sig_bytes"] > rows[0]["sig_bytes"]
    # Every SIF-P configuration beats plain SIF on false hits.
    for row in rows:
        assert row["SIF-P_false_hit_objs"] < extras["SIF_false_hit_objs"]
    # Space cost-effectiveness: SIF-G's extra lists dwarf SIF-P's
    # signatures yet reduce false hits less (the paper's Fig. 9 point).
    assert extras["SIFG_extra_bytes"] > 3 * rows[-1]["sig_bytes"]
    assert rows[-1]["SIF-P_false_hit_objs"] <= extras["SIFG_false_hit_objs"]
