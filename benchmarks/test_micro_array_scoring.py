"""Microbenchmark — vectorized θ scoring vs the scalar path.

The array greedy evaluates the whole θ matrix with one
``theta_matrix`` call and runs each round as a masked ``argmax``; the
scalar path walks a lazy per-pair cache in pure Python.  Both produce
identical selections (property-tested in ``tests/core``); this bench
pins the *performance* claim on pools of >= 256 candidates, where the
O(n²) θ sweep dominates greedy selection.
"""

import time

import numpy as np

from conftest import run_once

from repro.core.diversify import greedy_diversify
from repro.core.objective import DiversificationObjective
from repro.core.queries import ResultItem
from repro.network.graph import NetworkPosition
from repro.network.objects import SpatioTextualObject

POOL = 320
K = 10


def _make_pool(rng):
    items = []
    for i in range(POOL):
        obj = SpatioTextualObject(
            i, NetworkPosition(int(rng.integers(0, 5000)), 0.0),
            frozenset({"x"}),
        )
        items.append(ResultItem(obj, float(rng.uniform(0.0, 900.0))))
    coords = rng.uniform(0.0, 2000.0, size=POOL)
    pair = np.abs(coords[:, None] - coords[None, :])
    return items, pair


def test_micro_vectorized_objective_beats_scalar(benchmark, show):
    def sweep():
        rng = np.random.default_rng(20260808)
        items, pair = _make_pool(rng)
        obj = DiversificationObjective(0.7, 1000.0)

        def pd(a, b):
            return float(pair[a.object.object_id, b.object.object_id])

        def builder(pool):
            rows = [it.object.object_id for it in pool]
            return pair[np.ix_(rows, rows)]

        # Warm both paths once (first-touch numpy setup costs), then
        # take the best of three to damp scheduler noise.
        greedy_diversify(items, K, obj, pd, pair_matrix_builder=builder)
        scalar_s = min(
            _timed(lambda: greedy_diversify(items, K, obj, pd))
            for _ in range(3)
        )
        array_s = min(
            _timed(
                lambda: greedy_diversify(
                    items, K, obj, pd, pair_matrix_builder=builder
                )
            )
            for _ in range(3)
        )
        scalar_sel = greedy_diversify(items, K, obj, pd)
        array_sel = greedy_diversify(
            items, K, obj, pd, pair_matrix_builder=builder
        )
        identical = [it.object.object_id for it in scalar_sel] == [
            it.object.object_id for it in array_sel
        ]
        rows = [
            {
                "pool": POOL,
                "k": K,
                "scalar_ms": round(scalar_s * 1e3, 3),
                "array_ms": round(array_s * 1e3, 3),
                "speedup": round(scalar_s / max(array_s, 1e-9), 2),
                "identical_selection": identical,
            }
        ]
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Micro: vectorized vs scalar greedy scoring")
    row = rows[0]
    assert row["identical_selection"]
    # The satellite gate: the vectorized objective must win outright
    # on >= 256-candidate pools (it typically wins by 10-30x).
    assert row["scalar_ms"] > row["array_ms"], row


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
