"""Microbenchmark — packed bitset signature verification vs set model.

PR 10 replaced ``SignatureFile``'s per-term ``Set[int]`` bitmaps with
packed ``uint64`` rows: the query's AND over its signed terms is
computed once per term set, a single test is one word-index/mask
probe, and ``test_many`` answers a whole frontier of edges with one
vectorised gather.  This bench replays the verification pattern INE
actually generates — many edges probed under one fixed term set — at
SYN scale, against the pre-PR-10 reference (a dict of per-term edge
sets probed edge by edge), and pins the batched path at >= 5x.
Semantics are property-tested in ``tests/index``; the three paths must
also agree bit for bit here.
"""

import time

import numpy as np

from conftest import run_once

QUERIES = 40
TERMS_PER_QUERY = 2


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_micro_signature_bitset_batched_verification(ctx, benchmark, show):
    def sweep():
        db = ctx.database("SYN")
        index = ctx.index("SYN", "sif")
        sig = index.signatures
        edges = list(range(db.network.num_edges))
        rng = np.random.default_rng(20260808)

        # The pre-PR-10 reference model: one Python set of edge ids per
        # signed term, verified edge by edge with set membership.
        set_model = {
            term: set(sig.edges_of(term)) for term in sig.matrix.keys()
        }
        signed = sorted(set_model)
        queries = [
            tuple(
                signed[int(i)]
                for i in rng.choice(
                    len(signed), size=TERMS_PER_QUERY, replace=False
                )
            )
            for _ in range(QUERIES)
        ]

        def run_set_model():
            out = []
            for terms in queries:
                rows = [set_model[t] for t in terms]
                out.append([all(e in row for row in rows) for e in edges])
            return out

        def run_packed_scalar():
            return [
                [sig.test(e, terms) for e in edges] for terms in queries
            ]

        def run_packed_batched():
            return [sig.test_many(edges, terms) for terms in queries]

        # Same bits from all three paths before any timing claims.
        want = run_set_model()
        assert run_packed_scalar() == want
        assert run_packed_batched() == want

        set_s = min(_timed(run_set_model) for _ in range(3))
        scalar_s = min(_timed(run_packed_scalar) for _ in range(3))
        batched_s = min(_timed(run_packed_batched) for _ in range(3))
        rows = [
            {
                "edges": len(edges),
                "queries": QUERIES,
                "terms_per_query": TERMS_PER_QUERY,
                "signed_terms": sig.num_signed_terms,
                "set_model_ms": round(set_s * 1e3, 3),
                "packed_scalar_ms": round(scalar_s * 1e3, 3),
                "packed_batched_ms": round(batched_s * 1e3, 3),
                "batched_speedup": round(set_s / max(batched_s, 1e-9), 2),
                "signature_bytes": sig.size_bytes(),
            }
        ]
        return rows

    rows = run_once(benchmark, sweep)
    show(rows, "Micro: packed bitset signature verification (SYN)")
    row = rows[0]
    # The acceptance bar: batched packed verification >= 5x over the
    # per-edge set-model loop (it typically lands far higher — one
    # numpy gather vs num_edges Python membership tests per query).
    assert row["batched_speedup"] >= 5.0, row
