"""Sampling-profiler overhead: must stay within the ~5 % budget.

The profiler's cost model: the engine pays two GIL-atomic dict writes
per query (the plan-label scope); everything else — frame walking,
folding, counting — happens on the sampler's own daemon thread between
its ``1/hz`` sleeps.  At the default 67 Hz that thread wakes 67 times
a second regardless of query volume, so per-query overhead *shrinks*
as throughput grows.

Method: interleaved A/B rounds (OFF, ON, OFF, ON, ...) over the same
query batch, comparing the *minimum* round time of each arm — min
discards scheduler noise and GC pauses, interleaving cancels thermal
and cache drift between arms.  The asserted bound is deliberately
looser than the 5 % claim (pure-Python wall times on shared CI jitter
by more than the effect being measured); the printed table records the
measured ratio for the trajectory artifact.
"""

from __future__ import annotations

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_diversified_queries


ROUNDS = 5


def _round_seconds(db, index, queries, method="seq"):
    import time

    from repro.engine.plan import plan_diversified

    plans = [
        plan_diversified(db, index, q, method=method) for q in queries
    ]
    t0 = time.perf_counter()
    for plan in plans:
        db.engine.execute(plan)
    return time.perf_counter() - t0


def test_profiler_overhead_within_budget(ctx, show, benchmark):
    db = ctx.database("SYN")
    index = ctx.index("SYN", "sif")
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=30, num_keywords=2, k=4, seed=71)
    )
    # Warm caches/buffers once so neither arm pays cold-start.
    _round_seconds(db, index, queries)

    off_times = []
    on_times = []

    def sweep():
        for _ in range(ROUNDS):
            off_times.append(_round_seconds(db, index, queries))
            profiler = db.enable_profiler()
            try:
                on_times.append(_round_seconds(db, index, queries))
            finally:
                db.disable_profiler()

    run_once(benchmark, sweep)

    baseline = min(off_times)
    profiled = min(on_times)
    ratio = profiled / baseline
    show(
        [{
            "baseline_ms": round(baseline * 1e3, 3),
            "profiled_ms": round(profiled * 1e3, 3),
            "overhead_pct": round((ratio - 1.0) * 100.0, 2),
            "hz": 67,
            "rounds": ROUNDS,
        }],
        "Profiler overhead (interleaved min-of-rounds)",
    )
    # The claim is <=5 %; assert a jitter-tolerant envelope so shared
    # CI machines don't flake the suite while still catching a real
    # regression (e.g. accidental per-query sampling).
    assert ratio <= 1.25, (
        f"profiler overhead {100 * (ratio - 1):.1f}% "
        f"(baseline {baseline * 1e3:.1f} ms, profiled {profiled * 1e3:.1f} ms)"
    )
