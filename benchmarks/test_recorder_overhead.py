"""Flight-recorder overhead: capture must stay within the ~3 % budget.

The recorder's per-query cost: one digest (sha256 over k short
strings), one dict build from already-computed stats, and one lock
hold to append into the ring.  No I/O on the hot path when no journal
file is attached; with ``--record FILE`` the JSON-lines write is the
extra cost measured here too.

Method mirrors the profiler-overhead benchmark: interleaved A/B rounds
(OFF, ON, OFF, ON, ...) over the same query batch, comparing
min-of-rounds per arm.  The asserted bound is looser than the 3 %
claim (CI wall-clock jitter exceeds the effect); the table records the
measured ratio for the trajectory artifact.
"""

from __future__ import annotations

from conftest import run_once

from repro.workloads.queries import WorkloadConfig, generate_diversified_queries


ROUNDS = 5


def _round_seconds(db, index, queries, method="seq"):
    import time

    from repro.engine.plan import plan_diversified

    plans = [
        plan_diversified(db, index, q, method=method) for q in queries
    ]
    t0 = time.perf_counter()
    for i, plan in enumerate(plans):
        db.engine.execute(plan, sequence=i)
    return time.perf_counter() - t0


def test_recorder_overhead_within_budget(ctx, show, benchmark, tmp_path):
    db = ctx.database("SYN")
    index = ctx.index("SYN", "sif")
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=30, num_keywords=2, k=4, seed=71)
    )
    # Warm caches/buffers once so neither arm pays cold-start.
    _round_seconds(db, index, queries)

    off_times = []
    ring_times = []
    journal_times = []

    def sweep():
        for round_no in range(ROUNDS):
            off_times.append(_round_seconds(db, index, queries))
            db.enable_flight_recorder()
            try:
                ring_times.append(_round_seconds(db, index, queries))
            finally:
                db.disable_flight_recorder()
            db.enable_flight_recorder(
                path=tmp_path / f"flight-{round_no}.jsonl"
            )
            try:
                journal_times.append(_round_seconds(db, index, queries))
            finally:
                db.disable_flight_recorder()

    run_once(benchmark, sweep)

    baseline = min(off_times)
    ring = min(ring_times)
    journal = min(journal_times)
    ratio = ring / baseline
    show(
        [{
            "baseline_ms": round(baseline * 1e3, 3),
            "recording_ms": round(ring * 1e3, 3),
            "journaling_ms": round(journal * 1e3, 3),
            "overhead_pct": round((ratio - 1.0) * 100.0, 2),
            "journal_overhead_pct": round(
                (journal / baseline - 1.0) * 100.0, 2
            ),
            "rounds": ROUNDS,
        }],
        "Flight-recorder overhead (interleaved min-of-rounds)",
    )
    # The claim is <=3 % for in-memory capture; assert a
    # jitter-tolerant envelope so shared CI machines don't flake while
    # still catching a real regression (e.g. digesting twice, or
    # journal writes leaking into the no-path configuration).
    assert ratio <= 1.20, (
        f"recorder overhead {100 * (ratio - 1):.1f}% "
        f"(baseline {baseline * 1e3:.1f} ms, recording {ring * 1e3:.1f} ms)"
    )
