"""Table 2 — dataset statistics.

Prints the reproduced dataset statistics next to the paper's originals
and checks the *relative* shape (which dataset is biggest, richest,
densest) is preserved at ~1/100 scale.
"""

from conftest import run_once

#: The paper's Table 2 (original sizes, for the printed comparison).
PAPER_TABLE2 = {
    "NA": {"objects": "2.2M", "vocab": "208K", "kw/obj": 6.8, "nodes": "176K", "edges": "179K"},
    "SF": {"objects": "2.25M", "vocab": "81K", "kw/obj": 26, "nodes": "175K", "edges": "223K"},
    "TW": {"objects": "11.5M", "vocab": "1.6M", "kw/obj": 10.8, "nodes": "321K", "edges": "800K"},
    "SYN": {"objects": "1M", "vocab": "100K", "kw/obj": 15, "nodes": "17K", "edges": "223K"},
}


def test_table2_dataset_statistics(ctx, benchmark, show):
    def build_all():
        rows = []
        for name in ("NA", "SF", "TW", "SYN"):
            db = ctx.database(name)
            stats = db.dataset_statistics()
            paper = PAPER_TABLE2[name]
            rows.append(
                {
                    "dataset": name,
                    "objects": stats["num_objects"],
                    "paper_objects": paper["objects"],
                    "vocab": stats["vocabulary_size"],
                    "paper_vocab": paper["vocab"],
                    "kw_per_obj": stats["avg_keywords"],
                    "paper_kw": paper["kw/obj"],
                    "nodes": stats["num_nodes"],
                    "edges": stats["num_edges"],
                }
            )
        return rows

    rows = run_once(benchmark, build_all)
    show(rows, "Table 2: dataset statistics (reproduced vs paper)")

    by_name = {r["dataset"]: r for r in rows}
    # TW is the largest corpus with the largest vocabulary.
    assert by_name["TW"]["objects"] == max(r["objects"] for r in rows)
    assert by_name["TW"]["vocab"] == max(r["vocab"] for r in rows)
    # SF has the richest keyword sets; NA the leanest of the real sets.
    assert by_name["SF"]["kw_per_obj"] > by_name["TW"]["kw_per_obj"]
    assert by_name["TW"]["kw_per_obj"] > by_name["NA"]["kw_per_obj"]
    # TW's road network is the densest (edges per node).
    tw_density = by_name["TW"]["edges"] / by_name["TW"]["nodes"]
    na_density = by_name["NA"]["edges"] / by_name["NA"]["nodes"]
    assert tw_density > na_density
