"""Incremental diversified top-k vs full re-query under updates.

The dynamic-world payoff: a standing diversified query maintained by
:class:`~repro.core.incremental.IncrementalDiversifiedTopK` answers
after a batch of object updates by folding the journal suffix into its
candidate pool, where a naive client re-runs the whole query (INE
expansion + greedy diversification) from scratch.  Object inserts and
deletes — the overwhelmingly common case for points of interest — never
re-expand the network, so maintenance must win by a wide margin while
returning byte-identical answers.

Edge reweights are measured separately: a *relevant* reweight forces
the maintainer to re-bootstrap (full expansion), so its only promised
edge is correctness, not speed.
"""

import time

import numpy as np

from conftest import run_once

from repro.bench.harness import bench_scale
from repro.core.incremental import IncrementalDiversifiedTopK
from repro.datasets.catalog import build_dataset
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

CONFIG = WorkloadConfig(num_queries=8, num_keywords=2, k=4, seed=606)
ROUNDS = 5
UPDATES_PER_ROUND = 8


def _apply_object_updates(db, index, rng, count):
    """``count`` inserts/deletes (no reweights — measured separately)."""
    for _ in range(count):
        objects = list(db.store)
        if rng.random() < 0.5:
            donor = objects[int(rng.integers(0, len(objects)))]
            keyword_donor = objects[int(rng.integers(0, len(objects)))]
            db.insert_object(
                donor.position, keyword_donor.keywords, indexes=(index,)
            )
        else:
            victim = objects[int(rng.integers(0, len(objects)))]
            db.delete_object(victim.object_id, indexes=(index,))


def test_incremental_beats_requery_on_object_updates(benchmark, show):
    # A private database: this benchmark mutates it, so the shared
    # session ctx cache must not see it.
    db = build_dataset("SYN", scale=bench_scale())
    index = db.build_index("sif", file_prefix="bench-incr")
    queries = generate_diversified_queries(db, CONFIG)
    maintainers = [
        IncrementalDiversifiedTopK(db, index, q) for q in queries
    ]
    for m in maintainers:
        m.current()  # bootstrap outside the measured region
    rng = np.random.default_rng(909)

    def sweep():
        incr_seconds = 0.0
        full_seconds = 0.0
        identical = 0
        for _ in range(ROUNDS):
            _apply_object_updates(db, index, rng, UPDATES_PER_ROUND)
            t0 = time.perf_counter()
            incr = [m.current() for m in maintainers]
            incr_seconds += time.perf_counter() - t0
            t0 = time.perf_counter()
            full = [
                db.diversified_search(index, q, method="seq")
                for q in queries
            ]
            full_seconds += time.perf_counter() - t0
            identical += sum(
                a.object_ids() == b.object_ids()
                for a, b in zip(incr, full)
            )
        return incr_seconds, full_seconds, identical

    incr_seconds, full_seconds, identical = run_once(benchmark, sweep)

    n = ROUNDS * len(queries)
    speedup = full_seconds / max(incr_seconds, 1e-9)
    counters = [m.counters() for m in maintainers]
    rows = [{
        "standing_queries": len(queries),
        "rounds": ROUNDS,
        "updates": ROUNDS * UPDATES_PER_ROUND,
        "incremental_ms": round(incr_seconds * 1e3, 2),
        "requery_ms": round(full_seconds * 1e3, 2),
        "speedup": round(speedup, 2),
        "identical_answers": identical,
        "incremental_refreshes": sum(
            c["incremental_refreshes"] for c in counters
        ),
        "full_recomputes": sum(c["full_recomputes"] for c in counters),
    }]
    show(rows, "Update workload: incremental maintenance vs full re-query")

    # Byte-identity on every answer of every round, and a real win:
    # object updates must never fall back to a full recompute here.
    assert identical == n
    assert rows[0]["full_recomputes"] == 0
    assert speedup > 2.0, rows


def test_incremental_stays_correct_under_reweights(benchmark, show):
    db = build_dataset("SYN", scale=bench_scale())
    index = db.build_index("sif", file_prefix="bench-incr-rw")
    queries = generate_diversified_queries(db, CONFIG)
    maintainers = [
        IncrementalDiversifiedTopK(db, index, q) for q in queries
    ]
    for m in maintainers:
        m.current()
    rng = np.random.default_rng(910)
    edges = [e.edge_id for e in db.network.edges()]

    def sweep():
        identical = 0
        for _ in range(ROUNDS):
            for _ in range(2):
                edge_id = edges[int(rng.integers(0, len(edges)))]
                factor = float(np.exp(rng.uniform(np.log(0.5), np.log(2.0))))
                db.update_edge_weight(
                    edge_id, db.network.edge(edge_id).weight * factor
                )
            identical += sum(
                m.current().object_ids()
                == db.diversified_search(index, q, method="seq").object_ids()
                for m, q in zip(maintainers, queries)
            )
        return identical

    identical = run_once(benchmark, sweep)
    counters = [m.counters() for m in maintainers]
    rows = [{
        "standing_queries": len(queries),
        "reweights": ROUNDS * 2,
        "identical_answers": identical,
        "full_recomputes": sum(c["full_recomputes"] for c in counters),
        "incremental_refreshes": sum(
            c["incremental_refreshes"] for c in counters
        ),
    }]
    show(rows, "Update workload: correctness across edge reweights")
    assert identical == ROUNDS * len(queries)
