#!/usr/bin/env python
"""The paper's motivating scenario (Example 1): a tourist's dinner plan.

A small "CBD" road network is built by hand and populated with
restaurants, each described by its menu keywords.  A tourist at query
point q wants k = 2 restaurants serving both "pancake" and "lobster".

* The plain top-k answer returns the two *closest* matches — which sit
  on the same block, so their surroundings overlap (the paper's S1 =
  {p1, p2}).
* The diversified answer trades a little closeness for spatial spread
  (the paper's S2 = {p1, p4}), giving the tourist two genuinely
  different neighbourhoods for her post-dinner stroll.

Run with::

    python examples/city_guide.py
"""

from repro import Database, DiversifiedSKQuery, NetworkPosition, RoadNetwork
from repro.core.ine import INEExpansion


def build_cbd() -> RoadNetwork:
    """A 4x4 downtown grid, 100 m blocks."""
    network = RoadNetwork()
    for r in range(4):
        for c in range(4):
            network.add_node(r * 4 + c, c * 100.0, r * 100.0)
    for r in range(4):
        for c in range(4):
            nid = r * 4 + c
            if c < 3:
                network.add_edge(nid, nid + 1)
            if r < 3:
                network.add_edge(nid, nid + 4)
    return network


RESTAURANTS = [
    # (edge endpoints, offset along edge, name, menu)
    ((0, 1), 40.0, "Harbour Grill", {"pancake", "lobster", "wine"}),
    ((0, 1), 60.0, "Quay Kitchen", {"pancake", "lobster", "cocktails"}),
    ((1, 2), 50.0, "Noodle Bar", {"noodles", "dumplings"}),
    ((10, 11), 30.0, "East Bistro", {"pancake", "lobster", "garden"}),
    ((5, 9), 50.0, "Corner Cafe", {"pancake", "coffee"}),
    ((14, 15), 20.0, "Pier House", {"lobster", "oysters"}),
    ((8, 9), 70.0, "Park Terrace", {"pancake", "lobster", "terrace"}),
]


def main() -> None:
    network = build_cbd()
    db = Database(network, buffer_pages=64)
    names = {}
    for (a, b), offset, name, menu in RESTAURANTS:
        edge = network.edge_between(a, b)
        obj = db.add_object(NetworkPosition(edge.edge_id, offset), menu)
        names[obj.object_id] = name
    db.freeze()
    index = db.build_index("sif")

    # The tourist stands at the corner of node 0 (bottom-left downtown).
    q_pos = network.node_position(0)
    terms = ["pancake", "lobster"]

    # Plain nearest matches (the stream of Algorithm 3, first two).
    expansion = INEExpansion(
        db.ccam, db.network, index, q_pos, frozenset(terms), 1000.0
    )
    stream = expansion.run_to_completion()
    print("Restaurants serving pancake AND lobster, by walking distance:")
    for item in stream:
        print(f"  {names[item.object.object_id]:<15} {item.distance:6.0f} m")

    top2 = stream[:2]
    print("\nTop-2 by distance alone (the paper's S1):")
    for item in top2:
        print(f"  {names[item.object.object_id]:<15} {item.distance:6.0f} m")
    print("  -> both on the same block; their surroundings overlap.")

    # Diversified: k = 2, λ = 0.5 balances closeness against spread.
    query = DiversifiedSKQuery.create(q_pos, terms, 1000.0, k=2, lambda_=0.5)
    result = db.diversified_search(index, query, method="com")
    print(f"\nDiversified top-2 (the paper's S2), f(S) = "
          f"{result.objective_value:.3f}:")
    for item in result:
        print(f"  {names[item.object.object_id]:<15} {item.distance:6.0f} m")
    print("  -> a slight sacrifice in closeness buys two different "
          "neighbourhoods.")

    chosen = {names[item.object.object_id] for item in result}
    nearest = {names[item.object.object_id] for item in top2}
    assert chosen != nearest, "diversification should change the answer here"


if __name__ == "__main__":
    main()
