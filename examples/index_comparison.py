#!/usr/bin/env python
"""Compare the four object indexes on one dataset (mini Fig. 6/7).

Builds IR, IF, SIF and SIF-P over the SYN dataset, runs the same SK
workload against each, and prints response time, I/O, false hits and
index size side by side.

Run with::

    python examples/index_comparison.py [scale]
"""

import sys

from repro import datasets, workloads
from repro.bench.reporting import print_table


def main(scale: float = 0.5) -> None:
    print(f"Building SYN at scale {scale}...")
    db = datasets.build_dataset("SYN", scale=scale)
    print(f"  {db.dataset_statistics()}")

    config = workloads.WorkloadConfig(num_queries=30, num_keywords=2, seed=9)
    queries = workloads.generate_sk_queries(db, config)

    rows = []
    for kind in ("ir", "if", "sif", "sif-p"):
        index = db.build_index(kind)
        index.counters.reset()
        report = workloads.run_sk_workload(db, index, queries)
        rows.append(
            {
                "index": kind.upper(),
                "build_s": round(index.build_seconds, 2),
                "size_KiB": index.size_bytes() // 1024,
                "avg_time_ms": report.row()["avg_time_ms"],
                "avg_io": report.row()["avg_io"],
                "false_hit_objs": report.row()["avg_false_hit_objects"],
            }
        )
    print_table(rows, f"\nSK workload ({config.num_queries} queries, "
                      f"l={config.num_keywords})")
    print(
        "\nExpected shape (paper Fig. 6/7): IR slowest; IF pays for "
        "false hits;\nSIF/SIF-P prune them via signatures at a small "
        "space premium."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
