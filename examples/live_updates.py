#!/usr/bin/env python
"""Dynamic maintenance and landmark-accelerated diversified search.

Two extensions beyond the paper's static setting:

1. *Dynamic insertion* — a new business opens after the index is built;
   its postings and signature bits are pushed into the live SIF index
   and the very next query finds it.
2. *Landmark bounds* — an ALT-style landmark index supplies exact
   network-distance upper bounds that tighten COM's θ-pruning, skipping
   exact pairwise computations without changing any answer.

Run with::

    python examples/live_updates.py
"""

from repro import DiversifiedSKQuery, SKQuery, datasets
from repro.network.landmarks import LandmarkIndex


def main() -> None:
    db = datasets.build_dataset("SYN", scale=0.25)
    index = db.build_index("sif")
    print(f"Dataset: {db.dataset_statistics()}")

    # --- dynamic insertion -------------------------------------------
    anchor = next(iter(db.store))
    terms = ["nightmarket", "rooftop"]  # brand new keywords
    query = SKQuery.create(anchor.position, terms, delta_max=3000.0)
    print(f"\nBefore insertion, '{' AND '.join(terms)}' finds "
          f"{len(db.sk_search(index, query))} objects.")

    db.insert_object(anchor.position, terms, indexes=[index])
    result = db.sk_search(index, query)
    print(f"After inserting one object, the same query finds "
          f"{len(result)} object(s) at distance "
          f"{result.items[0].distance:.0f}.")

    # --- landmark-accelerated COM ------------------------------------
    landmarks = LandmarkIndex(db.ccam, db.network, num_landmarks=8)
    print(f"\nLandmark nodes: {list(landmarks.landmarks)}")

    freq = db.store.keyword_frequencies()
    top = max(freq, key=freq.get)
    dq = DiversifiedSKQuery.create(
        anchor.position, [top], delta_max=3000.0, k=6, lambda_=0.6
    )
    plain = db.diversified_search(index, dq, method="com")
    boosted = db.diversified_search(index, dq, method="com",
                                    landmarks=landmarks)
    print(f"\nDiversified query on '{top}':")
    print(f"  plain COM:    f={plain.objective_value:.4f}, "
          f"{plain.stats.theta_evaluations} exact pair evaluations")
    print(f"  with landmarks: f={boosted.objective_value:.4f}, "
          f"{boosted.stats.theta_evaluations} exact pair evaluations")
    assert plain.object_ids() == boosted.object_ids()
    print("  identical answers, fewer (or equal) exact computations.")


if __name__ == "__main__":
    main()
