#!/usr/bin/env python
"""Quickstart: build a dataset, index it, run both query types.

Run with::

    python examples/quickstart.py
"""

from repro import DiversifiedSKQuery, SKQuery, datasets

def main() -> None:
    # 1. Build a scaled-down rendition of the paper's NA dataset:
    #    a road network plus spatio-textual objects, laid out on a
    #    simulated disk with CCAM clustering and an LRU buffer.
    print("Building the NA dataset (scale 0.25)...")
    db = datasets.build_dataset("NA", scale=0.25)
    print(f"  {db.dataset_statistics()}")

    # 2. Build the paper's signature-based inverted file (SIF-P:
    #    signatures plus partitioned dense edges).
    index = db.build_index("sif-p")
    print(f"  index: {index.describe()} built in {index.build_seconds:.2f}s")

    # 3. Boolean spatial keyword search (Algorithm 3): objects within
    #    network distance delta_max containing ALL query keywords.
    #    The workload generator mimics the paper's setup: positions are
    #    object locations, keywords frequency-weighted from one object
    #    (so the AND constraint is satisfiable).  Pick the first query
    #    with a healthy result set for the demo.
    from repro import workloads

    candidates = workloads.generate_sk_queries(
        db, workloads.WorkloadConfig(num_queries=30, num_keywords=2,
                                     delta_max=2500.0, seed=3)
    )
    query = max(candidates, key=lambda q: len(db.sk_search(index, q)))
    terms = sorted(query.terms)
    result = db.sk_search(index, query)
    print(f"\nSK search for {terms} within 2000:")
    print(f"  {len(result)} objects, "
          f"{result.stats.physical_reads} physical page reads, "
          f"{result.stats.edges_accessed} edges expanded")
    for item in list(result)[:5]:
        print(f"    object {item.object.object_id:>6}  "
              f"distance {item.distance:8.1f}  "
              f"keywords {sorted(item.object.keywords)[:4]}")

    # 4. Diversified SK search (Algorithm 6, COM): k results balancing
    #    closeness to the query (weight λ) against pairwise spread
    #    (weight 1 − λ).
    dquery = DiversifiedSKQuery.create(
        query.position, terms, delta_max=query.delta_max, k=4, lambda_=0.7
    )
    for method in ("seq", "com"):
        res = db.diversified_search(index, dquery, method=method)
        print(f"\nDiversified search via {method.upper()}:")
        print(f"  f(S) = {res.objective_value:.4f}, "
              f"candidates processed: {res.stats.candidates}, "
              f"early termination: {res.stats.expansion_terminated_early}")
        for item in res:
            print(f"    object {item.object.object_id:>6}  "
                  f"distance {item.distance:8.1f}")


if __name__ == "__main__":
    main()
