#!/usr/bin/env python
"""Travel-time cost model: weights independent of geometric length.

The paper's network model (§2.1) carries a *cost* per road segment that
need not be its length — "distance or travel time".  This example
builds one network twice: once with distance weights and once with
travel times (a motorway crosses town fast, side streets are slow), and
shows the same diversified query returning different answers under the
two cost models.

Run with::

    python examples/travel_time_routing.py
"""

from repro import Database, DiversifiedSKQuery, NetworkPosition, RoadNetwork

#: nodes: a west end (0), an east end (3), and two mid-town corners.
COORDS = {0: (0, 0), 1: (400, 0), 2: (800, 0), 3: (1200, 0),
          4: (400, 300), 5: (800, 300)}

#: (a, b, minutes) — the top row is a fast motorway, the loop through
#: nodes 4/5 is short in metres but slow.
ROADS_MINUTES = [
    (0, 1, 3.0), (1, 2, 3.0), (2, 3, 3.0),   # motorway: 400 m / 3 min
    (1, 4, 6.0), (4, 5, 8.0), (5, 2, 6.0),    # side streets: slow
]

CAFES = [
    ((0, 1), 0.5, "West Roast", {"espresso", "wifi"}),
    ((1, 2), 0.5, "Midway Beans", {"espresso", "wifi"}),
    ((4, 5), 0.5, "Hill Coffee", {"espresso", "wifi"}),
    ((2, 3), 0.5, "East Brew", {"espresso", "wifi"}),
]


def build(use_travel_time: bool) -> Database:
    network = RoadNetwork()
    for nid, (x, y) in COORDS.items():
        network.add_node(nid, float(x), float(y))
    for a, b, minutes in ROADS_MINUTES:
        network.add_edge(a, b, weight=minutes if use_travel_time else None)
    db = Database(network, buffer_pages=64)
    for (a, b), fraction, name, menu in CAFES:
        edge = network.edge_between(a, b)
        db.add_object(NetworkPosition(edge.edge_id, edge.weight * fraction), menu)
    db.freeze()
    return db


def main() -> None:
    names = [name for _e, _f, name, _m in CAFES]
    for use_time, label, delta in (
        (False, "distance (metres)", 1500.0),
        (True, "travel time (minutes)", 15.0),
    ):
        db = build(use_time)
        index = db.build_index("sif")
        q = db.network.node_position(0)
        query = DiversifiedSKQuery.create(
            q, ["espresso", "wifi"], delta_max=delta, k=2, lambda_=0.6
        )
        result = db.diversified_search(index, query, method="com")
        print(f"Cost model: {label}")
        for item in result:
            print(f"  {names[item.object.object_id]:<14} "
                  f"cost from q: {item.distance:6.2f}")
        print()


if __name__ == "__main__":
    main()
