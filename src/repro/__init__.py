"""Diversified spatial keyword search on road networks.

A from-scratch reproduction of "Diversified Spatial Keyword Search On
Road Networks" (EDBT 2014): a disk-resident road-network substrate
(CCAM layout, B+-trees, R-trees over a simulated buffer-managed disk),
the signature-based inverted indexes IR / IF / SIF / SIF-P / SIF-G, the
incremental-network-expansion SK search, and the SEQ / COM diversified
search algorithms.

Quickstart::

    from repro import Database, DiversifiedSKQuery, datasets, workloads

    db = datasets.build_dataset("NA", scale=0.25)
    index = db.build_index("sif-p")
    query = workloads.generate_diversified_queries(
        db, workloads.WorkloadConfig(num_queries=1)
    )[0]
    result = db.diversified_search(index, query, method="com")
    for item in result:
        print(item.object.object_id, round(item.distance, 1))
"""

from . import datasets, engine, obs, workloads
from .core.database import INDEX_KINDS, Database
from .engine import (
    CostHints,
    ExecutionContext,
    QueryEngine,
    QueryPlan,
    plan_diversified,
    plan_knn,
    plan_sk,
)
from .core.diversified_search import com_search, seq_search
from .core.ine import INEExpansion
from .core.knn import SKkNNQuery, SKkNNResult, knn_search
from .core.objective import DiversificationObjective
from .core.queries import (
    DiversifiedResult,
    DiversifiedSKQuery,
    QueryStats,
    ResultItem,
    SKQuery,
    SKResult,
)
from .errors import (
    DatasetError,
    GraphError,
    QueryError,
    ReproError,
    StorageError,
)
from .network.distance import DistanceCache, PairwiseDistanceComputer
from .network.graph import Edge, NetworkPosition, Node, RoadNetwork
from .network.objects import ObjectStore, SpatioTextualObject
from .obs import MetricsRegistry
from .spatial.geometry import MBR, Point

__version__ = "1.0.0"

__all__ = [
    "datasets",
    "engine",
    "obs",
    "workloads",
    "INDEX_KINDS",
    "Database",
    "CostHints",
    "ExecutionContext",
    "QueryEngine",
    "QueryPlan",
    "plan_diversified",
    "plan_knn",
    "plan_sk",
    "DistanceCache",
    "PairwiseDistanceComputer",
    "MetricsRegistry",
    "com_search",
    "seq_search",
    "INEExpansion",
    "SKkNNQuery",
    "SKkNNResult",
    "knn_search",
    "DiversificationObjective",
    "DiversifiedResult",
    "DiversifiedSKQuery",
    "QueryStats",
    "ResultItem",
    "SKQuery",
    "SKResult",
    "DatasetError",
    "GraphError",
    "QueryError",
    "ReproError",
    "StorageError",
    "Edge",
    "NetworkPosition",
    "Node",
    "RoadNetwork",
    "ObjectStore",
    "SpatioTextualObject",
    "MBR",
    "Point",
    "__version__",
]
