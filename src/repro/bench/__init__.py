"""Benchmark harness utilities."""

from .compare import compare_trajectories, load_trajectory, render_comparison
from .harness import BenchContext, bench_scale
from .reporting import format_table, print_table, series_table
from .trajectory import TrajectoryWriter, default_trajectory_path

__all__ = [
    "BenchContext",
    "bench_scale",
    "format_table",
    "print_table",
    "series_table",
    "TrajectoryWriter",
    "default_trajectory_path",
    "compare_trajectories",
    "load_trajectory",
    "render_comparison",
]
