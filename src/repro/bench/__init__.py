"""Benchmark harness utilities."""

from .harness import BenchContext, bench_scale
from .reporting import format_table, print_table, series_table

__all__ = ["BenchContext", "bench_scale", "format_table", "print_table", "series_table"]
