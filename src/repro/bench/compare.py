"""Compare two benchmark trajectory artifacts; flag regressions.

``repro bench compare OLD.json NEW.json --fail-on-regression 20``
reads two ``repro-bench-trajectory/v1`` documents (the committed
``BENCH_PR*.json`` baselines) and diffs each figure's *headline* —
the per-column means :class:`~repro.bench.trajectory.TrajectoryWriter`
records.  Every metric has a direction:

* **higher is worse** — latencies (``*_ms``), I/O (``avg_io``),
  Dijkstra counts, build times;
* **higher is better** — throughput (``qps``), speedups, cache-hit and
  early-termination percentages;
* everything else (parameters like ``k``, ``workers``, dataset sizes)
  is context, not a metric, and is never flagged.

A metric that moved in its worse direction by at least the threshold
percentage is a *regression*; moved the other way, an *improvement*.
:func:`compare_trajectories` returns every delta so callers can render
the full table; the CLI exits non-zero when regressions exist and
``--fail-on-regression`` was given.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "MetricDelta",
    "PresenceChange",
    "compare_trajectories",
    "presence_changes",
    "load_trajectory",
    "render_comparison",
]

SCHEMA = "repro-bench-trajectory/v1"

#: Column-name suffixes/names whose *increase* is a slowdown.
_HIGHER_WORSE_SUFFIXES = ("_ms", "_s", "_seconds")
_HIGHER_WORSE_NAMES = {
    "avg_io", "avg_dijkstras", "avg_candidates", "pairwise_dijkstras",
    "physical_reads", "logical_reads", "buffer_evictions", "io_pages",
}
#: Columns whose *decrease* is the slowdown.
_HIGHER_BETTER_NAMES = {"qps", "speedup", "cache_hit_pct", "early_term_pct"}
_HIGHER_BETTER_SUFFIXES = ("_qps", "_speedup", "_hit_pct")


def metric_direction(name: str) -> Optional[str]:
    """``"higher_worse"``, ``"higher_better"`` or ``None`` (context)."""
    if name in _HIGHER_WORSE_NAMES or name.endswith(_HIGHER_WORSE_SUFFIXES):
        return "higher_worse"
    if name in _HIGHER_BETTER_NAMES or name.endswith(_HIGHER_BETTER_SUFFIXES):
        return "higher_better"
    return None


class MetricDelta:
    """One headline metric's movement between two artifacts."""

    __slots__ = (
        "figure", "metric", "direction", "old", "new", "change_pct",
    )

    def __init__(
        self,
        figure: str,
        metric: str,
        direction: str,
        old: float,
        new: float,
    ) -> None:
        self.figure = figure
        self.metric = metric
        self.direction = direction
        self.old = old
        self.new = new
        #: Signed percentage change relative to the old value; positive
        #: means the metric moved in its *worse* direction.
        if old == 0:
            raw = float("inf") if new != 0 else 0.0
        else:
            raw = (new - old) / abs(old) * 100.0
        self.change_pct = raw if direction == "higher_worse" else -raw

    def is_regression(self, threshold_pct: float) -> bool:
        return self.change_pct >= threshold_pct

    def is_improvement(self, threshold_pct: float) -> bool:
        return self.change_pct <= -threshold_pct

    def to_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure,
            "metric": self.metric,
            "direction": self.direction,
            "old": self.old,
            "new": self.new,
            "worse_pct": round(self.change_pct, 3)
            if self.change_pct == self.change_pct
            and abs(self.change_pct) != float("inf")
            else self.change_pct,
        }


class PresenceChange:
    """A headline metric (or whole figure) present on only one side.

    Not a regression and not a pass: an added benchmark has no
    baseline to be judged against and a removed one can no longer be
    judged at all — both must be *reported* so a rename or a deleted
    benchmark can never silently drain the gate's coverage.
    """

    __slots__ = ("figure", "metric", "status", "value")

    def __init__(
        self,
        figure: str,
        metric: Optional[str],
        status: str,
        value: Any = None,
    ) -> None:
        if status not in ("added", "removed"):
            raise ValueError(f"unknown presence status {status!r}")
        self.figure = figure
        #: ``None`` when the whole figure appeared/disappeared.
        self.metric = metric
        self.status = status
        self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure,
            "metric": self.metric,
            "status": self.status,
            "value": self.value,
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        where = self.figure if self.metric is None else f"{self.figure}.{self.metric}"
        return f"PresenceChange({self.status}: {where})"


def presence_changes(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[PresenceChange]:
    """Figures/headline metrics present in only one of the documents.

    A figure missing from one side is reported once (metric ``None``);
    a shared figure whose headline lost or gained *directional*
    metrics is reported per metric.  Context columns (parameters with
    no better/worse direction) are ignored, matching
    :func:`compare_trajectories`.
    """
    changes: List[PresenceChange] = []
    old_figures = old.get("figures", {})
    new_figures = new.get("figures", {})
    for slug in sorted(set(old_figures) | set(new_figures)):
        if slug not in new_figures:
            changes.append(PresenceChange(slug, None, "removed"))
            continue
        if slug not in old_figures:
            changes.append(PresenceChange(slug, None, "added"))
            continue
        old_headline = old_figures[slug].get("headline", {})
        new_headline = new_figures[slug].get("headline", {})
        for metric in sorted(set(old_headline) ^ set(new_headline)):
            if metric_direction(metric) is None:
                continue
            if metric in old_headline:
                changes.append(PresenceChange(
                    slug, metric, "removed", old_headline[metric]
                ))
            else:
                changes.append(PresenceChange(
                    slug, metric, "added", new_headline[metric]
                ))
    return changes


def load_trajectory(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and schema-check one trajectory artifact."""
    path = Path(path)
    with path.open(encoding="utf-8") as fh:
        document = json.load(fh)
    if not isinstance(document, dict) or document.get("schema") != SCHEMA:
        raise ValueError(
            f"{path} is not a {SCHEMA} document "
            f"(schema={document.get('schema') if isinstance(document, dict) else None!r})"
        )
    return document


def compare_trajectories(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[MetricDelta]:
    """Headline deltas for every figure+metric present in *both* docs.

    Figures or metrics present on only one side are skipped — a new
    benchmark is not a regression and a removed one cannot be judged.
    Comparisons across different ``bench_scale`` values are allowed
    (the caller sees both scales in the documents) but per-figure
    numbers only mean anything at matching scale.
    """
    deltas: List[MetricDelta] = []
    old_figures = old.get("figures", {})
    new_figures = new.get("figures", {})
    for slug in sorted(set(old_figures) & set(new_figures)):
        old_headline = old_figures[slug].get("headline", {})
        new_headline = new_figures[slug].get("headline", {})
        for metric in sorted(set(old_headline) & set(new_headline)):
            direction = metric_direction(metric)
            if direction is None:
                continue
            old_value = old_headline[metric]
            new_value = new_headline[metric]
            if not isinstance(old_value, (int, float)) or not isinstance(
                new_value, (int, float)
            ):
                continue
            deltas.append(
                MetricDelta(slug, metric, direction, float(old_value), float(new_value))
            )
    return deltas


def render_comparison(
    deltas: List[MetricDelta],
    threshold_pct: float,
    presence: Optional[List[PresenceChange]] = None,
) -> str:
    """Human-readable comparison: regressions, improvements, counts.

    ``presence`` (from :func:`presence_changes`) adds an added/removed
    section so coverage changes are visible alongside the deltas.
    """
    regressions = [d for d in deltas if d.is_regression(threshold_pct)]
    improvements = [d for d in deltas if d.is_improvement(threshold_pct)]
    lines: List[str] = [
        f"compared {len(deltas)} headline metrics "
        f"(threshold {threshold_pct:g}%): "
        f"{len(regressions)} regression(s), "
        f"{len(improvements)} improvement(s)"
        + (
            f", {len(presence)} presence change(s)" if presence else ""
        )
    ]

    def _fmt(delta: MetricDelta, tag: str) -> str:
        arrow = "↑" if delta.new >= delta.old else "↓"
        return (
            f"  {tag}  {delta.figure}.{delta.metric}: "
            f"{delta.old:g} → {delta.new:g} {arrow} "
            f"({delta.change_pct:+.1f}% worse-direction)"
        )

    for delta in sorted(regressions, key=lambda d: -d.change_pct):
        lines.append(_fmt(delta, "REGRESSION"))
    for delta in sorted(improvements, key=lambda d: d.change_pct):
        lines.append(_fmt(delta, "improved  "))
    if not regressions and not improvements:
        lines.append(f"  no metric moved by ≥ {threshold_pct:g}%")
    for change in presence or ():
        where = (
            f"figure {change.figure}"
            if change.metric is None
            else f"{change.figure}.{change.metric}"
        )
        note = (
            "not judged — no baseline"
            if change.status == "added"
            else "not judged — gone from candidate"
        )
        lines.append(f"  {change.status.upper():<10}  {where} ({note})")
    return "\n".join(lines)
