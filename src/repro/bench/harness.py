"""Shared benchmark harness: dataset/index caches and sweep helpers.

Building a dataset and its four indexes is the expensive part of every
experiment, so the harness memoises them per (profile, overrides) key.
Benchmarks get small-but-faithful datasets by default; the environment
variable ``REPRO_BENCH_SCALE`` scales every dataset up or down without
touching the benchmark code.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from ..core.database import Database
from ..datasets.catalog import build_dataset
from ..index.base import ObjectIndex
from ..workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)
from ..workloads.runner import (
    WorkloadReport,
    run_diversified_workload,
    run_sk_workload,
)

__all__ = ["BenchContext", "bench_scale"]


def bench_scale(default: float = 1.0) -> float:
    """Dataset scale factor, overridable via ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if not raw:
        return default
    return float(raw)


class BenchContext:
    """Caches databases and indexes across benchmark cases."""

    def __init__(self, scale: Optional[float] = None) -> None:
        self.scale = scale if scale is not None else bench_scale()
        self._dbs: Dict[Tuple, Database] = {}
        self._indexes: Dict[Tuple, ObjectIndex] = {}

    def database(self, profile: str, **overrides) -> Database:
        key = (profile, tuple(sorted(overrides.items())))
        db = self._dbs.get(key)
        if db is None:
            db = build_dataset(profile, scale=self.scale, **overrides)
            self._dbs[key] = db
        return db

    def index(self, profile: str, kind: str, db_overrides: Optional[dict] = None,
              **index_kwargs) -> ObjectIndex:
        db_overrides = db_overrides or {}
        key = (
            profile,
            tuple(sorted(db_overrides.items())),
            kind,
            tuple(sorted(index_kwargs.items())),
        )
        index = self._indexes.get(key)
        if index is None:
            db = self.database(profile, **db_overrides)
            index = db.build_index(kind, **index_kwargs)
            self._indexes[key] = index
        return index

    # ------------------------------------------------------------------
    # Sweep helpers
    # ------------------------------------------------------------------
    def sk_report(
        self,
        profile: str,
        kind: str,
        config: WorkloadConfig,
        db_overrides: Optional[dict] = None,
        **index_kwargs,
    ) -> WorkloadReport:
        db = self.database(profile, **(db_overrides or {}))
        index = self.index(profile, kind, db_overrides=db_overrides, **index_kwargs)
        queries = generate_sk_queries(db, config)
        index.counters.reset()
        return run_sk_workload(db, index, queries, label=kind.upper())

    def diversified_report(
        self,
        profile: str,
        kind: str,
        method: str,
        config: WorkloadConfig,
        db_overrides: Optional[dict] = None,
        enable_pruning: bool = True,
        **index_kwargs,
    ) -> WorkloadReport:
        db = self.database(profile, **(db_overrides or {}))
        index = self.index(profile, kind, db_overrides=db_overrides, **index_kwargs)
        queries = generate_diversified_queries(db, config)
        index.counters.reset()
        return run_diversified_workload(
            db, index, queries, method=method, enable_pruning=enable_pruning
        )
