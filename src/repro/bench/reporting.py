"""Plain-text tabular reporting for the benchmark harness.

The benchmarks print the same rows/series the paper's figures plot;
this module renders them as aligned text tables so ``pytest -s`` output
can be compared against the paper directly (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "print_table", "series_table", "save_csv", "slugify"]


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    # Union of keys in first-seen order: rows may carry different stage
    # columns (e.g. SEQ's greedy vs COM's maintenance).
    columns = list(rows[0].keys())
    seen = set(columns)
    for row in rows[1:]:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: str = "") -> None:
    print()
    print(format_table(rows, title))


def series_table(
    x_name: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
) -> List[Dict[str, object]]:
    """Build figure-style rows: one row per x value, one column per series."""
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_name: x}
        for label, values in series.items():
            row[label] = values[i]
        rows.append(row)
    return rows


def save_csv(rows: Sequence[Dict[str, object]], path) -> None:
    """Write dict rows as a CSV file (for plotting the figure series)."""
    import csv
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def slugify(title: str) -> str:
    """File-name-safe slug of a table title."""
    out = []
    for ch in title.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-") or "table"
