"""Benchmark trajectory artifact: headline numbers as one JSON file.

Every benchmark run prints per-figure tables and saves CSVs under
``benchmarks/results/`` — good for eyeballing, awkward for diffing
across PRs or attaching to CI.  :class:`TrajectoryWriter` collects the
same rows the figures print and serialises them (plus run context:
dataset scale, python version) into a single JSON document, by default
``BENCH_PR9.json`` at the repository root.

The benchmark conftest hooks this in transparently: every table that
goes through the ``show`` fixture is recorded, and the file is written
once at session end.  Writes **merge** into an existing artifact of
the same schema: a partial run (``pytest benchmarks -k fig6``)
refreshes the figures it produced and keeps the rest, so the artifact
converges to full coverage instead of being clobbered down to whatever
the last subset ran.  ``REPRO_BENCH_TRAJECTORY`` overrides the output
path; setting it to ``0``/``off`` disables the artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from .reporting import slugify

__all__ = ["TrajectoryWriter", "default_trajectory_path"]

#: Current artifact name; bumped per PR so stacked PRs keep their own
#: benchmark baselines side by side.
DEFAULT_FILENAME = "BENCH_PR10.json"

_DISABLED = {"0", "off", "none", "false"}


def default_trajectory_path() -> Optional[Path]:
    """Resolve the output path (env override; ``None`` when disabled)."""
    raw = os.environ.get("REPRO_BENCH_TRAJECTORY")
    if raw is not None:
        if raw.strip().lower() in _DISABLED:
            return None
        return Path(raw)
    # Default: the repository root (two levels above src/repro/bench).
    return Path(__file__).resolve().parents[3] / DEFAULT_FILENAME


def _headline(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Compact per-figure summary: the mean of every numeric column.

    The full rows are kept alongside; the headline is what a reviewer
    (or a regression-tracking script) reads first.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for row in rows:
        for key, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value != value:  # NaN
                continue
            sums[key] = sums.get(key, 0.0) + float(value)
            counts[key] = counts.get(key, 0) + 1
    return {key: round(sums[key] / counts[key], 6) for key in sums}


class TrajectoryWriter:
    """Accumulates per-figure benchmark rows; writes one JSON artifact."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else default_trajectory_path()
        self._figures: Dict[str, Dict[str, object]] = {}

    def __bool__(self) -> bool:
        return self.path is not None

    @property
    def figures(self) -> Dict[str, Dict[str, object]]:
        return dict(self._figures)

    def record(
        self, title: str, rows: Sequence[Dict[str, object]]
    ) -> None:
        """Record one figure's rows (later records replace earlier)."""
        if self.path is None or not title:
            return
        self._figures[slugify(title)] = {
            "title": title,
            "headline": _headline(rows),
            "rows": [dict(row) for row in rows],
        }

    def write(self) -> Optional[Path]:
        """Serialise everything recorded; no-op when nothing was.

        Figures already present in an existing artifact (same schema)
        are preserved unless this run re-recorded them — partial runs
        extend the trajectory rather than truncating it.
        """
        if self.path is None or not self._figures:
            return None
        figures: Dict[str, Dict[str, object]] = {}
        existing = self.load()
        if (
            isinstance(existing, dict)
            and existing.get("schema") == "repro-bench-trajectory/v1"
            and isinstance(existing.get("figures"), dict)
        ):
            figures.update(existing["figures"])
        figures.update(self._figures)
        document = {
            "schema": "repro-bench-trajectory/v1",
            "artifact": self.path.name,
            "generated_unix": round(time.time(), 3),
            "python": platform.python_version(),
            "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
            "figures": figures,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=1, sort_keys=False)
            fh.write("\n")
        return self.path

    def load(self) -> Optional[Dict[str, object]]:
        """Read the artifact back (``None`` when absent/disabled)."""
        if self.path is None or not self.path.exists():
            return None
        with self.path.open(encoding="utf-8") as fh:
            return json.load(fh)
