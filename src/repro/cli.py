"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``info``      build a dataset profile and print its Table-2 statistics
``generate``  build a dataset profile and save it as a JSON snapshot
``sk``        run an SK workload against one index and print the report
``diversify`` run a diversified workload (SEQ and COM) and print both
``update``    run a mixed update+query workload against a live database
``compare``   run one workload against every index kind (mini Fig. 6)
``explain``   run ONE query under tracing and print its pruning report
``slowlog``   render a persisted slow-query log (JSON lines) as text
``loadtest``  drive sustained QPS (open loop) gated by a live SLO
``replay``    deterministically re-execute a ``--record`` journal and
              report divergences (``--backend``/``--scoring``/
              ``--workers`` turn it into a cross-backend audit)
``profile``   render a folded-stack profile written by the profiler
``bench``     benchmark artifact tools (``bench compare OLD NEW``)

Flight recorder: every workload command accepts ``--record FILE`` to
journal each executed query (parameters, plan label, result digest,
stats) plus every committed update as JSON lines — ``repro replay
FILE`` re-executes the journal and fails on any divergence.
``--shadow-backend NAME`` re-runs a sampled fraction of queries
(``--shadow-rate``) on a second distance backend in flight and counts
``shadow.divergences``; mismatches land in the slow-query log with
both digests.

The workload commands accept ``--metrics <path>`` to stream one JSON
record per query (latency, stage breakdown, cache/buffer deltas) plus
workload summaries and a final registry snapshot to a JSON-lines file,
and ``diversify`` accepts ``--distance-cache <entries>`` to serve the
workload through a shared bounded distance cache.

Observability exports: ``--trace <path>`` records per-query span trees
for the whole run — including concurrent runs with ``--workers N``,
which merge into one Chrome trace with a lane per worker — and writes
Chrome trace-event JSON (load it at https://ui.perfetto.dev);
``--prom <path>`` writes a Prometheus text exposition of the final
metrics registry plus point-in-time cache/buffer gauges.  Slow-query
capture: ``--slow-ms`` / ``--slow-nodes`` set the thresholds,
``--slowlog <path>`` persists the captured records as JSON lines
(``repro slowlog <path>`` renders them).  ``--slo <spec.json>``
evaluates a declarative SLO spec against the final registry snapshot
and fails the command when an objective is violated.

Live telemetry: every workload command (and ``loadtest``) accepts
``--telemetry-port N`` to serve ``/metrics`` (Prometheus), ``/healthz``,
``/vars``, ``/slowlog``, ``/profile`` and ``/slo`` over HTTP for the
duration of the run, so an external scraper watches counters advance
*while* queries execute.  ``loadtest`` evaluates its ``--slo`` spec
continuously against a ~10 s sliding window (not once at the end) and
exits non-zero when the final window is in breach; ``--profile-out``
writes the sampling profiler's folded stacks for ``repro profile`` /
flamegraph tooling.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import List, Optional

from .bench.reporting import print_table
from .core.database import FRONTIER_MODES, INDEX_KINDS, Database
from .network.distance import DISTANCE_BACKENDS
from .datasets.catalog import PROFILES, build_dataset
from .datasets.io import save_dataset
from .workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)
from .workloads.runner import run_diversified_workload, run_sk_workload

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _positive_float(text: str) -> float:
    """A finite float > 0.  Guards rate-style flags (``--profile-hz``,
    ``--qps``): zero or negative values would busy-loop or crash a
    daemon thread long after parsing, so reject them up front."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0 or math.isinf(value):
        raise argparse.ArgumentTypeError(
            "must be a positive finite number"
        )
    return value


def _rate(text: str) -> float:
    """A sampling fraction in ``(0, 1]``."""
    value = _positive_float(text)
    if value > 1.0:
        raise argparse.ArgumentTypeError("must be a fraction in (0, 1]")
    return value


def _port(text: str) -> int:
    """A TCP port number (0 = pick a free ephemeral port)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError("must be a port number (0-65535)")
    return value


def _output_path(text: str) -> str:
    """An output file path whose parent directory must already exist.

    Validated at parse time so a typo in ``--trace``/``--prom``/
    ``--metrics`` fails before minutes of workload run, not after.
    """
    parent = Path(text).expanduser().resolve().parent
    if not parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"directory {parent} does not exist (cannot write {text!r})"
        )
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diversified spatial keyword search on road networks "
        "(EDBT 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "profile", choices=sorted(PROFILES), help="dataset profile"
        )
        p.add_argument("--scale", type=float, default=1.0,
                       help="proportional dataset scale (default 1.0)")
        p.add_argument("--seed", type=int, default=None,
                       help="override the profile's generator seed")

    def add_backend_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--distance-backend", choices=DISTANCE_BACKENDS,
            default="dijkstra",
            help="exact pairwise-distance backend: bounded Dijkstras "
                 "(default), the Contraction-Hierarchies oracle, or "
                 "2-hop hub labels ('hub', needs numpy) — identical "
                 "answers, built once per database",
        )
        p.add_argument(
            "--frontier", choices=FRONTIER_MODES, default=None,
            help="INE frontier implementation: array heap over a CSR "
                 "snapshot ('csr', needs numpy; the default when numpy "
                 "is present) or the adjacency-map loop ('dict') — "
                 "identical settle order, answers and counters",
        )

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        add_backend_arg(p)
        p.add_argument("--queries", type=int, default=50)
        p.add_argument("--keywords", type=int, default=3, metavar="L")
        p.add_argument("--delta-max", type=float, default=None)
        p.add_argument("--workload-seed", type=int, default=101)
        p.add_argument(
            "--workers", type=_positive_int, default=1, metavar="N",
            help="run the workload on N query-engine threads "
                 "(default 1 = serial); tracing and the slow-query log "
                 "compose with concurrency",
        )
        p.add_argument(
            "--metrics", metavar="PATH", default=None, type=_output_path,
            help="write per-query metric records (JSON lines) to PATH",
        )
        p.add_argument(
            "--trace", metavar="PATH", default=None, type=_output_path,
            help="trace every query and write Chrome trace-event JSON "
                 "(Perfetto-loadable) to PATH",
        )
        p.add_argument(
            "--prom", metavar="PATH", default=None, type=_output_path,
            help="write a Prometheus text exposition of the final "
                 "metrics registry (plus cache/buffer gauges) to PATH",
        )
        p.add_argument(
            "--slow-ms", type=float, default=None, metavar="MS",
            help="capture queries whose wall time reaches MS "
                 "milliseconds in the slow-query log",
        )
        p.add_argument(
            "--slow-nodes", type=_positive_int, default=None, metavar="N",
            help="capture queries whose expansion visited at least N "
                 "network nodes in the slow-query log",
        )
        p.add_argument(
            "--slowlog", metavar="PATH", default=None, type=_output_path,
            help="persist captured slow queries as JSON lines to PATH "
                 "(with no --slow-ms/--slow-nodes, captures every "
                 "query); render with `repro slowlog PATH`",
        )
        p.add_argument(
            "--slo", metavar="SPEC", default=None,
            help="evaluate the SLO spec (JSON) against the final "
                 "metrics snapshot; exit non-zero on violation",
        )
        p.add_argument(
            "--telemetry-port", type=_port, default=None, metavar="PORT",
            help="serve live telemetry over HTTP on 127.0.0.1:PORT for "
                 "the duration of the run (/metrics, /healthz, /vars, "
                 "/slowlog, /profile, /slo, /recorder); 0 picks a free "
                 "port",
        )
        p.add_argument(
            "--record", metavar="PATH", default=None, type=_output_path,
            help="flight-record every executed query (parameters, plan "
                 "label, result digest, stats) plus committed updates "
                 "as JSON lines to PATH; re-execute and audit with "
                 "`repro replay PATH`",
        )
        p.add_argument(
            "--shadow-backend", choices=DISTANCE_BACKENDS, default=None,
            help="re-run a sampled fraction of diversified queries on "
                 "this second distance backend in flight and compare "
                 "result digests (divergences are counted and filed "
                 "into the slow-query log; exit code reflects them)",
        )
        p.add_argument(
            "--shadow-rate", type=_rate, default=1.0, metavar="FRACTION",
            help="fraction of queries shadow-executed, in (0, 1] "
                 "(default 1.0; sampling is deterministic in the "
                 "query's batch index)",
        )

    p = sub.add_parser("info", help="dataset statistics")
    add_dataset_args(p)

    p = sub.add_parser("generate", help="save a dataset snapshot")
    add_dataset_args(p)
    p.add_argument("--out", required=True, help="output JSON path")

    p = sub.add_parser("sk", help="SK workload against one index")
    add_dataset_args(p)
    add_workload_args(p)
    p.add_argument("--index", choices=INDEX_KINDS, default="sif")

    p = sub.add_parser("diversify", help="diversified workload, SEQ and COM")
    add_dataset_args(p)
    add_workload_args(p)
    p.add_argument("--index", choices=INDEX_KINDS, default="sif")
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--lambda", dest="lambda_", type=float, default=0.8)
    p.add_argument(
        "--distance-cache", type=_positive_int, default=None, metavar="ENTRIES",
        help="share a bounded LRU distance cache (capacity in node-map "
             "entries) across the workload's queries",
    )

    p = sub.add_parser(
        "update",
        help="mixed update+query workload against a live database",
    )
    add_dataset_args(p)
    add_workload_args(p)
    p.add_argument("--index", choices=INDEX_KINDS, default="sif")
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--lambda", dest="lambda_", type=float, default=0.8)
    p.add_argument(
        "--method", choices=("seq", "com"), default="seq",
        help="diversified algorithm for the query batches (default seq)",
    )
    p.add_argument(
        "--batches", type=_positive_int, default=4, metavar="N",
        help="query batches; updates apply between them (default 4)",
    )
    p.add_argument(
        "--updates-per-batch", type=int, default=20, metavar="N",
        help="updates applied between consecutive batches (default 20)",
    )
    p.add_argument(
        "--update-seed", type=int, default=202,
        help="seed for the update generator (default 202)",
    )
    p.add_argument(
        "--insert-weight", type=float, default=0.4,
        help="relative weight of object inserts in the mix",
    )
    p.add_argument(
        "--delete-weight", type=float, default=0.4,
        help="relative weight of object deletes in the mix",
    )
    p.add_argument(
        "--edge-weight-weight", type=float, default=0.2,
        help="relative weight of edge reweights in the mix",
    )
    p.add_argument(
        "--distance-cache", type=_positive_int, default=None,
        metavar="ENTRIES",
        help="share a bounded LRU distance cache across the workload "
             "(epoch-gated: edge reweights invalidate it)",
    )
    p.add_argument(
        "--result-cache", type=_positive_int, default=None,
        metavar="ENTRIES",
        help="install a semantic result cache validated against the "
             "update journal",
    )

    p = sub.add_parser("compare", help="one workload, every index kind")
    add_dataset_args(p)
    add_workload_args(p)

    p = sub.add_parser(
        "explain",
        help="run one query under tracing and print its pruning report",
    )
    add_dataset_args(p)
    add_backend_arg(p)
    p.add_argument("--index", choices=INDEX_KINDS, default="sif")
    p.add_argument(
        "--method", choices=("com", "seq", "sk"), default="com",
        help="query form: diversified via COM or SEQ, or a plain SK "
             "range query (default com)",
    )
    p.add_argument("--keywords", type=int, default=3, metavar="L")
    p.add_argument("--delta-max", type=float, default=None)
    p.add_argument("--workload-seed", type=int, default=101)
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--lambda", dest="lambda_", type=float, default=0.8)
    p.add_argument(
        "--query", type=int, default=0, metavar="N",
        help="explain the N-th query of the generated workload "
             "(default 0)",
    )
    p.add_argument(
        "--no-pruning", action="store_true",
        help="disable the COM diversity bounds (ablation)",
    )
    p.add_argument(
        "--trace", metavar="PATH", default=None, type=_output_path,
        help="also write the span tree as Chrome trace-event JSON",
    )
    p.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="judge the query against an MS-millisecond latency "
             "threshold (adds a SLOW/OK verdict to the report)",
    )
    p.add_argument(
        "--slow-nodes", type=_positive_int, default=None, metavar="N",
        help="judge the query against an N-visited-nodes threshold",
    )

    p = sub.add_parser(
        "slowlog",
        help="render a persisted slow-query log (JSON lines) as text",
    )
    p.add_argument("path", help="JSON-lines file written by --slowlog")
    p.add_argument(
        "--limit", type=_positive_int, default=None, metavar="N",
        help="render only the last N records",
    )

    p = sub.add_parser(
        "loadtest",
        help="drive sustained QPS (open loop) gated by a live SLO",
    )
    add_dataset_args(p)
    add_workload_args(p)
    p.add_argument("--index", choices=INDEX_KINDS, default="sif")
    p.add_argument(
        "--method", choices=("seq", "com", "sk"), default="seq",
        help="query form driven at rate (default seq)",
    )
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--lambda", dest="lambda_", type=float, default=0.8)
    p.add_argument(
        "--qps", type=_positive_float, default=20.0, metavar="RATE",
        help="offered arrival rate, queries/second (default 20)",
    )
    p.add_argument(
        "--duration", type=_positive_float, default=10.0, metavar="SECONDS",
        help="how long to sustain the rate (default 10)",
    )
    p.add_argument(
        "--distance-cache", type=_positive_int, default=None,
        metavar="ENTRIES",
        help="share a bounded LRU distance cache across the run",
    )
    p.add_argument(
        "--profile-out", metavar="PATH", default=None, type=_output_path,
        help="sample wall-clock stacks during the run and write folded "
             "flamegraph lines to PATH (render with `repro profile`)",
    )
    p.add_argument(
        "--profile-hz", type=_positive_float, default=None, metavar="HZ",
        help="profiler sampling rate (default 67 Hz; must be > 0)",
    )

    p = sub.add_parser(
        "replay",
        help="re-execute a --record flight journal; report divergences",
    )
    p.add_argument("path", help="JSON-lines flight journal from --record")
    p.add_argument(
        "--backend", choices=DISTANCE_BACKENDS, default=None,
        help="replay on this distance backend instead of the recorded "
             "one (cross-backend audit: identical digests expected)",
    )
    p.add_argument(
        "--scoring", choices=("array", "scalar"), default=None,
        help="replay under this scoring mode instead of the recorded "
             "one",
    )
    p.add_argument(
        "--frontier", choices=FRONTIER_MODES, default=None,
        help="replay over this INE frontier ('csr' or 'dict') instead "
             "of the recorded one (cross-frontier audit: identical "
             "digests expected)",
    )
    p.add_argument(
        "--workers", type=_positive_int, default=1, metavar="N",
        help="re-execute each epoch group on N engine threads "
             "(default 1; answers must not change)",
    )
    p.add_argument(
        "--limit", type=_positive_int, default=None, metavar="N",
        help="replay only the first N recorded queries",
    )

    p = sub.add_parser(
        "profile",
        help="render a folded-stack profile written by --profile-out",
    )
    p.add_argument("path", help="folded-stack file (stack<space>count lines)")
    p.add_argument(
        "--top", type=_positive_int, default=15, metavar="N",
        help="show the N hottest stacks/frames (default 15)",
    )

    p = sub.add_parser("bench", help="benchmark artifact tools")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    p = bench_sub.add_parser(
        "compare",
        help="diff two trajectory artifacts; flag headline regressions",
    )
    p.add_argument("old", help="baseline BENCH_*.json")
    p.add_argument("new", help="candidate BENCH_*.json")
    p.add_argument(
        "--fail-on-regression", type=float, default=None, metavar="PCT",
        help="exit non-zero when any headline metric moved in its "
             "worse direction by at least PCT percent",
    )
    p.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="report-only movement threshold when --fail-on-regression "
             "is not given (default 10)",
    )

    return parser


def _build_db(args) -> Database:
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    print(f"Building {args.profile} (scale {args.scale})...", file=sys.stderr)
    db = build_dataset(args.profile, scale=args.scale, **overrides)
    backend = getattr(args, "distance_backend", None)
    if backend:
        db.use_distance_backend(backend)
    frontier = getattr(args, "frontier", None)
    if frontier:
        db.use_frontier_mode(frontier)
    return db


def _config(args, **extra) -> WorkloadConfig:
    return WorkloadConfig(
        num_queries=args.queries,
        num_keywords=args.keywords,
        delta_max=args.delta_max,
        seed=args.workload_seed,
        **extra,
    )


def _attach_metrics_sink(db, args):
    """Attach a JSON-lines sink when ``--metrics`` was given."""
    path = getattr(args, "metrics", None)
    if not path:
        return None
    from .obs.sinks import JsonLinesSink

    sink = JsonLinesSink(path)
    db.metrics.add_sink(sink)
    return sink


def _close_metrics_sink(db, sink, error: bool = False) -> None:
    """Detach and close the sink; with ``error`` skip the snapshot.

    Runs in a ``finally`` so a query raising mid-workload still leaves
    a closed, flushed JSON-lines file behind.
    """
    if sink is None:
        return
    try:
        if not error:
            snapshot = db.metrics.snapshot()
            snapshot["type"] = "snapshot"
            db.metrics.emit(snapshot)
    finally:
        db.metrics.remove_sink(sink)
        sink.close()
    print(f"Wrote {sink.records_written} metric records to {sink.path}",
          file=sys.stderr)


def _enable_tracing(db, args) -> None:
    """Switch tracing on when any trace export was requested.

    Tracing is concurrency-native: each query draws its own tracer
    from the collector, so ``--trace`` composes with ``--workers N``.
    """
    if getattr(args, "trace", None):
        db.enable_tracing(max_traces=max(64, getattr(args, "queries", 64)))


def _enable_slow_log(db, args) -> None:
    """Install the slow-query log when capture was requested.

    ``--slowlog`` with neither threshold captures *every* query (a
    zero-latency threshold) — the deterministic smoke-test mode.
    """
    slow_ms = getattr(args, "slow_ms", None)
    slow_nodes = getattr(args, "slow_nodes", None)
    slowlog_path = getattr(args, "slowlog", None)
    if slow_ms is None and slow_nodes is None and slowlog_path is None:
        return
    latency = slow_ms / 1e3 if slow_ms is not None else None
    if latency is None and slow_nodes is None:
        latency = 0.0
    db.enable_slow_query_log(
        latency_seconds=latency,
        visited_nodes=slow_nodes,
        path=slowlog_path,
    )


def _report_slow_log(db) -> None:
    log = db.slow_query_log
    if log is None:
        return
    summary = log.summary()
    line = (f"Slow-query log: captured {summary['captured']} of "
            f"{summary['observed']} queries")
    if log.path is not None:
        line += f" → {log.path}"
    print(line, file=sys.stderr)
    db.disable_slow_query_log()


def _enable_recorder(db, args) -> None:
    """Install the flight recorder when ``--record`` was given.

    The header record stamps the journal with everything ``repro
    replay`` needs to rebuild the run: dataset profile/scale/seed,
    backend, scoring mode and starting epoch.
    """
    path = getattr(args, "record", None)
    if not path:
        return
    recorder = db.enable_flight_recorder(path=path)
    recorder.set_header(
        command=args.command,
        profile=args.profile,
        scale=args.scale,
        seed=args.seed,
        index=getattr(args, "index", None),
        distance_backend=db.distance_backend,
        scoring=db.scoring_mode,
        frontier=db.frontier_mode,
        workers=getattr(args, "workers", 1),
        data_version=db.data_version,
    )


def _finish_recorder(db) -> None:
    recorder = db.flight_recorder
    if recorder is None:
        return
    summary = recorder.summary()
    line = (f"Flight recorder: captured {summary['observed']} queries + "
            f"{summary['updates']} updates")
    if recorder.path is not None:
        line += f" → {recorder.path} (audit with `repro replay`)"
    print(line, file=sys.stderr)
    db.disable_flight_recorder()


def _enable_shadow(db, args) -> None:
    """Arm shadow execution when ``--shadow-backend`` was given."""
    backend = getattr(args, "shadow_backend", None)
    if backend is None:
        return
    db.engine.enable_shadow(backend, getattr(args, "shadow_rate", 1.0))


def _report_shadow(db, args) -> int:
    """Print the shadow verdict; non-zero when digests diverged."""
    backend = getattr(args, "shadow_backend", None)
    if backend is None:
        return 0
    counters = db.metrics.counters()
    executions = counters.get("shadow.executions", 0)
    divergences = counters.get("shadow.divergences", 0)
    print(f"Shadow [{backend}]: {executions} shadow executions, "
          f"{divergences} divergence(s)", file=sys.stderr)
    if divergences:
        print("shadow-backend audit FAILED", file=sys.stderr)
        return 1
    return 0


def _start_telemetry(db, args):
    """Start the HTTP telemetry server when ``--telemetry-port`` given.

    Started before the workload and stopped in its ``finally``, so an
    external scraper can watch counters advance while queries run.
    """
    port = getattr(args, "telemetry_port", None)
    if port is None:
        return None
    server = db.serve_telemetry(port=port)
    print(f"Telemetry: {server.url}/metrics (also /healthz /vars "
          f"/slowlog /profile /slo)", file=sys.stderr)
    return server


def _stop_telemetry(db, server) -> None:
    if server is not None:
        db.stop_telemetry()


def _check_slo(db, args) -> int:
    """Evaluate ``--slo`` (when given); the command's exit code."""
    spec_path = getattr(args, "slo", None)
    if not spec_path:
        return 0
    import json

    from .obs.slo import SLOSpec

    with open(spec_path, encoding="utf-8") as fh:
        spec = SLOSpec.from_dict(json.load(fh))
    checks = spec.evaluate(db.metrics.snapshot())
    print(f"SLO {spec.name}:")
    for check in checks:
        print(f"  {check.render()}")
    failed = [c for c in checks if not c.passed]
    if failed:
        print(f"SLO VIOLATED: {len(failed)} of {len(checks)} objectives "
              "failed", file=sys.stderr)
        return 1
    return 0


def _write_observability(db, args) -> None:
    """Write the ``--trace`` / ``--prom`` artifacts after a workload."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from .obs.export import write_chrome_trace

        collector = db.trace_collector
        write_chrome_trace(trace_path, collector)
        n = len(collector.records)
        lanes = len(collector.workers)
        print(f"Wrote {n} query traces ({lanes} worker lane(s)) to "
              f"{trace_path} (load at https://ui.perfetto.dev)",
              file=sys.stderr)
    prom_path = getattr(args, "prom", None)
    if prom_path:
        from .obs.export import database_gauges, write_prometheus

        write_prometheus(prom_path, db.metrics, gauges=database_gauges(db))
        print(f"Wrote Prometheus exposition to {prom_path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "info":
        db = _build_db(args)
        print_table([db.dataset_statistics()], f"Dataset {args.profile}")
        return 0

    if args.command == "generate":
        db = _build_db(args)
        save_dataset(db.store, args.out)
        print(f"Wrote {args.out}")
        return 0

    if args.command == "sk":
        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        _enable_tracing(db, args)
        _enable_slow_log(db, args)
        _enable_recorder(db, args)
        _enable_shadow(db, args)
        server = _start_telemetry(db, args)
        try:
            index = db.build_index(args.index)
            queries = generate_sk_queries(db, _config(args))
            report = run_sk_workload(db, index, queries, workers=args.workers)
            print_table([report.row()], f"SK workload on {args.profile}")
            _write_observability(db, args)
            _report_slow_log(db)
            _finish_recorder(db)
            rc = _check_slo(db, args) or _report_shadow(db, args)
        except BaseException:
            db.disable_flight_recorder()
            _stop_telemetry(db, server)
            _close_metrics_sink(db, sink, error=True)
            raise
        _stop_telemetry(db, server)
        _close_metrics_sink(db, sink)
        return rc

    if args.command == "diversify":
        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        _enable_tracing(db, args)
        _enable_slow_log(db, args)
        _enable_recorder(db, args)
        _enable_shadow(db, args)
        server = _start_telemetry(db, args)
        try:
            if args.distance_cache is not None:
                db.use_shared_distance_cache(max_entries=args.distance_cache)
            index = db.build_index(args.index)
            queries = generate_diversified_queries(
                db, _config(args, k=args.k, lambda_=args.lambda_)
            )
            rows = []
            for method in ("seq", "com"):
                index.counters.reset()
                rows.append(
                    run_diversified_workload(
                        db, index, queries, method=method,
                        workers=args.workers,
                    ).row()
                )
            print_table(rows, f"Diversified workload on {args.profile} "
                              f"(k={args.k}, lambda={args.lambda_})")
            if db.distance_cache is not None:
                print(f"Shared distance cache: {db.distance_cache.stats()}",
                      file=sys.stderr)
            _write_observability(db, args)
            _report_slow_log(db)
            _finish_recorder(db)
            rc = _check_slo(db, args) or _report_shadow(db, args)
        except BaseException:
            db.disable_flight_recorder()
            _stop_telemetry(db, server)
            _close_metrics_sink(db, sink, error=True)
            raise
        _stop_telemetry(db, server)
        _close_metrics_sink(db, sink)
        return rc

    if args.command == "update":
        from .workloads.updates import UpdateWorkloadConfig, run_update_workload

        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        _enable_tracing(db, args)
        _enable_slow_log(db, args)
        _enable_recorder(db, args)
        _enable_shadow(db, args)
        server = _start_telemetry(db, args)
        try:
            if args.distance_cache is not None:
                db.use_shared_distance_cache(max_entries=args.distance_cache)
            if args.result_cache is not None:
                db.use_result_cache(max_entries=args.result_cache)
            index = db.build_index(args.index)
            queries = generate_diversified_queries(
                db, _config(args, k=args.k, lambda_=args.lambda_)
            )
            update_config = UpdateWorkloadConfig(
                updates_per_batch=args.updates_per_batch,
                num_batches=args.batches,
                insert_weight=args.insert_weight,
                delete_weight=args.delete_weight,
                edge_weight_weight=args.edge_weight_weight,
                seed=args.update_seed,
            )
            report = run_update_workload(
                db, index, queries, update_config,
                method=args.method, workers=args.workers,
            )
            print_table(
                [report.row()],
                f"Mixed update workload on {args.profile} "
                f"(epoch {report.final_epoch})",
            )
            if db.distance_cache is not None:
                print(f"Shared distance cache: {db.distance_cache.stats()}",
                      file=sys.stderr)
            if db.result_cache is not None:
                print(f"Result cache: {db.result_cache.stats()}",
                      file=sys.stderr)
            _write_observability(db, args)
            _report_slow_log(db)
            _finish_recorder(db)
            rc = _check_slo(db, args) or _report_shadow(db, args)
        except BaseException:
            db.disable_flight_recorder()
            _stop_telemetry(db, server)
            _close_metrics_sink(db, sink, error=True)
            raise
        _stop_telemetry(db, server)
        _close_metrics_sink(db, sink)
        return rc

    if args.command == "compare":
        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        _enable_tracing(db, args)
        _enable_slow_log(db, args)
        _enable_recorder(db, args)
        _enable_shadow(db, args)
        server = _start_telemetry(db, args)
        try:
            queries = generate_sk_queries(db, _config(args))
            rows = []
            for kind in ("ir", "if", "sif", "sif-p"):
                index = db.build_index(kind)
                index.counters.reset()
                report = run_sk_workload(
                    db, index, queries, workers=args.workers
                )
                row = report.row()
                row["build_s"] = round(index.build_seconds, 2)
                row["size_KiB"] = index.size_bytes() // 1024
                rows.append(row)
            print_table(rows, f"Index comparison on {args.profile}")
            _write_observability(db, args)
            _report_slow_log(db)
            _finish_recorder(db)
            rc = _check_slo(db, args) or _report_shadow(db, args)
        except BaseException:
            db.disable_flight_recorder()
            _stop_telemetry(db, server)
            _close_metrics_sink(db, sink, error=True)
            raise
        _stop_telemetry(db, server)
        _close_metrics_sink(db, sink)
        return rc

    if args.command == "explain":
        db = _build_db(args)
        index = db.build_index(args.index)
        config = WorkloadConfig(
            num_queries=args.query + 1,
            num_keywords=args.keywords,
            delta_max=args.delta_max,
            k=args.k,
            lambda_=args.lambda_,
            seed=args.workload_seed,
        )
        if args.method == "sk":
            query = generate_sk_queries(db, config)[args.query]
        else:
            query = generate_diversified_queries(db, config)[args.query]
        slow_threshold = None
        if args.slow_ms is not None or args.slow_nodes is not None:
            from .obs.slowlog import SlowQueryThreshold

            slow_threshold = SlowQueryThreshold(
                latency_seconds=(
                    args.slow_ms / 1e3 if args.slow_ms is not None else None
                ),
                visited_nodes=args.slow_nodes,
            )
        report = db.explain(
            index, query,
            method=args.method if args.method != "sk" else "com",
            enable_pruning=not args.no_pruning,
            slow_threshold=slow_threshold,
        )
        print(report.render())
        if args.trace:
            from .obs.export import write_chrome_trace

            write_chrome_trace(args.trace, [report.trace])
            print(f"Wrote the trace to {args.trace} "
                  "(load at https://ui.perfetto.dev)", file=sys.stderr)
        return 0

    if args.command == "slowlog":
        import json

        from .obs.slowlog import render_record

        path = Path(args.path)
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 1
        records = []
        skipped = 0
        with path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1  # truncated tail of a killed run
                    continue
                if record.get("type") in (
                    "slow_query", "slo_breach", "shadow_divergence",
                ):
                    records.append(record)
        if args.limit is not None:
            records = records[-args.limit:]
        if skipped:
            print(f"warning: skipped {skipped} malformed line(s)",
                  file=sys.stderr)
        if not records:
            print("no slow-query records found")
            return 0
        for record in records:
            print(render_record(record))
            print()
        print(f"{len(records)} record(s) rendered from {path}",
              file=sys.stderr)
        return 0

    if args.command == "replay":
        from .workloads.replay import (
            ReplayConfig,
            load_flight_journal,
            run_replay,
        )

        path = Path(args.path)
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 1
        journal = load_flight_journal(path)
        if journal.header is None:
            print(f"error: {path} has no flight_header record — was it "
                  "written with --record?", file=sys.stderr)
            return 2
        if not journal.queries:
            print(f"error: {path} contains no flight records",
                  file=sys.stderr)
            return 2
        header = journal.header
        profile = header.get("profile")
        if profile not in PROFILES:
            print(f"error: unknown dataset profile {profile!r} in journal "
                  "header", file=sys.stderr)
            return 2
        overrides = {}
        if header.get("seed") is not None:
            overrides["seed"] = header["seed"]
        scale = header.get("scale", 1.0)
        print(f"Rebuilding {profile} (scale {scale}) from journal header...",
              file=sys.stderr)
        db = build_dataset(profile, scale=scale, **overrides)
        backend = args.backend or header.get("distance_backend") or "dijkstra"
        db.use_distance_backend(backend)
        scoring = args.scoring or header.get("scoring")
        if scoring:
            db.use_scoring_mode(scoring)
        frontier = args.frontier or header.get("frontier")
        if frontier:
            db.use_frontier_mode(frontier)
        sink = _attach_metrics_sink(db, args)
        try:
            config = ReplayConfig(
                backend=backend,
                scoring=scoring or db.scoring_mode,
                frontier=db.frontier_mode,
                workers=args.workers,
                limit=args.limit,
            )
            report = run_replay(db, journal, config, journal_path=str(path))
            print(report.render())
        except BaseException:
            _close_metrics_sink(db, sink, error=True)
            raise
        _close_metrics_sink(db, sink)
        return 0 if report.passed else 1

    if args.command == "loadtest":
        from .obs.slo import SLOSpec
        from .workloads.loadtest import LoadTestConfig, run_loadtest

        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        _enable_tracing(db, args)
        _enable_slow_log(db, args)
        _enable_recorder(db, args)
        _enable_shadow(db, args)
        server = _start_telemetry(db, args)
        profiler = None
        if args.profile_out:
            profiler = db.enable_profiler(hz=args.profile_hz)
        try:
            if args.distance_cache is not None:
                db.use_shared_distance_cache(max_entries=args.distance_cache)
            index = db.build_index(args.index)
            config = _config(args, k=args.k, lambda_=args.lambda_)
            if args.method == "sk":
                queries = generate_sk_queries(db, config)
            else:
                queries = generate_diversified_queries(db, config)
            spec = None
            if args.slo:
                import json

                with open(args.slo, encoding="utf-8") as fh:
                    spec = SLOSpec.from_dict(json.load(fh))
            lt_config = LoadTestConfig(
                qps=args.qps,
                duration_seconds=args.duration,
                workers=args.workers,
                method=args.method,
            )
            report = run_loadtest(
                db, index, queries, lt_config,
                slo_spec=spec, label=f"{args.profile}/{args.index}",
            )
            print_table(
                [report.row()],
                f"Load test on {args.profile} "
                f"({args.qps:g} qps offered for {args.duration:g}s)",
            )
            if spec is not None:
                verdict = report.slo or {}
                for check in verdict.get("checks", ()):
                    rule = check.get("rule", {})
                    value = check.get("value")
                    shown = (f"{value:.6g}"
                             if isinstance(value, (int, float)) else "no data")
                    status = ("SKIP" if check.get("no_data")
                              else "PASS" if check.get("passed") else "FAIL")
                    print(f"  {status}  {rule.get('name', '?')}: "
                          f"{rule.get('metric', '?')} = {shown} "
                          f"(want {rule.get('op', '?')} "
                          f"{rule.get('threshold', '?')})")
                print(
                    f"Live SLO [{verdict.get('spec', '?')}]: "
                    f"{verdict.get('evaluations', 0)} window evaluations, "
                    f"{verdict.get('breach_windows', 0)} in breach — "
                    f"{'PASS' if report.slo_passed else 'FAIL'}",
                    file=sys.stderr,
                )
            if profiler is not None:
                db.disable_profiler()
                profiler.write_folded(args.profile_out)
                pstats = profiler.stats()
                print(f"Wrote {pstats['samples']} profile samples "
                      f"({pstats['distinct_stacks']} stacks) to "
                      f"{args.profile_out} (render with `repro profile`)",
                      file=sys.stderr)
                profiler = None
            _write_observability(db, args)
            _report_slow_log(db)
            _finish_recorder(db)
            rc = 0 if report.slo_passed else 1
            if rc:
                print("live SLO gate FAILED", file=sys.stderr)
            rc = rc or _report_shadow(db, args)
        except BaseException:
            if profiler is not None:
                db.disable_profiler()
            db.disable_flight_recorder()
            _stop_telemetry(db, server)
            _close_metrics_sink(db, sink, error=True)
            raise
        _stop_telemetry(db, server)
        _close_metrics_sink(db, sink)
        return rc

    if args.command == "profile":
        from .obs.profiler import parse_folded, render_profile

        path = Path(args.path)
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 1
        with path.open(encoding="utf-8") as fh:
            table = parse_folded(fh)
        if not table:
            print("no profile samples found")
            return 0
        print(render_profile(table, top=args.top))
        return 0

    if args.command == "bench" and args.bench_command == "compare":
        from .bench.compare import (
            compare_trajectories,
            load_trajectory,
            presence_changes,
            render_comparison,
        )

        try:
            old_doc = load_trajectory(args.old)
            new_doc = load_trajectory(args.new)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        deltas = compare_trajectories(old_doc, new_doc)
        presence = presence_changes(old_doc, new_doc)
        threshold = (
            args.fail_on_regression
            if args.fail_on_regression is not None
            else args.threshold
        )
        print(render_comparison(deltas, threshold, presence=presence))
        if args.fail_on_regression is not None and any(
            d.is_regression(args.fail_on_regression) for d in deltas
        ):
            print("benchmark regression gate FAILED", file=sys.stderr)
            return 1
        return 0

    return 1  # pragma: no cover — argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
