"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``info``      build a dataset profile and print its Table-2 statistics
``generate``  build a dataset profile and save it as a JSON snapshot
``sk``        run an SK workload against one index and print the report
``diversify`` run a diversified workload (SEQ and COM) and print both
``compare``   run one workload against every index kind (mini Fig. 6)

The workload commands accept ``--metrics <path>`` to stream one JSON
record per query (latency, stage breakdown, cache/buffer deltas) plus
workload summaries and a final registry snapshot to a JSON-lines file,
and ``diversify`` accepts ``--distance-cache <entries>`` to serve the
workload through a shared bounded distance cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.reporting import print_table
from .core.database import INDEX_KINDS, Database
from .datasets.catalog import PROFILES, build_dataset
from .datasets.io import save_dataset
from .workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)
from .workloads.runner import run_diversified_workload, run_sk_workload

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Diversified spatial keyword search on road networks "
        "(EDBT 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "profile", choices=sorted(PROFILES), help="dataset profile"
        )
        p.add_argument("--scale", type=float, default=1.0,
                       help="proportional dataset scale (default 1.0)")
        p.add_argument("--seed", type=int, default=None,
                       help="override the profile's generator seed")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--queries", type=int, default=50)
        p.add_argument("--keywords", type=int, default=3, metavar="L")
        p.add_argument("--delta-max", type=float, default=None)
        p.add_argument("--workload-seed", type=int, default=101)
        p.add_argument(
            "--metrics", metavar="PATH", default=None,
            help="write per-query metric records (JSON lines) to PATH",
        )

    p = sub.add_parser("info", help="dataset statistics")
    add_dataset_args(p)

    p = sub.add_parser("generate", help="save a dataset snapshot")
    add_dataset_args(p)
    p.add_argument("--out", required=True, help="output JSON path")

    p = sub.add_parser("sk", help="SK workload against one index")
    add_dataset_args(p)
    add_workload_args(p)
    p.add_argument("--index", choices=INDEX_KINDS, default="sif")

    p = sub.add_parser("diversify", help="diversified workload, SEQ and COM")
    add_dataset_args(p)
    add_workload_args(p)
    p.add_argument("--index", choices=INDEX_KINDS, default="sif")
    p.add_argument("--k", type=int, default=6)
    p.add_argument("--lambda", dest="lambda_", type=float, default=0.8)
    p.add_argument(
        "--distance-cache", type=_positive_int, default=None, metavar="ENTRIES",
        help="share a bounded LRU distance cache (capacity in node-map "
             "entries) across the workload's queries",
    )

    p = sub.add_parser("compare", help="one workload, every index kind")
    add_dataset_args(p)
    add_workload_args(p)

    return parser


def _build_db(args) -> Database:
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    print(f"Building {args.profile} (scale {args.scale})...", file=sys.stderr)
    return build_dataset(args.profile, scale=args.scale, **overrides)


def _config(args, **extra) -> WorkloadConfig:
    return WorkloadConfig(
        num_queries=args.queries,
        num_keywords=args.keywords,
        delta_max=args.delta_max,
        seed=args.workload_seed,
        **extra,
    )


def _attach_metrics_sink(db, args):
    """Attach a JSON-lines sink when ``--metrics`` was given."""
    path = getattr(args, "metrics", None)
    if not path:
        return None
    from .obs.sinks import JsonLinesSink

    sink = JsonLinesSink(path)
    db.metrics.add_sink(sink)
    return sink


def _close_metrics_sink(db, sink) -> None:
    if sink is None:
        return
    snapshot = db.metrics.snapshot()
    snapshot["type"] = "snapshot"
    db.metrics.emit(snapshot)
    db.metrics.remove_sink(sink)
    sink.close()
    print(f"Wrote {sink.records_written} metric records to {sink.path}",
          file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "info":
        db = _build_db(args)
        print_table([db.dataset_statistics()], f"Dataset {args.profile}")
        return 0

    if args.command == "generate":
        db = _build_db(args)
        save_dataset(db.store, args.out)
        print(f"Wrote {args.out}")
        return 0

    if args.command == "sk":
        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        index = db.build_index(args.index)
        queries = generate_sk_queries(db, _config(args))
        report = run_sk_workload(db, index, queries)
        print_table([report.row()], f"SK workload on {args.profile}")
        _close_metrics_sink(db, sink)
        return 0

    if args.command == "diversify":
        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        if args.distance_cache is not None:
            db.use_shared_distance_cache(max_entries=args.distance_cache)
        index = db.build_index(args.index)
        queries = generate_diversified_queries(
            db, _config(args, k=args.k, lambda_=args.lambda_)
        )
        rows = []
        for method in ("seq", "com"):
            index.counters.reset()
            rows.append(
                run_diversified_workload(db, index, queries, method=method).row()
            )
        print_table(rows, f"Diversified workload on {args.profile} "
                          f"(k={args.k}, lambda={args.lambda_})")
        if db.distance_cache is not None:
            print(f"Shared distance cache: {db.distance_cache.stats()}",
                  file=sys.stderr)
        _close_metrics_sink(db, sink)
        return 0

    if args.command == "compare":
        db = _build_db(args)
        sink = _attach_metrics_sink(db, args)
        queries = generate_sk_queries(db, _config(args))
        rows = []
        for kind in ("ir", "if", "sif", "sif-p"):
            index = db.build_index(kind)
            index.counters.reset()
            report = run_sk_workload(db, index, queries)
            row = report.row()
            row["build_s"] = round(index.build_seconds, 2)
            row["size_KiB"] = index.size_bytes() // 1024
            rows.append(row)
        print_table(rows, f"Index comparison on {args.profile}")
        _close_metrics_sink(db, sink)
        return 0

    return 1  # pragma: no cover — argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
