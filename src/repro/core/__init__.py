"""Core algorithms: SK search, diversification, and the Database facade."""

from .analysis import CostModel
from .core_pairs import CorePair, CorePairMaintainer
from .database import INDEX_KINDS, Database
from .diversified_search import com_search, seq_search
from .diversify import greedy_diversify
from .ine import ExpansionStats, INEExpansion
from .knn import SKkNNQuery, SKkNNResult, knn_search
from .objective import DiversificationObjective
from .queries import (
    DiversifiedResult,
    DiversifiedSKQuery,
    QueryStats,
    ResultItem,
    SKQuery,
    SKResult,
)

__all__ = [
    "CostModel",
    "CorePair",
    "CorePairMaintainer",
    "INDEX_KINDS",
    "Database",
    "com_search",
    "seq_search",
    "greedy_diversify",
    "SKkNNQuery",
    "SKkNNResult",
    "knn_search",
    "ExpansionStats",
    "INEExpansion",
    "DiversificationObjective",
    "DiversifiedResult",
    "DiversifiedSKQuery",
    "QueryStats",
    "ResultItem",
    "SKQuery",
    "SKResult",
]
