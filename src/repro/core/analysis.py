"""The paper's analytical cost model (§3.2, "Performance Analysis").

For a query with ``l = |q.T|`` keywords over a road network where each
edge carries on average ``m`` objects with ``s`` keywords drawn
uniformly from a vocabulary of size ``|V|``, and an expansion that
visits ``l_e`` edges, the expected number of objects loaded is

* ``C1 = l_e · m`` — objects stored with their edges (CCAM): every
  object on every visited edge is fetched for the keyword test;
* ``C2 = l_e · l · m·s/|V|`` — inverted file (IF): for each query
  keyword, the expected number of objects on the edge containing it;
* ``C3 = l_e · p_s^l · l · m·s/|V|`` — signature-based inverted file
  (SIF): the edge is only probed when every keyword's signature bit is
  set, which happens with probability ``p_s^l`` where
  ``p_s = 1 − (1 − s/|V|)^m`` is the probability that at least one of
  the edge's ``m`` objects carries a given keyword.

The model assumes independent, uniformly-drawn keywords; the test suite
validates it against measured loads on exactly such a dataset
(``zipf_z=0``, ``num_topics=1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryError

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Expected object loads per §3.2.

    Parameters
    ----------
    objects_per_edge:
        ``m`` — average number of objects on an edge.
    keywords_per_object:
        ``s`` — average keyword-set size.
    vocabulary_size:
        ``|V|``.
    """

    objects_per_edge: float
    keywords_per_object: float
    vocabulary_size: int

    def __post_init__(self) -> None:
        if self.objects_per_edge < 0:
            raise QueryError("objects_per_edge must be non-negative")
        if not 0 <= self.keywords_per_object <= self.vocabulary_size:
            raise QueryError(
                "keywords_per_object must lie in [0, vocabulary_size]"
            )
        if self.vocabulary_size <= 0:
            raise QueryError("vocabulary_size must be positive")

    # ------------------------------------------------------------------
    @property
    def keyword_presence_probability(self) -> float:
        """``p_s = 1 − (1 − s/|V|)^m``: some object on the edge has t."""
        per_object = self.keywords_per_object / self.vocabulary_size
        return 1.0 - (1.0 - per_object) ** self.objects_per_edge

    def matching_objects_per_edge(self) -> float:
        """Expected objects on one edge containing one given keyword."""
        return (
            self.objects_per_edge
            * self.keywords_per_object
            / self.vocabulary_size
        )

    # ------------------------------------------------------------------
    def c1_edge_store(self, edges_accessed: int, num_keywords: int = 1) -> float:
        """``C1``: objects loaded when objects live with their edges."""
        return edges_accessed * self.objects_per_edge

    def c2_inverted_file(self, edges_accessed: int, num_keywords: int) -> float:
        """``C2``: objects loaded through the plain inverted file."""
        return (
            edges_accessed * num_keywords * self.matching_objects_per_edge()
        )

    def c3_signature(self, edges_accessed: int, num_keywords: int) -> float:
        """``C3``: objects loaded through the signature-based file.

        Exact expectation: postings of keyword ``t`` are loaded only
        when *every* query keyword's bit is set.  ``t``'s own presence
        is implied by its postings being non-empty
        (``E[N_t · 1(N_t ≥ 1)] = E[N_t]``), so the pass probability
        contributes ``p_s^(l−1)`` for the *other* keywords:

        ``C3 = l_e · l · (m·s/|V|) · p_s^(l−1)``

        The paper's printed formula uses ``p_s^l`` — it multiplies the
        unconditional per-term expectation by the full pass
        probability, double-counting the queried keyword's own rarity.
        Both agree that SIF's advantage grows with ``l``; only the
        exact form matches measurements (see
        ``tests/core/test_analysis.py``), and :meth:`c3_signature_paper`
        keeps the printed version for reference.
        """
        pass_others = self.keyword_presence_probability ** max(
            0, num_keywords - 1
        )
        return pass_others * self.c2_inverted_file(edges_accessed, num_keywords)

    def c3_signature_paper(self, edges_accessed: int, num_keywords: int) -> float:
        """The paper's printed ``C3`` (see :meth:`c3_signature`)."""
        pass_probability = self.keyword_presence_probability ** num_keywords
        return pass_probability * self.c2_inverted_file(
            edges_accessed, num_keywords
        )

    def predicted_ordering_holds(self, edges_accessed: int, num_keywords: int) -> bool:
        """The paper's conclusion: ``C3 <= C2 <= C1`` whenever the
        vocabulary is larger than the keyword sets."""
        c1 = self.c1_edge_store(edges_accessed)
        c2 = self.c2_inverted_file(edges_accessed, num_keywords)
        c3 = self.c3_signature(edges_accessed, num_keywords)
        return c3 <= c2 + 1e-12 and (
            c2 <= c1 * num_keywords + 1e-12
        )

    @classmethod
    def from_store(cls, store) -> "CostModel":
        """Fit the model parameters from an object store."""
        network_edges = store.network.num_edges
        total_objects = len(store)
        m = total_objects / max(1, network_edges)
        s = store.average_keywords_per_object()
        vocab = len(store.vocabulary())
        return cls(m, s, vocab)
