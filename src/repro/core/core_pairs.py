"""Incremental maintenance of core pairs and θ_T (paper Algorithm 5, §4.2).

The *core pairs* CP(R) are the ⌊k/2⌋ pairs the greedy diversification
would pick on the objects seen so far; the *core objects* CO are their
members and θ_T is the smallest pair distance in CP.  Theorem 1: θ_T
grows monotonically as objects arrive, which is what makes the COM
pruning sound.

Algorithm 5 updates CP against one arrival in O(n·k) instead of
re-running the greedy from scratch: a new object ``o`` only matters if
some non-dominating object ``o'`` has ``θ(o, o') > θ_T`` (Lemma 1); if
``o'`` was itself a core object its old partner is kicked out and
re-inserted as a fresh arrival, which can cascade at most k/2 times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..nplib import np
from ..obs.tracing import NULL_TRACER
from .diversify import greedy_diversify
from .objective import DiversificationObjective
from .queries import ResultItem

__all__ = ["CorePair", "CorePairMaintainer"]

PairDistance = Callable[[ResultItem, ResultItem], float]

#: Below this many opponents a batched θ row costs more in array setup
#: than the scalar loop it replaces.
_ARRAY_ROW_MIN = 8


@dataclass
class CorePair:
    """One core pair with its diversification distance θ."""

    theta: float
    u: ResultItem
    v: ResultItem

    def members(self) -> Tuple[int, int]:
        return (self.u.object.object_id, self.v.object.object_id)

    def contains(self, object_id: int) -> bool:
        return object_id in self.members()


class CorePairMaintainer:
    """Streams objects in and keeps CP, CO and θ_T up to date."""

    def __init__(
        self,
        k: int,
        objective: DiversificationObjective,
        pair_distance: PairDistance,
        pair_distance_upper_bound: Optional[PairDistance] = None,
        tracer=NULL_TRACER,
        array_scoring: bool = False,
    ) -> None:
        """``pair_distance_upper_bound`` optionally supplies a tighter
        upper bound on δ(a, b) than the triangle inequality through the
        query (e.g. landmark bounds); it must never under-estimate the
        true distance or the pruning becomes unsound.

        ``tracer`` records a ``com.core_pair`` event on every CP
        insertion, so a trace shows when (and at what θ) the result set
        last changed.

        ``array_scoring`` batches each arrival's θ-upper-bound row
        through numpy (:meth:`DiversificationObjective.theta_batch`)
        instead of looping object-by-object — same bounds bit for bit,
        same counters, so every pruning decision is unchanged.  Only
        engaged when no landmark bound is installed (landmark bounds
        are per-pair callbacks and force the scalar row)."""
        if k < 2:
            raise ValueError("k must be at least 2")
        self._k = k
        self._num_pairs = k // 2
        self._objective = objective
        self._pair_distance = pair_distance
        self._pair_distance_ub = pair_distance_upper_bound
        self._tracer = tracer
        self._array_scoring = (
            array_scoring
            and np is not None
            and pair_distance_upper_bound is None
        )
        self._pairs: List[CorePair] = []  # descending by theta
        #: every active (non-pruned) object seen so far, by id
        self._arrived: Dict[int, ResultItem] = {}
        #: object_id -> best θ against any other active object
        self._best_theta: Dict[int, float] = {}
        self.theta_evaluations = 0
        #: How often each upper-bound source decided a θ bound: the
        #: triangle inequality through the query vs an installed
        #: landmark bound (ablation A4's mechanism, now observable).
        self.ub_triangle_wins = 0
        self.ub_landmark_wins = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def theta_t(self) -> float:
        """Current pruning threshold θ_T (−inf before CP is full)."""
        if len(self._pairs) < self._num_pairs:
            return float("-inf")
        return self._pairs[-1].theta

    @property
    def pairs(self) -> List[CorePair]:
        return list(self._pairs)

    def core_objects(self) -> List[ResultItem]:
        """The current diversified result, ordered by distance.

        Members of the core pairs come first; when they do not reach
        ``k`` (odd ``k``, or fewer than ``k`` candidates overall) the
        closest remaining arrived objects fill the result, matching
        Algorithm 1's behaviour on small candidate sets.
        """
        out: List[ResultItem] = []
        seen: Set[int] = set()
        for pair in self._pairs:
            for item in (pair.u, pair.v):
                if item.object.object_id not in seen:
                    seen.add(item.object.object_id)
                    out.append(item)
        if len(out) < self._k:
            spare = [
                item for oid, item in self._arrived.items() if oid not in seen
            ]
            spare.sort(key=lambda it: (it.distance, it.object.object_id))
            out.extend(spare[: self._k - len(out)])
        out.sort(key=lambda it: (it.distance, it.object.object_id))
        return out

    def active_objects(self) -> List[ResultItem]:
        return list(self._arrived.values())

    def is_core(self, object_id: int) -> bool:
        return any(p.contains(object_id) for p in self._pairs)

    def best_theta(self, object_id: int) -> float:
        """Largest θ between this object and any other active object."""
        return self._best_theta.get(object_id, float("-inf"))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _theta(self, a: ResultItem, b: ResultItem) -> float:
        self.theta_evaluations += 1
        return self._objective.theta(
            a.distance, b.distance, self._pair_distance(a, b)
        )

    def _theta_upper_bound(self, a: ResultItem, b: ResultItem) -> float:
        """Cheap θ upper bound needing no network distance.

        By the triangle inequality through the query point,
        ``δ(a, b) <= δ(a, q) + δ(b, q)``; θ is monotone in the pair
        distance, so plugging the bound in yields an upper bound.  An
        installed custom bound (landmarks) tightens it further.
        """
        ub = a.distance + b.distance
        if self._pair_distance_ub is not None:
            lm = self._pair_distance_ub(a, b)
            if lm < ub:
                ub = lm
                self.ub_landmark_wins += 1
            else:
                self.ub_triangle_wins += 1
        else:
            self.ub_triangle_wins += 1
        return self._objective.theta(a.distance, b.distance, ub)

    def _theta_row(
        self,
        item: ResultItem,
        others: List[ResultItem],
        theta_t_now: float,
    ) -> Dict[int, float]:
        """θ of ``item`` against every object in ``others``.

        The θ upper bound (triangle inequality through the query) is
        evaluated for the whole row; only opponents whose bound clears
        ``theta_t_now`` get the exact (network-distance) θ.  Under
        array scoring the bound row is one ``theta_batch`` call — the
        per-element arithmetic is identical to the scalar loop, so the
        ``ub <= θ_T`` decisions, the counters (``ub_triangle_wins``,
        ``theta_evaluations``) and the returned values all match.
        """
        if self._array_scoring and len(others) >= _ARRAY_ROW_MIN:
            dists_v = np.fromiter(
                (o.distance for o in others), np.float64, len(others)
            )
            ubs = self._objective.theta_batch(
                item.distance, dists_v, item.distance + dists_v
            )
            self.ub_triangle_wins += len(others)
            return {
                other.object.object_id: (
                    ub if ub <= theta_t_now else self._theta(item, other)
                )
                for other, ub in zip(others, ubs.tolist())
            }
        out: Dict[int, float] = {}
        for other in others:
            ub = self._theta_upper_bound(item, other)
            out[other.object.object_id] = (
                ub if ub <= theta_t_now else self._theta(item, other)
            )
        return out

    def bootstrap(self, items: List[ResultItem]) -> None:
        """Initialise CP on the first arrivals with the greedy algorithm."""
        if self._pairs or self._arrived:
            raise ValueError("bootstrap must run on an empty maintainer")
        for item in items:
            self._arrived[item.object.object_id] = item
        # Pairwise θ for the small bootstrap set; also warms best_theta.
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                t = self._theta(a, b)
                for obj in (a, b):
                    oid = obj.object.object_id
                    if t > self._best_theta.get(oid, float("-inf")):
                        self._best_theta[oid] = t
        chosen = greedy_diversify(
            items, 2 * self._num_pairs, self._objective, self._pair_distance
        )
        pairs: List[CorePair] = []
        # Re-derive the greedy pairing structure over the chosen objects.
        remaining = list(chosen)
        while len(remaining) >= 2:
            best: Optional[Tuple[float, int, int]] = None
            for i in range(len(remaining)):
                for j in range(i + 1, len(remaining)):
                    t = self._theta(remaining[i], remaining[j])
                    if best is None or t > best[0]:
                        best = (t, i, j)
            t, i, j = best
            pairs.append(CorePair(t, remaining[i], remaining[j]))
            remaining = [
                x for idx, x in enumerate(remaining) if idx not in (i, j)
            ]
        pairs.sort(key=lambda p: -p.theta)
        self._pairs = pairs[: self._num_pairs]

    def add(self, item: ResultItem) -> None:
        """Algorithm 5: process one arriving object."""
        oid = item.object.object_id
        if oid in self._arrived:
            return
        others = list(self._arrived.values())
        self._arrived[oid] = item

        # θ against every active object; also refresh best_theta so the
        # COM pruning (Algorithm 6 lines 9-14) is O(1) per object.  The
        # expensive network pair distance is only computed when the
        # cheap triangle-inequality bound clears θ_T: a pair whose θ
        # upper bound is below θ_T can never enter the core pairs, so
        # its exact value is irrelevant to every later decision (φ
        # membership requires θ > θ_T, and the visited-object pruning
        # test only asks whether θ stays below θ_T).
        theta_t_now = self.theta_t
        thetas = self._theta_row(item, others, theta_t_now)
        for other_id, t in thetas.items():
            if t > self._best_theta.get(other_id, float("-inf")):
                self._best_theta[other_id] = t
        if thetas:
            self._best_theta[oid] = max(thetas.values())
        else:
            self._best_theta[oid] = float("-inf")

        current = item
        current_thetas = thetas
        # The cascade is bounded by k/2 rounds (paper's correctness
        # argument); the loop bound is doubled purely as a safety net.
        for _ in range(2 * self._num_pairs + 2):
            if not self._process_arrival(current, current_thetas):
                break
            # _process_arrival re-queues a kicked-out object via
            # self._requeued; fetch and continue the cascade.
            current = self._requeued
            theta_t_now = self.theta_t
            opponents = [
                other
                for other in self._arrived.values()
                if other.object.object_id != current.object.object_id
            ]
            current_thetas = self._theta_row(current, opponents, theta_t_now)

    _requeued: ResultItem

    def _partner_theta(self, object_id: int) -> float:
        """θ of the core pair containing ``object_id`` (inf when absent)."""
        for pair in self._pairs:
            if pair.contains(object_id):
                return pair.theta
        return float("inf")

    def _process_arrival(
        self, item: ResultItem, thetas: Dict[int, float]
    ) -> bool:
        """One round of the Algorithm 5 while-loop.

        Returns ``True`` when an object was kicked out of CP and must be
        reprocessed (case iii); ``False`` terminates the loop.
        """
        oid = item.object.object_id
        theta_t = self.theta_t

        # φ(o): objects with θ(o, o_x) > θ_T not dominating o.  A core
        # object o_x dominates o when θ(o, o_x) < θ(o_x, partner).
        phi: List[Tuple[float, int]] = []
        for other_id, t in thetas.items():
            if other_id == oid or other_id not in self._arrived:
                continue
            if t <= theta_t:
                continue
            if self.is_core(other_id) and t < self._partner_theta(other_id):
                continue  # dominated by this core object (Lemma 1)
            phi.append((t, other_id))
        if not phi:
            return False  # case i: o cannot improve CP

        t_best, partner_id = max(phi)
        partner = self._arrived[partner_id]
        new_pair = CorePair(t_best, item, partner)

        if not self.is_core(partner_id):
            # Case ii: replace the weakest core pair with (o, o').
            if len(self._pairs) >= self._num_pairs:
                self._pairs.pop()
            self._insert_pair(new_pair)
            return False
        # Case iii: o' is core; (o, o') replaces (o', o_y) and o_y is
        # treated as a fresh arrival.
        old_pair = next(p for p in self._pairs if p.contains(partner_id))
        self._pairs.remove(old_pair)
        kicked = old_pair.v if old_pair.u.object.object_id == partner_id else old_pair.u
        self._insert_pair(new_pair)
        self._requeued = kicked
        return True

    def _insert_pair(self, pair: CorePair) -> None:
        self._pairs.append(pair)
        self._pairs.sort(key=lambda p: -p.theta)
        if self._tracer.enabled:
            u, v = pair.members()
            self._tracer.event(
                "com.core_pair", theta=pair.theta, u=u, v=v,
                theta_t=self.theta_t,
            )

    def prune(self, object_id: int) -> None:
        """Remove a visited object from future computation (Alg. 6 L14)."""
        if self.is_core(object_id):
            raise ValueError(f"cannot prune core object {object_id}")
        self._arrived.pop(object_id, None)
        self._best_theta.pop(object_id, None)
