"""The :class:`Database` facade — one object tying the system together.

A database owns the road network, its CCAM disk layout, the network
R-tree, the object store and the shared disk manager (buffer pool +
I/O statistics).  Object indexes are built against it by name.

Query execution lives in :mod:`repro.engine`: the facade's entry
points (:meth:`Database.sk_search`, :meth:`Database.sk_knn`,
:meth:`Database.diversified_search`) plan the query
(:func:`repro.engine.plan.plan_sk` and friends) and hand the plan to
the database's :class:`~repro.engine.executor.QueryEngine`.  All
per-query mutable state lives in the engine's
:class:`~repro.engine.context.ExecutionContext`, which is what lets
``db.engine.execute_many(plans, workers=N)`` run queries concurrently
against the very same index objects.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from ..engine.executor import QueryEngine
from ..engine.plan import QueryPlan, plan_diversified, plan_knn, plan_sk
from ..errors import QueryError, ReproError
from ..index.base import ObjectIndex
from ..index.edge_store import EdgeStoreIndex
from ..index.inverted_file import InvertedFileIndex
from ..index.inverted_rtree import InvertedRTreeIndex
from ..index.sif import SIFIndex
from ..index.sif_g import SIFGIndex
from ..index.sif_p import SIFPIndex
from ..network.ccam import CCAMStore
from ..network.ch import ContractionHierarchy
from ..network.csr import CSRGraph
from ..network.distance import DISTANCE_BACKENDS, DistanceBackend, DistanceCache
from ..network.graph import NetworkPosition, RoadNetwork
from ..network.hub_labels import HubLabelBackend
from ..nplib import HAVE_NUMPY, require_numpy
from ..obs.metrics import MetricsRegistry
from ..obs.slowlog import SlowQueryLog, SlowQueryThreshold
from ..obs.tracing import NULL_TRACER, TraceCollector, Tracer
from ..network.objects import ObjectStore, SpatioTextualObject, build_edge_rtree, snap_point_to_edge
from ..spatial.geometry import Point
from ..spatial.kdtree import KDTreePartition
from ..spatial.rtree import RTree
from ..spatial.zorder import ZOrderCurve
from ..storage.pagefile import DiskManager
from .knn import SKkNNQuery
from .objective import SCORING_MODES
from .queries import DiversifiedResult, DiversifiedSKQuery, QueryStats, SKQuery, SKResult
from .updates import UpdateJournal, UpdateRecord

__all__ = ["Database", "FRONTIER_MODES", "INDEX_KINDS"]

#: Registry of index kinds accepted by :meth:`Database.build_index`.
INDEX_KINDS = ("ccam", "ir", "if", "sif", "sif-p", "sif-g")

#: INE frontier implementations (see :meth:`Database.use_frontier_mode`).
FRONTIER_MODES = ("csr", "dict")


class Database:
    """A spatio-textual road-network database instance."""

    def __init__(
        self,
        network: RoadNetwork,
        buffer_pages: Optional[int] = None,
        buffer_fraction: float = 0.02,
        curve: Optional[ZOrderCurve] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        distance_backend: str = "dijkstra",
    ) -> None:
        """Create the disk-resident network structures.

        ``buffer_pages`` pins the LRU buffer size; when ``None`` the
        buffer is sized at ``buffer_fraction`` of the dataset (the
        paper uses 2 % of the network dataset size) once
        :meth:`freeze` is called.

        ``metrics`` optionally injects a shared
        :class:`~repro.obs.metrics.MetricsRegistry`; by default every
        database owns its own.  Every query records its latency,
        per-stage breakdown and counter deltas into it and emits one
        record per query to any attached sink.

        ``tracer`` optionally injects a
        :class:`~repro.obs.tracing.Tracer`; the default is the no-op
        :data:`~repro.obs.tracing.NULL_TRACER` (tracing off, no
        measurable overhead).  Use :meth:`enable_tracing` to switch it
        on later.

        ``distance_backend`` selects how diversified queries evaluate
        exact pairwise network distances: ``"dijkstra"`` (the default —
        bounded Dijkstras, unchanged behaviour), ``"ch"`` (the
        Contraction-Hierarchies oracle) or ``"hub"`` (2-hop hub labels
        on top of the CH ordering; the fastest many-to-many kernel).
        Oracles are built lazily on first use; see
        :meth:`use_distance_backend`.
        """
        self.network = network
        self.curve = curve or ZOrderCurve()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Installed by :meth:`enable_tracing`: the thread-safe store of
        #: completed per-query span trees.  When present, every
        #: execution context draws a fresh per-query tracer from it —
        #: which is what makes tracing safe under concurrent execution.
        self.trace_collector: Optional[TraceCollector] = None
        #: Installed by :meth:`enable_slow_query_log`; the engine offers
        #: every finished query to it.
        self.slow_query_log: Optional[SlowQueryLog] = None
        #: Optional distance cache shared across diversified queries
        #: (see :meth:`use_shared_distance_cache`).
        self.distance_cache: Optional[DistanceCache] = None
        self._ch_oracle: Optional[ContractionHierarchy] = None
        self._hub_oracle: Optional[HubLabelBackend] = None
        self._csr_graph: Optional[CSRGraph] = None
        self.distance_backend = "dijkstra"
        self.use_distance_backend(distance_backend)
        #: How diversified queries evaluate relevance/diversity scoring
        #: (see :meth:`use_scoring_mode`).  Array mode is the default
        #: whenever numpy is importable; the answers are identical.
        self.scoring_mode = "array" if HAVE_NUMPY else "scalar"
        #: Which INE frontier queries expand over (see
        #: :meth:`use_frontier_mode`).  The CSR frontier is the default
        #: whenever numpy is importable; settle order, counters and
        #: answers are identical to the dict frontier.
        self.frontier_mode = "csr" if HAVE_NUMPY else "dict"
        #: Every index built through :meth:`build_index`, for
        #: observability gauges (signature bytes / signed terms).
        self.indexes: List[ObjectIndex] = []
        self.disk = DiskManager(buffer_pages=buffer_pages or 1 << 30)
        self._explicit_buffer = buffer_pages
        self._buffer_fraction = buffer_fraction
        self.ccam = CCAMStore(network, self.disk, curve=self.curve)
        rtree_file = self.disk.create_file("network.rtree", category="rtree")
        self.edge_rtree: RTree = build_edge_rtree(network, rtree_file)
        self.store = ObjectStore(network)
        self._kd_partition: Optional[KDTreePartition] = None
        self._keyword_frequencies: Optional[Dict[str, int]] = None
        self._engine: Optional[QueryEngine] = None
        self._frozen = False
        #: Monotonic data epoch.  Every committed dynamic update —
        #: insert, delete, edge reweight — advances it by one; queries
        #: pin the epoch they execute against
        #: (``ExecutionContext.epoch``) and version-gated state (the
        #: shared distance cache, the CH oracle, the result cache)
        #: compares against it.
        self.data_version = 0
        #: Ordered history of committed updates (see
        #: :mod:`repro.core.updates`).
        self.update_journal = UpdateJournal()
        #: Optional semantic result cache
        #: (see :meth:`use_result_cache`).
        self.result_cache = None
        self._min_weight_per_length: Optional[float] = None
        #: Monotonic creation instant — the zero of ``/healthz`` uptime.
        self._created_monotonic = time.monotonic()
        #: Sliding-window rollup fed by every finished query (see
        #: :meth:`enable_rollup`); ``None`` until enabled.
        self.rollup = None
        #: Live SLO monitor over the rollup (see :meth:`use_live_slo`).
        self.live_slo = None
        #: Sampling wall-clock profiler (see :meth:`enable_profiler`).
        self.profiler = None
        #: Live HTTP scrape endpoint (see :meth:`serve_telemetry`).
        self.telemetry_server = None
        #: Flight recorder capturing every executed query (see
        #: :meth:`enable_flight_recorder`); ``None`` keeps the engine's
        #: zero-overhead path.
        self.flight_recorder = None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add_object(
        self, position: NetworkPosition, keywords: Iterable[str]
    ) -> SpatioTextualObject:
        """Add an object at a known network position."""
        self._ensure_not_frozen()
        self._keyword_frequencies = None
        return self.store.add(position, keywords)

    def add_object_at_point(
        self, point: Point, keywords: Iterable[str]
    ) -> SpatioTextualObject:
        """Add an object at a raw 2-d point, snapped to the closest edge."""
        self._ensure_not_frozen()
        self._keyword_frequencies = None
        position = snap_point_to_edge(self.network, self.edge_rtree, point)
        return self.store.add(position, keywords)

    def freeze(self) -> None:
        """Finish loading: sort edge lists and apply the buffer policy."""
        self.store.freeze()
        self._frozen = True
        if self._explicit_buffer is None:
            dataset_pages = sum(f.num_pages for f in self.disk.files())
            self.disk.resize_buffer(
                max(8, int(dataset_pages * self._buffer_fraction))
            )
        else:
            self.disk.resize_buffer(self._explicit_buffer)

    def insert_object(
        self,
        position: NetworkPosition,
        keywords: Iterable[str],
        indexes: Iterable[ObjectIndex] = (),
    ) -> SpatioTextualObject:
        """Dynamic insertion into a *live* (frozen) database.

        The object joins the store in visiting order and its postings
        and signature bits are pushed into every index in ``indexes``
        (IF, SIF and SIF-P maintain themselves incrementally; IR's
        packed R-trees are rebuilt offline, as in the paper's static
        setting).  Commits bump :attr:`data_version` and journal the
        change; network distances are untouched, so the shared distance
        cache and CH oracle stay valid.
        """
        self.ensure_frozen()
        self._keyword_frequencies = None
        obj = self.store.add(position, keywords)
        self.store.resort_edge(position.edge_id)
        for index in indexes:
            insert = getattr(index, "insert_object", None)
            if insert is None:
                raise QueryError(
                    f"index {index.name} does not support dynamic insertion"
                )
            insert(obj)
        self._commit_update(UpdateRecord(
            epoch=self.data_version + 1,
            kind="insert",
            edge_id=position.edge_id,
            terms=obj.keywords,
            position=obj.position,
            point=self.network.position_point(obj.position),
            object_id=obj.object_id,
        ))
        return obj

    def delete_object(
        self, object_id: int, indexes: Iterable[ObjectIndex] = ()
    ) -> SpatioTextualObject:
        """Dynamic deletion from a *live* (frozen) database.

        The object leaves the store first, then every index in
        ``indexes`` drops its postings — in that order, because SIF's
        conditional signature-bit clearing checks what *remains* on the
        edge.  Like insertion this bumps :attr:`data_version` without
        touching distance state.
        """
        self.ensure_frozen()
        self._keyword_frequencies = None
        obj = self.store.remove(object_id)
        for index in indexes:
            delete = getattr(index, "delete_object", None)
            if delete is None:
                raise QueryError(
                    f"index {index.name} does not support dynamic deletion"
                )
            delete(obj)
        self._commit_update(UpdateRecord(
            epoch=self.data_version + 1,
            kind="delete",
            edge_id=obj.position.edge_id,
            terms=obj.keywords,
            position=obj.position,
            point=self.network.position_point(obj.position),
            object_id=obj.object_id,
        ))
        return obj

    def update_edge_weight(
        self,
        edge_id: int,
        weight: float,
        indexes: Iterable[ObjectIndex] = (),
    ) -> None:
        """Change one edge's traversal cost on a *live* database.

        This is the distance-changing update, so it does everything the
        object paths do not: the in-memory graph and its CCAM pages are
        patched, object offsets on the edge (which are in weight units)
        are rescaled so objects keep their geometric spot, indexes with
        positional state rescale theirs (SIF-P's virtual-edge cuts),
        the CH oracle is dropped for lazy rebuild against the new
        weights, and the shared distance cache is invalidated at the
        new epoch — after which no query pinned to the new epoch can
        observe a pre-update node map (stale in-flight writers are
        rejected by the cache's epoch gate).
        """
        self.ensure_frozen()
        old = self.network.edge(edge_id)
        if weight == old.weight:
            return
        factor = weight / old.weight
        self.network.update_edge_weight(edge_id, weight)
        self.ccam.refresh_edge(edge_id)
        self.store.rescale_edge_offsets(edge_id, factor)
        for index in indexes:
            rescale = getattr(index, "rescale_edge", None)
            if rescale is not None:
                rescale(edge_id, factor)
        if self._ch_oracle is not None:
            # Lazy rebuild: drop the oracle; the next query that needs
            # it pays one preprocessing pass against current weights.
            # Repairing affected shortcuts in place would be cheaper per
            # update but unsound to get subtly wrong — DESIGN.md
            # "Dynamic updates" records the trade-off.
            self._ch_oracle = None
            self.metrics.inc("ch.invalidations")
        if self._hub_oracle is not None:
            # Hub labels inherit the CH's correctness argument, so they
            # inherit its invalidation policy too: drop, rebuild lazily.
            self._hub_oracle = None
            self.metrics.inc("hub_label.invalidations")
        # The CSR snapshot bakes in edge weights; same drop-and-rebuild.
        self._csr_graph = None
        ratio = weight / old.length
        if (
            self._min_weight_per_length is not None
            and ratio < self._min_weight_per_length
        ):
            self._min_weight_per_length = ratio
        # Invalidate BEFORE publishing the new epoch: queries pinned to
        # the new data_version must find the cache already cleared.  In
        # the window between the two steps, old-epoch readers just miss
        # (their epoch is below the cache's) — safe, only slower.
        if self.distance_cache is not None:
            self.distance_cache.invalidate(self.data_version + 1)
        self._commit_update(UpdateRecord(
            epoch=self.data_version + 1,
            kind="edge_weight",
            edge_id=edge_id,
            weight=weight,
        ))

    def _commit_update(self, record: UpdateRecord) -> None:
        """Advance the epoch, journal the record, count it."""
        self.data_version = record.epoch
        self.update_journal.append(record)
        self.metrics.inc(f"update.{record.kind}")
        if self.flight_recorder is not None:
            # Updates interleave with the query stream in the flight
            # journal, so a replay can restore the exact data state
            # each recorded query executed against.
            self.flight_recorder.record_update(record)

    def min_weight_per_length(self) -> float:
        """Smallest ``weight / length`` ratio over all edges.

        Network distance between two points is at least this ratio
        times their Euclidean distance, which gives the result cache a
        cheap relevance test for updates far from a cached query's
        region.  Computed lazily; edge reweights maintain it
        *shrink-only* (a raised weight never raises the stored minimum),
        keeping the bound conservative without a rescan.
        """
        if self._min_weight_per_length is None:
            self._min_weight_per_length = min(
                (e.weight / e.length for e in self.network.edges()),
                default=1.0,
            )
        return self._min_weight_per_length

    def _ensure_not_frozen(self) -> None:
        if self._frozen:
            raise ReproError("database is frozen; no more objects can be added")

    def ensure_frozen(self) -> None:
        """Raise unless :meth:`freeze` has been called (query precondition)."""
        if not self._frozen:
            raise ReproError("call freeze() before building indexes or querying")

    # Backwards-compatible private alias (pre-engine callers).
    def _ensure_frozen(self) -> None:
        self.ensure_frozen()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    @property
    def kd_partition(self) -> KDTreePartition:
        """KD-tree over edge centres, shared by all signature files."""
        if self._kd_partition is None:
            centers = [e.center for e in self.network.edges()]
            self._kd_partition = KDTreePartition(centers)
        return self._kd_partition

    def build_index(self, kind: str, **kwargs) -> ObjectIndex:
        """Build an object index: one of ``INDEX_KINDS``.

        Extra keyword arguments are forwarded to the index constructor
        (e.g. ``max_cuts=3`` or ``log_builder=...`` for ``"sif-p"``,
        ``top_terms=25`` for ``"sif-g"``).
        """
        self.ensure_frozen()
        kind = kind.lower()
        index: Optional[ObjectIndex] = None
        if kind == "ccam":
            index = EdgeStoreIndex(self.store, self.disk, **kwargs)
        elif kind == "ir":
            index = InvertedRTreeIndex(self.store, self.disk, **kwargs)
        elif kind == "if":
            index = InvertedFileIndex(
                self.store, self.disk, curve=self.curve, **kwargs
            )
        elif kind == "sif":
            index = SIFIndex(
                self.store,
                self.disk,
                curve=self.curve,
                kd_partition=self.kd_partition,
                **kwargs,
            )
        elif kind == "sif-p":
            index = SIFPIndex(
                self.store,
                self.disk,
                curve=self.curve,
                kd_partition=self.kd_partition,
                **kwargs,
            )
        elif kind == "sif-g":
            index = SIFGIndex(
                self.store,
                self.disk,
                kd_partition=self.kd_partition,
                **kwargs,
            )
        if index is None:
            raise QueryError(
                f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}"
            )
        self.indexes.append(index)
        return index

    # ------------------------------------------------------------------
    # The query engine
    # ------------------------------------------------------------------
    @property
    def engine(self) -> QueryEngine:
        """The :class:`~repro.engine.executor.QueryEngine` executing this
        database's plans.

        Created on first use.  Assign a custom engine to change the
        execution policy, e.g. ``db.engine = QueryEngine(db,
        io_wait_latency=1e-3)`` to serve each query's physical reads as
        real (GIL-releasing) stalls — the disk-resident deployment the
        paper models, and what makes ``execute_many(workers=N)``
        overlap I/O.
        """
        if self._engine is None:
            self._engine = QueryEngine(self)
        return self._engine

    @engine.setter
    def engine(self, value: QueryEngine) -> None:
        self._engine = value

    def keyword_frequencies(self) -> Dict[str, int]:
        """Document frequency of every keyword (cached; planner input).

        The cache is invalidated by every object addition, so dynamic
        insertions keep cost estimates honest.  Treat the returned
        mapping as read-only.
        """
        if self._keyword_frequencies is None:
            self._keyword_frequencies = self.store.keyword_frequencies()
        return self._keyword_frequencies

    # ------------------------------------------------------------------
    # Shared distance cache (warm-cache serving)
    # ------------------------------------------------------------------
    def use_shared_distance_cache(
        self,
        max_entries: Optional[int] = 250_000,
        cache: Optional[DistanceCache] = None,
    ) -> DistanceCache:
        """Install a :class:`DistanceCache` shared across diversified
        queries.

        Every subsequent :meth:`diversified_search` backs its pairwise
        computer onto this cache, so node maps computed for one query
        answer later queries' pairwise evaluations (cache keys embed
        the Dijkstra cutoff, so queries with different ``delta_max``
        never read each other's truncated maps).  ``max_entries``
        bounds the cache in node-map entries (LRU eviction); pass an
        existing ``cache`` to share one across databases.  Returns the
        installed cache; ``db.distance_cache = None`` reverts to
        per-query private caches.  The cache is thread-safe; queries
        running concurrently may share it.
        """
        self.distance_cache = cache if cache is not None else DistanceCache(
            max_entries=max_entries
        )
        return self.distance_cache

    def use_result_cache(self, max_entries: int = 256):
        """Install a semantic result cache for diversified queries.

        Subsequent :meth:`diversified_search` calls probe it before
        executing; a hit returns the cached answer with a fresh stats
        object (``result_cache_hit=True``) and near-zero work.  Entries
        are validated lazily against the update journal (see
        :mod:`repro.engine.result_cache`): an update only evicts the
        answers whose keyword/region it could actually have changed.
        ``db.result_cache = None`` uninstalls.
        """
        from ..engine.result_cache import ResultCache

        self.result_cache = ResultCache(max_entries=max_entries)
        return self.result_cache

    # ------------------------------------------------------------------
    # Distance backends
    # ------------------------------------------------------------------
    def use_distance_backend(self, name: str) -> None:
        """Select the pairwise backend: ``dijkstra``, ``ch`` or ``hub``.

        ``dijkstra`` keeps the historical bounded-Dijkstra evaluation.
        ``ch`` routes pairwise evaluations through the
        Contraction-Hierarchies oracle — identical answers, far fewer
        settled nodes.  ``hub`` precomputes 2-hop hub labels from the
        CH ordering: point queries become sorted label merges and the
        candidate×candidate matrices SEQ needs run through one batched
        label-join kernel (requires numpy).  Oracles are built lazily
        on the first query that needs them (or eagerly via
        :meth:`ch_oracle` / :meth:`hub_oracle`); switching back and
        forth costs nothing once built.
        """
        name = name.lower()
        if name not in DISTANCE_BACKENDS:
            raise QueryError(
                f"unknown distance backend {name!r}; "
                f"expected one of {DISTANCE_BACKENDS}"
            )
        self.distance_backend = name

    def ch_oracle(self) -> ContractionHierarchy:
        """The database's Contraction-Hierarchies oracle (built once).

        Construction runs over the in-memory network (preprocessing is
        CPU work, not charged I/O — like the KD partition) and records
        ``ch.preprocess_seconds`` / ``ch.shortcuts_added`` /
        ``ch.upward_edges`` into the metrics registry.  The oracle is
        immutable and shared by all queries, including concurrent
        ``execute_many`` batches.
        """
        if self._ch_oracle is None:
            oracle = ContractionHierarchy(self.network)
            self.metrics.observe(
                "ch.preprocess_seconds", oracle.preprocess_seconds
            )
            self.metrics.inc("ch.shortcuts_added", oracle.shortcuts_added)
            self.metrics.inc("ch.upward_edges", oracle.upward_edges)
            self.metrics.emit({"type": "ch_build", **oracle.stats()})
            self._ch_oracle = oracle
        return self._ch_oracle

    def hub_oracle(self) -> HubLabelBackend:
        """The database's hub-label oracle (built once, needs numpy).

        The labels are the CH's upward search spaces, so construction
        reuses (or triggers) :meth:`ch_oracle` and then pays one upward
        sweep per node.  Records ``hub_label.build_seconds`` /
        ``hub_label.labels`` / ``hub_label.label_entries`` and emits a
        ``hub_build`` record.  Immutable and shared by all queries; an
        edge reweight drops it for lazy rebuild.
        """
        if self._hub_oracle is None:
            require_numpy("the hub-label distance backend")
            oracle = HubLabelBackend(self.network, ch=self.ch_oracle())
            self.metrics.observe(
                "hub_label.build_seconds", oracle.build_seconds
            )
            self.metrics.inc("hub_label.labels", oracle.num_labels)
            self.metrics.inc("hub_label.label_entries", oracle.label_entries)
            self.metrics.emit({"type": "hub_build", **oracle.stats()})
            self._hub_oracle = oracle
        return self._hub_oracle

    def csr_graph(self) -> CSRGraph:
        """The network's CSR array snapshot (built once, needs numpy).

        Traversal entry points accept it anywhere they accept the
        network (the shared seam in :mod:`repro.network.distance`
        dispatches to the array Dijkstra kernel).  Validated against
        the live network on first build; dropped on every edge
        reweight, like the distance oracles.
        """
        if self._csr_graph is None:
            csr = CSRGraph.from_network(self.network, store=self.store)
            csr.validate_roundtrip(self.network, store=self.store)
            self._csr_graph = csr
        return self._csr_graph

    def use_scoring_mode(self, name: str) -> None:
        """Select scoring evaluation: ``"array"`` (numpy) or ``"scalar"``.

        Array mode batches the greedy θ matrix (SEQ) and the core-pair
        θ-bound rows (COM) through numpy; every answer, ordering and
        counter is identical to scalar mode — this switches evaluation
        strategy, not semantics.
        """
        name = name.lower()
        if name not in SCORING_MODES:
            raise QueryError(
                f"unknown scoring mode {name!r}; "
                f"expected one of {SCORING_MODES}"
            )
        if name == "array":
            require_numpy("array scoring")
        self.scoring_mode = name

    def use_frontier_mode(self, name: str) -> None:
        """Select the INE frontier: ``"csr"`` (arrays) or ``"dict"``.

        The CSR frontier settles nodes from the cached
        :meth:`csr_graph` arrays with per-node push pruning; the dict
        frontier walks the provider's adjacency lists.  Settle order,
        traversal counters and every emitted object are identical —
        this switches the expansion's storage layout, not semantics.
        """
        name = name.lower()
        if name not in FRONTIER_MODES:
            raise QueryError(
                f"unknown frontier mode {name!r}; "
                f"expected one of {FRONTIER_MODES}"
            )
        if name == "csr":
            require_numpy("the CSR INE frontier")
        self.frontier_mode = name

    def frontier_csr(self) -> Optional[CSRGraph]:
        """The CSR snapshot queries should expand over (``None`` means
        the dict frontier)."""
        if self.frontier_mode == "csr" and HAVE_NUMPY:
            return self.csr_graph()
        return None

    def pairwise_backend(self) -> Optional[DistanceBackend]:
        """The backend queries should hand to their pairwise computer
        (``None`` means the default bounded-Dijkstra path)."""
        if self.distance_backend == "ch":
            return self.ch_oracle()
        if self.distance_backend == "hub":
            return self.hub_oracle()
        return None

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def enable_tracing(
        self,
        max_traces: int = 64,
        max_children: int = 512,
        max_events: int = 1024,
    ) -> TraceCollector:
        """Install a :class:`~repro.obs.tracing.TraceCollector`.

        Every subsequent query records an *independent* per-query span
        tree (INE rounds, signature filtering, pairwise Dijkstras, COM
        rounds) into ``db.trace_collector`` — the execution context
        draws a fresh tracer per query and publishes the finished tree
        back, so tracing composes with ``execute_many(workers=N)``:
        a traced concurrent batch yields one well-formed tree per
        query, attributed to the worker thread that ran it.  Returns
        the installed collector.
        """
        self.trace_collector = TraceCollector(
            max_traces=max_traces,
            max_children=max_children,
            max_events=max_events,
        )
        return self.trace_collector

    def disable_tracing(self) -> None:
        """Revert to the zero-overhead no-op path."""
        self.trace_collector = None
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # Slow-query log
    # ------------------------------------------------------------------
    def enable_slow_query_log(
        self,
        latency_seconds: Optional[float] = None,
        visited_nodes: Optional[int] = None,
        max_records: int = 256,
        path=None,
    ) -> SlowQueryLog:
        """Install a :class:`~repro.obs.slowlog.SlowQueryLog`.

        Every finished query whose wall time reaches
        ``latency_seconds`` and/or whose expansion visited at least
        ``visited_nodes`` network nodes is captured with its plan
        label, full stats snapshot and — when tracing is enabled — its
        complete span tree.  ``path`` streams captured records to a
        JSON-lines file (render it with ``repro slowlog FILE``).
        Thread-safe; composes with ``execute_many(workers=N)``.
        """
        self.slow_query_log = SlowQueryLog(
            SlowQueryThreshold(
                latency_seconds=latency_seconds,
                visited_nodes=visited_nodes,
            ),
            max_records=max_records,
            path=path,
        )
        return self.slow_query_log

    def disable_slow_query_log(self) -> None:
        """Detach and close the slow-query log, if one is installed."""
        log, self.slow_query_log = self.slow_query_log, None
        if log is not None:
            log.close()

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------
    def enable_flight_recorder(
        self, max_records: int = 4096, path=None
    ):
        """Install a :class:`~repro.obs.recorder.FlightRecorder`.

        Every subsequent query execution is captured — full query
        parameters, plan label + cost hints, result digest, latency
        and stats snapshot — and every committed dynamic update is
        journalled inline, so the capture replays deterministically
        (``repro replay FILE``).  ``path`` streams the journal to a
        JSON-lines file as it is written (``--record FILE`` on the
        workload CLIs).  Thread-safe; composes with
        ``execute_many(workers=N)`` and live ``/recorder`` scrapes.
        """
        from ..obs.recorder import FlightRecorder

        self.flight_recorder = FlightRecorder(
            max_records=max_records, path=path, metrics=self.metrics
        )
        return self.flight_recorder

    def disable_flight_recorder(self) -> None:
        """Detach and close the flight recorder, if one is installed."""
        recorder, self.flight_recorder = self.flight_recorder, None
        if recorder is not None:
            recorder.close()

    # ------------------------------------------------------------------
    # Live telemetry: rollup, live SLO, profiler, HTTP endpoint
    # ------------------------------------------------------------------
    def uptime_seconds(self) -> float:
        """Seconds since this database object was created."""
        return time.monotonic() - self._created_monotonic

    def enable_rollup(
        self,
        window_seconds: float = 10.0,
        bucket_seconds: float = 1.0,
    ):
        """Install (or return) the sliding-window rollup.

        Once installed, every finished query is recorded into it
        (latency, error flag, result-cache hit) alongside the lifetime
        registry, giving ``/vars`` and live SLO rules a recent-window
        view (QPS, windowed p50/p95/p99, error and cache-hit rates).
        Idempotent: an existing rollup is kept, so the engine, the
        telemetry server and the load driver share one ring.
        """
        if self.rollup is None:
            from ..obs.rollup import SlidingWindowRollup

            self.rollup = SlidingWindowRollup(
                window_seconds=window_seconds,
                bucket_seconds=bucket_seconds,
            )
        return self.rollup

    def use_live_slo(self, spec):
        """Install a live SLO monitor evaluating ``spec`` per window.

        ``spec`` is an :class:`~repro.obs.slo.SLOSpec` whose rules read
        the rollup's window snapshot (``query.wall_seconds`` /
        ``loadtest.latency_seconds`` histograms, ``window.*``
        counters).  Breach windows are counted into the metrics
        registry and noted into the slow-query log when one is
        installed.  Enables the rollup on demand; returns the monitor.
        """
        from ..obs.rollup import LiveSLOMonitor

        self.live_slo = LiveSLOMonitor(
            spec,
            self.enable_rollup(),
            metrics=self.metrics,
            slowlog=self.slow_query_log,
        )
        return self.live_slo

    def enable_profiler(
        self,
        hz: Optional[float] = None,
        only_labelled: bool = False,
    ):
        """Start the always-on sampling wall-clock profiler.

        A daemon thread samples every live thread's stack ``hz`` times
        per second (default :data:`repro.obs.profiler.DEFAULT_HZ`) and
        folds them into a bounded flamegraph-ready table, attributed
        to the plan label the sampled thread was executing.  Scrape it
        at ``/profile``, or render with ``repro profile FILE`` after
        :meth:`disable_profiler`.  Idempotent while running.
        """
        if self.profiler is not None and self.profiler.running:
            return self.profiler
        from ..obs.profiler import DEFAULT_HZ, SamplingProfiler

        self.profiler = SamplingProfiler(
            hz=hz if hz is not None else DEFAULT_HZ,
            only_labelled=only_labelled,
        ).start()
        return self.profiler

    def disable_profiler(self):
        """Stop the profiler; returns it (with its folded table) or None."""
        profiler, self.profiler = self.profiler, None
        if profiler is not None:
            profiler.stop()
        return profiler

    def serve_telemetry(
        self, port: int = 0, host: str = "127.0.0.1"
    ):
        """Start the live HTTP observability endpoint for this database.

        Serves ``/metrics`` (Prometheus text), ``/healthz``, ``/vars``,
        ``/slowlog``, ``/profile`` and ``/slo`` from a daemon thread —
        this is the per-shard scrape target the ROADMAP's serving layer
        mounts.  ``port=0`` binds an ephemeral port; read it back from
        the returned server's ``port``.  Enables the rollup so scrapes
        see live windows.  Returns the running
        :class:`~repro.obs.server.TelemetryServer`.
        """
        if self.telemetry_server is not None:
            return self.telemetry_server
        from ..obs.server import TelemetryServer

        self.enable_rollup()
        self.telemetry_server = TelemetryServer(
            self, host=host, port=port
        ).start()
        return self.telemetry_server

    def stop_telemetry(self) -> None:
        """Shut the telemetry endpoint down, if one is serving."""
        server, self.telemetry_server = self.telemetry_server, None
        if server is not None:
            server.close()

    def explain(
        self,
        index: ObjectIndex,
        query,
        method: str = "com",
        enable_pruning: bool = True,
        landmarks=None,
        slow_threshold: Optional[SlowQueryThreshold] = None,
    ) -> "ExplainReport":
        """Plan one query, run it under a temporary tracer, explain it.

        ``query`` may be an :class:`~repro.core.queries.SKQuery`, an
        :class:`~repro.core.knn.SKkNNQuery` or a
        :class:`~repro.core.queries.DiversifiedSKQuery` (routed through
        ``method``).  The database's installed tracer is untouched —
        the temporary tracer rides the execution context.  The report
        carries the chosen :class:`~repro.engine.plan.QueryPlan` and
        the query's span tree and result (see :mod:`repro.obs.explain`).

        ``slow_threshold`` adds a slow-query verdict to the rendered
        report, so a single query can be judged against an SLO without
        running a whole workload; when omitted, the installed
        slow-query log's threshold (if any) is used.
        """
        from ..obs.explain import ExplainReport

        if isinstance(query, DiversifiedSKQuery):
            plan = plan_diversified(
                self, index, query, method=method,
                enable_pruning=enable_pruning, landmarks=landmarks,
            )
        elif isinstance(query, SKkNNQuery):
            plan = plan_knn(self, index, query)
        else:
            plan = plan_sk(self, index, query)
        tracer = Tracer(max_traces=4)
        result = self.engine.execute(plan, tracer=tracer)
        if slow_threshold is None and self.slow_query_log is not None:
            slow_threshold = self.slow_query_log.threshold
        return ExplainReport(
            tracer.last_trace, result, plan=plan,
            slow_threshold=slow_threshold,
        )

    # ------------------------------------------------------------------
    # Metrics recording
    # ------------------------------------------------------------------
    def _record_query(self, kind: str, label: str, stats: QueryStats) -> None:
        """Aggregate one query's stats into the registry + emit a record.

        ``label`` is the executed plan's label (index kind +
        algorithm, e.g. ``"SIF/COM"``), so per-query records from
        mixed workloads stay attributable.
        """
        m = self.metrics
        m.inc("query.count")
        # Per-plan-label counter.  The ``#`` separates the counter
        # family from its label value; the Prometheus exporter turns
        # these into one ``repro_query_plan_total{plan="SIF/COM"}``
        # family with properly escaped label values.
        m.inc(f"query.plan#{label}")
        m.observe("query.wall_seconds", stats.wall_seconds)
        m.observe_stages(stats.stage_seconds)
        m.inc("pairwise.dijkstra_runs", stats.pairwise_dijkstras)
        m.inc("distance_cache.hits", stats.distance_cache_hits)
        m.inc("distance_cache.misses", stats.distance_cache_misses)
        m.inc("distance_cache.evictions", stats.distance_cache_evictions)
        m.inc("buffer.evictions", stats.buffer_evictions)
        m.inc(f"query.backend.{stats.distance_backend}")
        if stats.distance_backend == "ch":
            m.inc("ch.queries", stats.backend_queries)
            m.inc("ch.settled_nodes", stats.backend_settled_nodes)
            m.inc("ch.bucket_hits", stats.backend_bucket_hits)
        elif stats.distance_backend == "hub":
            m.inc("hub_label.queries", stats.backend_queries)
            m.inc("hub_label.entries_scanned", stats.backend_settled_nodes)
            m.inc("hub_label.kernel_hits", stats.backend_bucket_hits)
        if kind.startswith("diversified"):
            # COM's §4.3 early termination is the pruning the paper's
            # diversified-search figures measure; counting it (and the
            # diversified denominator) lets SLO rules gate on the
            # early-termination percentage.
            m.inc("query.diversified_count")
            if stats.expansion_terminated_early:
                m.inc("query.early_terminations")
        if stats.result_cache_hit:
            m.inc("query.result_cache_hits")
        if stats.io is not None:
            m.inc("io.logical_reads", stats.io.logical_reads)
            m.inc("io.physical_reads", stats.io.physical_reads)
            m.inc("io.buffer_hits", stats.io.buffer_hits)
        record = {
            "type": "query",
            "kind": kind,
            "label": label,
            "epoch": stats.epoch,
            "result_cache_hit": stats.result_cache_hit,
            "wall_seconds": stats.wall_seconds,
            "stages": dict(stats.stage_seconds),
            "candidates": stats.candidates,
            "pairwise_dijkstras": stats.pairwise_dijkstras,
            "distance_backend": stats.distance_backend,
            "distance_cache": {
                "hits": stats.distance_cache_hits,
                "misses": stats.distance_cache_misses,
                "evictions": stats.distance_cache_evictions,
            },
            "io": {
                "logical_reads": stats.io.logical_reads,
                "physical_reads": stats.io.physical_reads,
                "buffer_hits": stats.io.buffer_hits,
                "buffer_evictions": stats.buffer_evictions,
            } if stats.io is not None else None,
        }
        m.emit(record)
        if self.rollup is not None:
            self.rollup.record(
                stats.wall_seconds, cache_hit=stats.result_cache_hit
            )

    def _record_query_error(self, kind: str, label: str) -> None:
        """Count one failed query execution (engine exception path).

        Errors advance ``query.errors`` (plus a per-plan labelled
        counter) and the rollup's windowed error rate, so a misbehaving
        plan shows up on ``/metrics`` and trips ``window.error_rate``
        SLO rules instead of vanishing with the raised exception.
        """
        self.metrics.inc("query.errors")
        self.metrics.inc(f"query.error#{label}")
        if self.rollup is not None:
            self.rollup.record(0.0, error=True)

    # ------------------------------------------------------------------
    # Queries (thin wrappers over the engine)
    # ------------------------------------------------------------------
    def plan(self, index: ObjectIndex, query, **kwargs) -> QueryPlan:
        """Plan a query without executing it (dispatch on query type)."""
        if isinstance(query, DiversifiedSKQuery):
            return plan_diversified(self, index, query, **kwargs)
        if isinstance(query, SKkNNQuery):
            return plan_knn(self, index, query, **kwargs)
        return plan_sk(self, index, query, **kwargs)

    def sk_search(self, index: ObjectIndex, query: SKQuery) -> SKResult:
        """Algorithm 3: boolean SK range search on the road network."""
        return self.engine.execute(plan_sk(self, index, query))

    def sk_knn(self, index: ObjectIndex, query: SKkNNQuery) -> "SKkNNResult":
        """Boolean SK k-nearest-neighbour search (see repro.core.knn)."""
        return self.engine.execute(plan_knn(self, index, query))

    def diversified_search(
        self,
        index: ObjectIndex,
        query: DiversifiedSKQuery,
        method: Optional[str] = "com",
        enable_pruning: bool = True,
        landmarks=None,
    ) -> DiversifiedResult:
        """Diversified SK search via ``"seq"`` or ``"com"``.

        ``method=None`` lets the planner choose from its cost hints
        (see :func:`repro.engine.plan.plan_diversified`).

        ``landmarks`` (a :class:`repro.network.landmarks.LandmarkIndex`)
        tightens COM's pruning bounds; ignored by SEQ.

        When a shared distance cache is installed
        (:meth:`use_shared_distance_cache`) the pairwise computer backs
        onto it, so node maps survive across queries; all reported
        stats remain per-query deltas."""
        plan = plan_diversified(
            self, index, query, method=method,
            enable_pruning=enable_pruning, landmarks=landmarks,
        )
        return self.engine.execute(plan)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def dataset_statistics(self) -> Dict[str, float]:
        """Table-2-style statistics of the loaded dataset."""
        return {
            "num_objects": len(self.store),
            "vocabulary_size": len(self.store.vocabulary()),
            "avg_keywords": round(self.store.average_keywords_per_object(), 2),
            "num_nodes": self.network.num_nodes,
            "num_edges": self.network.num_edges,
        }
