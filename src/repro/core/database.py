"""The :class:`Database` facade — one object tying the system together.

A database owns the road network, its CCAM disk layout, the network
R-tree, the object store and the shared disk manager (buffer pool +
I/O statistics).  Object indexes are built against it by name, and the
query entry points (:meth:`Database.sk_search`,
:meth:`Database.diversified_search`) wrap the core algorithms with
timing and I/O measurement.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional

from ..errors import QueryError, ReproError
from ..index.base import ObjectIndex
from ..index.edge_store import EdgeStoreIndex
from ..index.inverted_file import InvertedFileIndex
from ..index.inverted_rtree import InvertedRTreeIndex
from ..index.sif import SIFIndex
from ..index.sif_g import SIFGIndex
from ..index.sif_p import SIFPIndex
from ..network.ccam import CCAMStore
from ..network.distance import DistanceCache, PairwiseDistanceComputer
from ..network.graph import NetworkPosition, RoadNetwork
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from ..network.objects import ObjectStore, SpatioTextualObject, build_edge_rtree, snap_point_to_edge
from ..spatial.geometry import Point
from ..spatial.kdtree import KDTreePartition
from ..spatial.rtree import RTree
from ..spatial.zorder import ZOrderCurve
from ..storage.pagefile import DiskManager
from .diversified_search import com_search, seq_search
from .ine import INEExpansion
from .queries import DiversifiedResult, DiversifiedSKQuery, QueryStats, SKQuery, SKResult

__all__ = ["Database", "INDEX_KINDS"]

#: Registry of index kinds accepted by :meth:`Database.build_index`.
INDEX_KINDS = ("ccam", "ir", "if", "sif", "sif-p", "sif-g")


class _IndexCounterSnapshot:
    """Pins an index's lifetime load counters at query start.

    Queries report *deltas* against this snapshot, so indexes shared
    across queries (the normal case) never leak earlier queries' loads
    into this query's stats or trace."""

    __slots__ = ("edges_probed", "edges_pruned", "objects_loaded",
                 "false_hit_objects", "signature_seconds")

    def __init__(self, index: ObjectIndex) -> None:
        c = index.counters
        self.edges_probed = c.edges_probed
        self.edges_pruned = c.edges_pruned_by_signature
        self.objects_loaded = c.objects_loaded
        self.false_hit_objects = c.false_hit_objects
        self.signature_seconds = c.signature_seconds


class Database:
    """A spatio-textual road-network database instance."""

    def __init__(
        self,
        network: RoadNetwork,
        buffer_pages: Optional[int] = None,
        buffer_fraction: float = 0.02,
        curve: Optional[ZOrderCurve] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        """Create the disk-resident network structures.

        ``buffer_pages`` pins the LRU buffer size; when ``None`` the
        buffer is sized at ``buffer_fraction`` of the dataset (the
        paper uses 2 % of the network dataset size) once
        :meth:`freeze` is called.

        ``metrics`` optionally injects a shared
        :class:`~repro.obs.metrics.MetricsRegistry`; by default every
        database owns its own.  Every query records its latency,
        per-stage breakdown and counter deltas into it and emits one
        record per query to any attached sink.

        ``tracer`` optionally injects a
        :class:`~repro.obs.tracing.Tracer`; the default is the no-op
        :data:`~repro.obs.tracing.NULL_TRACER` (tracing off, no
        measurable overhead).  Use :meth:`enable_tracing` to switch it
        on later.
        """
        self.network = network
        self.curve = curve or ZOrderCurve()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional distance cache shared across diversified queries
        #: (see :meth:`use_shared_distance_cache`).
        self.distance_cache: Optional[DistanceCache] = None
        self.disk = DiskManager(buffer_pages=buffer_pages or 1 << 30)
        self._explicit_buffer = buffer_pages
        self._buffer_fraction = buffer_fraction
        self.ccam = CCAMStore(network, self.disk, curve=self.curve)
        rtree_file = self.disk.create_file("network.rtree", category="rtree")
        self.edge_rtree: RTree = build_edge_rtree(network, rtree_file)
        self.store = ObjectStore(network)
        self._kd_partition: Optional[KDTreePartition] = None
        self._frozen = False

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add_object(
        self, position: NetworkPosition, keywords: Iterable[str]
    ) -> SpatioTextualObject:
        """Add an object at a known network position."""
        self._ensure_not_frozen()
        return self.store.add(position, keywords)

    def add_object_at_point(
        self, point: Point, keywords: Iterable[str]
    ) -> SpatioTextualObject:
        """Add an object at a raw 2-d point, snapped to the closest edge."""
        self._ensure_not_frozen()
        position = snap_point_to_edge(self.network, self.edge_rtree, point)
        return self.store.add(position, keywords)

    def freeze(self) -> None:
        """Finish loading: sort edge lists and apply the buffer policy."""
        self.store.freeze()
        self._frozen = True
        if self._explicit_buffer is None:
            dataset_pages = sum(f.num_pages for f in self.disk.files())
            self.disk.resize_buffer(
                max(8, int(dataset_pages * self._buffer_fraction))
            )
        else:
            self.disk.resize_buffer(self._explicit_buffer)

    def insert_object(
        self,
        position: NetworkPosition,
        keywords: Iterable[str],
        indexes: Iterable[ObjectIndex] = (),
    ) -> SpatioTextualObject:
        """Dynamic insertion into a *live* (frozen) database.

        The object joins the store in visiting order and its postings
        and signature bits are pushed into every index in ``indexes``.
        Only IF and SIF support dynamic maintenance; SIF-P's partitions
        and IR's packed R-trees are rebuilt offline in this
        reproduction, as in the paper's static setting.
        """
        self._ensure_frozen()
        obj = self.store.add(position, keywords)
        self.store.resort_edge(position.edge_id)
        for index in indexes:
            insert = getattr(index, "insert_object", None)
            if insert is None:
                raise QueryError(
                    f"index {index.name} does not support dynamic insertion"
                )
            insert(obj)
        return obj

    def _ensure_not_frozen(self) -> None:
        if self._frozen:
            raise ReproError("database is frozen; no more objects can be added")

    def _ensure_frozen(self) -> None:
        if not self._frozen:
            raise ReproError("call freeze() before building indexes or querying")

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    @property
    def kd_partition(self) -> KDTreePartition:
        """KD-tree over edge centres, shared by all signature files."""
        if self._kd_partition is None:
            centers = [e.center for e in self.network.edges()]
            self._kd_partition = KDTreePartition(centers)
        return self._kd_partition

    def build_index(self, kind: str, **kwargs) -> ObjectIndex:
        """Build an object index: one of ``INDEX_KINDS``.

        Extra keyword arguments are forwarded to the index constructor
        (e.g. ``max_cuts=3`` or ``log_builder=...`` for ``"sif-p"``,
        ``top_terms=25`` for ``"sif-g"``).
        """
        self._ensure_frozen()
        kind = kind.lower()
        if kind == "ccam":
            return EdgeStoreIndex(self.store, self.disk, **kwargs)
        if kind == "ir":
            return InvertedRTreeIndex(self.store, self.disk, **kwargs)
        if kind == "if":
            return InvertedFileIndex(self.store, self.disk, curve=self.curve, **kwargs)
        if kind == "sif":
            return SIFIndex(
                self.store,
                self.disk,
                curve=self.curve,
                kd_partition=self.kd_partition,
                **kwargs,
            )
        if kind == "sif-p":
            return SIFPIndex(
                self.store,
                self.disk,
                curve=self.curve,
                kd_partition=self.kd_partition,
                **kwargs,
            )
        if kind == "sif-g":
            return SIFGIndex(
                self.store,
                self.disk,
                kd_partition=self.kd_partition,
                **kwargs,
            )
        raise QueryError(f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}")

    # ------------------------------------------------------------------
    # Shared distance cache (warm-cache serving)
    # ------------------------------------------------------------------
    def use_shared_distance_cache(
        self,
        max_entries: Optional[int] = 250_000,
        cache: Optional[DistanceCache] = None,
    ) -> DistanceCache:
        """Install a :class:`DistanceCache` shared across diversified
        queries.

        Every subsequent :meth:`diversified_search` backs its pairwise
        computer onto this cache, so node maps computed for one query
        answer later queries' pairwise evaluations (cache keys embed
        the Dijkstra cutoff, so queries with different ``delta_max``
        never read each other's truncated maps).  ``max_entries``
        bounds the cache in node-map entries (LRU eviction); pass an
        existing ``cache`` to share one across databases.  Returns the
        installed cache; ``db.distance_cache = None`` reverts to
        per-query private caches.
        """
        self.distance_cache = cache if cache is not None else DistanceCache(
            max_entries=max_entries
        )
        return self.distance_cache

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def enable_tracing(
        self,
        max_traces: int = 64,
        max_children: int = 512,
        max_events: int = 1024,
    ) -> Tracer:
        """Install a live :class:`~repro.obs.tracing.Tracer`.

        Every subsequent query records a per-query span tree (INE
        rounds, signature filtering, pairwise Dijkstras, COM rounds)
        into ``db.tracer.traces``.  Returns the installed tracer.
        """
        self.tracer = Tracer(
            max_traces=max_traces,
            max_children=max_children,
            max_events=max_events,
        )
        return self.tracer

    def disable_tracing(self) -> None:
        """Revert to the zero-overhead no-op tracer."""
        self.tracer = NULL_TRACER

    def explain(
        self,
        index: ObjectIndex,
        query,
        method: str = "com",
        enable_pruning: bool = True,
        landmarks=None,
    ) -> "ExplainReport":
        """Run one query under a temporary tracer and explain it.

        ``query`` may be an :class:`~repro.core.queries.SKQuery` or a
        :class:`~repro.core.queries.DiversifiedSKQuery` (routed through
        ``method``).  The database's installed tracer is untouched; the
        report wraps the query's span tree and result (see
        :mod:`repro.obs.explain`).
        """
        from ..obs.explain import ExplainReport

        previous = self.tracer
        tracer = Tracer(max_traces=4)
        self.tracer = tracer
        try:
            if isinstance(query, DiversifiedSKQuery):
                result = self.diversified_search(
                    index, query, method=method,
                    enable_pruning=enable_pruning, landmarks=landmarks,
                )
            else:
                result = self.sk_search(index, query)
        finally:
            self.tracer = previous
            index.tracer = previous
        return ExplainReport(tracer.last_trace, result)

    def _trace_signature_summary(
        self, index: ObjectIndex, before: "_IndexCounterSnapshot",
        results: int,
    ) -> None:
        """Attach a per-query ``signature.filter`` summary span.

        Records, as counter deltas, how many edges the signature test
        dropped, how many candidate objects were loaded for
        verification and how many of those were false positives —
        split by index family via the ``partition`` attribute, which is
        what makes the SIF vs SIF-P comparison visible per query.
        """
        c = index.counters
        self.tracer.add_span(
            "signature.filter",
            c.signature_seconds - before.signature_seconds,
            partition=index.name,
            edges_pruned=(
                c.edges_pruned_by_signature - before.edges_pruned
            ),
            edges_probed=c.edges_probed - before.edges_probed,
            candidates_tested=c.objects_loaded - before.objects_loaded,
            false_positives=c.false_hit_objects - before.false_hit_objects,
            results=results,
        )

    # ------------------------------------------------------------------
    # Metrics recording
    # ------------------------------------------------------------------
    def _record_query(self, kind: str, label: str, stats: QueryStats) -> None:
        """Aggregate one query's stats into the registry + emit a record."""
        m = self.metrics
        m.inc("query.count")
        m.observe("query.wall_seconds", stats.wall_seconds)
        m.observe_stages(stats.stage_seconds)
        m.inc("pairwise.dijkstra_runs", stats.pairwise_dijkstras)
        m.inc("distance_cache.hits", stats.distance_cache_hits)
        m.inc("distance_cache.misses", stats.distance_cache_misses)
        m.inc("distance_cache.evictions", stats.distance_cache_evictions)
        m.inc("buffer.evictions", stats.buffer_evictions)
        if stats.io is not None:
            m.inc("io.logical_reads", stats.io.logical_reads)
            m.inc("io.physical_reads", stats.io.physical_reads)
            m.inc("io.buffer_hits", stats.io.buffer_hits)
        record = {
            "type": "query",
            "kind": kind,
            "label": label,
            "wall_seconds": stats.wall_seconds,
            "stages": dict(stats.stage_seconds),
            "candidates": stats.candidates,
            "pairwise_dijkstras": stats.pairwise_dijkstras,
            "distance_cache": {
                "hits": stats.distance_cache_hits,
                "misses": stats.distance_cache_misses,
                "evictions": stats.distance_cache_evictions,
            },
            "io": {
                "logical_reads": stats.io.logical_reads,
                "physical_reads": stats.io.physical_reads,
                "buffer_hits": stats.io.buffer_hits,
                "buffer_evictions": stats.buffer_evictions,
            } if stats.io is not None else None,
        }
        m.emit(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sk_search(self, index: ObjectIndex, query: SKQuery) -> SKResult:
        """Algorithm 3: boolean SK range search on the road network."""
        self._ensure_frozen()
        tracer = self.tracer
        index.tracer = tracer
        before = self.disk.stats.snapshot()
        evictions_before = self.disk.buffer.evictions
        counters_before = _IndexCounterSnapshot(index)
        start = time.perf_counter()
        with tracer.span(
            "query.sk", index=index.name, terms=sorted(query.terms),
            delta_max=query.delta_max,
        ) as root:
            expansion = INEExpansion(
                self.ccam, self.network, index, query.position, query.terms,
                query.delta_max, tracer=tracer,
            )
            items = expansion.run_to_completion()
            wall = time.perf_counter() - start
            if tracer.enabled:
                self._trace_signature_summary(index, counters_before, len(items))
                root.set(
                    candidates=len(items), results=len(items),
                    nodes_accessed=expansion.stats.nodes_accessed,
                    edges_accessed=expansion.stats.edges_accessed,
                    wall_seconds=wall,
                )
        after = self.disk.stats.snapshot()
        stats = QueryStats(
            wall_seconds=wall,
            nodes_accessed=expansion.stats.nodes_accessed,
            edges_accessed=expansion.stats.edges_accessed,
            objects_loaded=(
                index.counters.objects_loaded - counters_before.objects_loaded
            ),
            false_hit_objects=(
                index.counters.false_hit_objects
                - counters_before.false_hit_objects
            ),
            candidates=len(items),
            io=after - before,
            buffer_evictions=self.disk.buffer.evictions - evictions_before,
            stage_seconds={
                "expansion": wall,
                "object_loading": expansion.stats.load_seconds,
                "signature": (
                    index.counters.signature_seconds
                    - counters_before.signature_seconds
                ),
            },
        )
        self._record_query("sk", index.name, stats)
        return SKResult(items, stats)

    def sk_knn(self, index: ObjectIndex, query) -> "SKkNNResult":
        """Boolean SK k-nearest-neighbour search (see repro.core.knn)."""
        from .knn import knn_search

        self._ensure_frozen()
        tracer = self.tracer
        index.tracer = tracer
        before = self.disk.stats.snapshot()
        with tracer.span(
            "query.knn", index=index.name, terms=sorted(query.terms),
            k=query.k,
        ) as root:
            result = knn_search(
                self.ccam, self.network, index, query, tracer=tracer
            )
            if tracer.enabled:
                root.set(results=len(result))
        result.stats.io = self.disk.stats.snapshot() - before
        return result

    def diversified_search(
        self,
        index: ObjectIndex,
        query: DiversifiedSKQuery,
        method: str = "com",
        enable_pruning: bool = True,
        landmarks=None,
    ) -> DiversifiedResult:
        """Diversified SK search via ``"seq"`` or ``"com"``.

        ``landmarks`` (a :class:`repro.network.landmarks.LandmarkIndex`)
        tightens COM's pruning bounds; ignored by SEQ.

        When a shared distance cache is installed
        (:meth:`use_shared_distance_cache`) the pairwise computer backs
        onto it, so node maps survive across queries; all reported
        stats remain per-query deltas."""
        self._ensure_frozen()
        method = method.lower()
        if method not in ("seq", "com"):
            raise QueryError("method must be 'seq' or 'com'")
        tracer = self.tracer
        index.tracer = tracer
        before = self.disk.stats.snapshot()
        evictions_before = self.disk.buffer.evictions
        counters_before = _IndexCounterSnapshot(index)
        pairwise = PairwiseDistanceComputer(
            self.ccam,
            self.network,
            cutoff=2.0 * query.delta_max * 1.001,
            cache=self.distance_cache,
            tracer=tracer,
        )
        with tracer.span(
            "query.diversified", method=method.upper(), index=index.name,
            terms=sorted(query.terms), delta_max=query.delta_max,
            k=query.k, lambda_=query.lambda_,
        ) as root:
            if method == "seq":
                result = seq_search(
                    self.ccam, self.network, index, query, pairwise=pairwise,
                    tracer=tracer,
                )
            else:
                result = com_search(
                    self.ccam,
                    self.network,
                    index,
                    query,
                    pairwise=pairwise,
                    enable_pruning=enable_pruning,
                    landmarks=landmarks,
                    tracer=tracer,
                )
            if tracer.enabled:
                self._trace_signature_summary(
                    index, counters_before, len(result)
                )
                root.set(
                    candidates=result.stats.candidates, results=len(result),
                    objective_value=result.objective_value,
                    wall_seconds=result.stats.wall_seconds,
                    pairwise_dijkstras=result.stats.pairwise_dijkstras,
                    distance_cache_hits=result.stats.distance_cache_hits,
                    terminated_early=result.stats.expansion_terminated_early,
                )
        after = self.disk.stats.snapshot()
        result.stats.io = after - before
        result.stats.objects_loaded = (
            index.counters.objects_loaded - counters_before.objects_loaded
        )
        result.stats.false_hit_objects = (
            index.counters.false_hit_objects - counters_before.false_hit_objects
        )
        result.stats.buffer_evictions = (
            self.disk.buffer.evictions - evictions_before
        )
        result.stats.stage_seconds["signature"] = (
            index.counters.signature_seconds - counters_before.signature_seconds
        )
        self._record_query(f"diversified/{method}", index.name, result.stats)
        return result

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def dataset_statistics(self) -> Dict[str, float]:
        """Table-2-style statistics of the loaded dataset."""
        return {
            "num_objects": len(self.store),
            "vocabulary_size": len(self.store.vocabulary()),
            "avg_keywords": round(self.store.average_keywords_per_object(), 2),
            "num_nodes": self.network.num_nodes,
            "num_edges": self.network.num_edges,
        }
