"""Diversified SK search: the SEQ baseline and the incremental COM
algorithm (paper §4.1 and Algorithm 6).

* **SEQ** retrieves *every* object satisfying the spatial keyword
  constraint (Algorithm 3 run to completion), computes all pairwise
  network distances and feeds the greedy Algorithm 1.  Its cost is
  dominated by loading all candidates and the O(n²) pairwise distance
  computations.

* **COM** consumes the expansion stream incrementally, maintains the
  core pairs and θ_T (Algorithm 5), and uses the §4.3 diversity bounds
  to (a) prune visited objects that can never become core and (b)
  terminate the network expansion as soon as no unvisited object can
  contribute — closing the INE generator mid-flight.

Both entry points record a per-stage time breakdown into
``QueryStats.stage_seconds`` (``expansion``, ``object_loading``,
``maintenance``/``greedy``, ``pairwise_dijkstra``, ``finalise``) and
report every counter as a *per-query delta*, so a shared
:class:`~repro.network.distance.PairwiseDistanceComputer` (warm-cache
serving) never leaks earlier queries' work into this query's stats.

The ``pairwise_dijkstra`` stage measures total pairwise-distance
evaluation wall time whichever distance backend answers it (bounded
Dijkstras by default, CH point / many-to-many queries under
``--distance-backend ch``); the historical name is kept for column
compatibility across bench trajectories.
"""

from __future__ import annotations

import time
from itertools import islice
from typing import Callable, List, Optional

from ..index.base import ObjectIndex
from ..network.distance import AdjacencyProvider, PairwiseDistanceComputer
from ..network.graph import RoadNetwork
from ..nplib import HAVE_NUMPY, np
from ..obs.metrics import StageClock
from ..obs.tracing import NULL_TRACER
from .core_pairs import CorePairMaintainer
from .diversify import greedy_diversify
from .ine import INEExpansion
from .objective import DiversificationObjective
from .queries import DiversifiedResult, DiversifiedSKQuery, QueryStats, ResultItem

__all__ = ["seq_search", "com_search"]


def _make_pair_distance(
    computer: PairwiseDistanceComputer,
) -> Callable[[ResultItem, ResultItem], float]:
    def pair_distance(a: ResultItem, b: ResultItem) -> float:
        return computer.distance(a.object.position, b.object.position)

    return pair_distance


def _make_pair_matrix_builder(computer: PairwiseDistanceComputer):
    """Builds the symmetric pair-distance matrix for the array greedy.

    A backend with an array kernel (hub labels) hands the whole matrix
    over with no per-pair Python at all.  Otherwise
    ``computer.pairwise`` resolves pairs in the same lexicographic
    ``(i, j)`` order the scalar greedy's lazy θ cache would, so the
    per-query Dijkstra counters come out identical either way.
    """

    def build(pool) -> "np.ndarray":
        positions = [it.object.position for it in pool]
        matrix = computer.pairwise_matrix(positions)
        if matrix is None:
            pairs = computer.pairwise(positions)
            n = len(pool)
            matrix = np.zeros((n, n))
            for (i, j), d in pairs.items():
                matrix[i, j] = matrix[j, i] = d
        # Finalisation re-reads a handful of these distances; keep the
        # matrix so they resolve without further backend point queries.
        build.captured["matrix"] = matrix
        build.captured["row_of"] = {
            it.object.object_id: i for i, it in enumerate(pool)
        }
        return matrix

    build.captured = {}
    return build


def _resolve_array_scoring(array_scoring: Optional[bool]) -> bool:
    """``None`` means "array if numpy is importable" (the default)."""
    return HAVE_NUMPY if array_scoring is None else bool(array_scoring)


class _ComputerDelta:
    """Snapshots a (possibly shared) computer's lifetime counters.

    ``seq_search``/``com_search`` historically reported
    ``computer.dijkstra_runs`` directly; with a shared ``pairwise=``
    computer that is the *lifetime* total and over-counts earlier
    queries' runs.  This helper pins the start values so per-query
    stats are true deltas.
    """

    def __init__(self, computer: PairwiseDistanceComputer) -> None:
        self._computer = computer
        self._runs = computer.dijkstra_runs
        self._seconds = computer.pairwise_seconds
        # Cache hit/miss/eviction deltas come from the computer's own
        # counters, never from the cache: the cache may be shared by
        # queries running concurrently on other threads.
        self._hits = computer.cache_hits
        self._misses = computer.cache_misses
        self._evictions = computer.cache_evictions
        self._backend = computer.backend_counters.snapshot()

    @property
    def dijkstra_runs(self) -> int:
        return self._computer.dijkstra_runs - self._runs

    @property
    def pairwise_seconds(self) -> float:
        """Seconds spent evaluating pairwise distances, any backend."""
        return self._computer.pairwise_seconds - self._seconds

    def apply(self, stats: QueryStats) -> None:
        stats.pairwise_dijkstras = self.dijkstra_runs
        stats.distance_cache_hits = self._computer.cache_hits - self._hits
        stats.distance_cache_misses = (
            self._computer.cache_misses - self._misses
        )
        stats.distance_cache_evictions = (
            self._computer.cache_evictions - self._evictions
        )
        stats.distance_backend = self._computer.backend_name
        queries, settled, bucket_hits, _cells = (
            self._computer.backend_counters.snapshot()
        )
        q0, s0, b0, _c0 = self._backend
        stats.backend_queries = queries - q0
        stats.backend_settled_nodes = settled - s0
        stats.backend_bucket_hits = bucket_hits - b0


def _finalise(
    items: List[ResultItem],
    objective: DiversificationObjective,
    computer: PairwiseDistanceComputer,
    method: str,
    stats: QueryStats,
    captured: Optional[dict] = None,
) -> DiversifiedResult:
    dists = [it.distance for it in items]
    matrix = captured.get("matrix") if captured else None
    row_of = captured.get("row_of") if captured else None
    if matrix is not None and all(
        it.object.object_id in row_of for it in items
    ):
        rows = [row_of[it.object.object_id] for it in items]

        def pd(i: int, j: int) -> float:
            return float(matrix[rows[i], rows[j]])

    else:

        def pd(i: int, j: int) -> float:
            return computer.distance(
                items[i].object.position, items[j].object.position
            )

    value = objective.objective(dists, pd)
    return DiversifiedResult(items, value, method, stats)


def seq_search(
    provider: AdjacencyProvider,
    network: RoadNetwork,
    index: ObjectIndex,
    query: DiversifiedSKQuery,
    pairwise: Optional[PairwiseDistanceComputer] = None,
    tracer=NULL_TRACER,
    array_scoring: Optional[bool] = None,
    csr=None,
) -> DiversifiedResult:
    """The straightforward SEQ implementation (paper §4.1).

    ``array_scoring`` switches the greedy stage to the vectorized
    θ-matrix path (``None``: use it whenever numpy is available).
    Selections, ordering and per-query Dijkstra counts are identical
    to the scalar path — only the evaluation strategy changes (a
    backend array kernel serves the pair matrix in one call instead of
    through the per-pair cache, so cache-hit bookkeeping may differ).

    ``csr`` optionally routes the expansion over a CSR snapshot (the
    array frontier); answers and counters are unchanged.
    """
    start = time.perf_counter()
    clock = StageClock()
    expansion = INEExpansion(
        provider, network, index, query.position, query.terms,
        query.delta_max, tracer=tracer, csr=csr,
    )
    objective = DiversificationObjective(query.lambda_, query.delta_max)
    computer = pairwise or PairwiseDistanceComputer(
        provider, network, cutoff=2.0 * query.delta_max * 1.001
    )
    delta = _ComputerDelta(computer)

    with clock.stage("expansion"):
        candidates = expansion.run_to_completion()
    matrix_builder = (
        _make_pair_matrix_builder(computer)
        if _resolve_array_scoring(array_scoring)
        else None
    )
    array_kernel = (
        matrix_builder is not None
        and getattr(computer.backend, "position_matrix_array", None)
        is not None
        and len(candidates) > query.k
    )
    if (
        computer.backend is not None
        and len(candidates) > 1
        and not array_kernel
    ):
        # A CH-style backend answers the whole candidate×candidate
        # matrix with its many-to-many kernel in one go; the greedy
        # picker then hits the warm pair cache instead of issuing
        # point queries.  When the array greedy will pull the matrix
        # straight from an array kernel (hub labels) the dict-shaped
        # prefetch is skipped — the few finalisation distances resolve
        # as cheap point label merges.
        computer.prefetch([c.object.position for c in candidates])
    greedy_t0 = time.perf_counter()
    with clock.stage("greedy"):
        chosen = greedy_diversify(
            candidates, query.k, objective, _make_pair_distance(computer),
            pair_matrix_builder=matrix_builder,
        )
    if tracer.enabled:
        tracer.add_span(
            "greedy.select", time.perf_counter() - greedy_t0,
            start=greedy_t0, candidates=len(candidates), k=query.k,
        )

    stats = QueryStats(
        nodes_accessed=expansion.stats.nodes_accessed,
        edges_accessed=expansion.stats.edges_accessed,
        candidates=len(candidates),
    )
    with clock.stage("finalise"):
        result = _finalise(
            chosen, objective, computer, "SEQ", stats,
            captured=getattr(matrix_builder, "captured", None),
        )
    delta.apply(stats)
    clock.add("object_loading", expansion.stats.load_seconds)
    clock.add("pairwise_dijkstra", delta.pairwise_seconds)
    stats.stage_seconds = clock.stages
    stats.wall_seconds = time.perf_counter() - start
    return result


def com_search(
    provider: AdjacencyProvider,
    network: RoadNetwork,
    index: ObjectIndex,
    query: DiversifiedSKQuery,
    pairwise: Optional[PairwiseDistanceComputer] = None,
    enable_pruning: bool = True,
    landmarks=None,
    tracer=NULL_TRACER,
    array_scoring: Optional[bool] = None,
    csr=None,
) -> DiversifiedResult:
    """Algorithm 6: incremental diversified SK search.

    ``enable_pruning=False`` disables the diversity bounds (ablation
    A2): the stream is still processed incrementally but runs to
    exhaustion, isolating the benefit of the §4.3 pruning.

    ``landmarks`` optionally supplies a
    :class:`repro.network.landmarks.LandmarkIndex`; its exact distance
    upper bounds tighten the θ-skip and avoid further pairwise
    Dijkstras without changing any answer (ablation A4).

    ``array_scoring`` batches the core-pair maintainer's θ-bound rows
    through numpy (``None``: whenever numpy is available); answers and
    counters are unchanged.  Landmark bounds take precedence — with
    ``landmarks`` installed the maintainer stays on the scalar rows.

    When ``tracer`` is enabled, every arrival that reaches the pruning
    decision records a ``com.round`` span (γ, θ_T, the unvisited-pair
    upper bound, and the action taken), and early termination raises a
    ``com.early_termination`` event on the enclosing query span.
    """
    start = time.perf_counter()
    clock = StageClock()
    expansion = INEExpansion(
        provider, network, index, query.position, query.terms,
        query.delta_max, tracer=tracer, csr=csr,
    )
    objective = DiversificationObjective(query.lambda_, query.delta_max)
    computer = pairwise or PairwiseDistanceComputer(
        provider, network, cutoff=2.0 * query.delta_max * 1.001
    )
    delta = _ComputerDelta(computer)
    pair_ub = None
    if landmarks is not None:
        def pair_ub(a, b):
            return landmarks.upper_bound(a.object.position, b.object.position)
    maintainer = CorePairMaintainer(
        query.k,
        objective,
        _make_pair_distance(computer),
        pair_distance_upper_bound=pair_ub,
        tracer=tracer,
        array_scoring=_resolve_array_scoring(array_scoring),
    )
    tracing = tracer.enabled

    stream = clock.timed_iter(expansion.run(), "expansion")
    first = list(islice(stream, query.k))
    with clock.stage("maintenance"):
        maintainer.bootstrap(first)
    candidates = len(first)
    terminated_early = False
    pruned_total = 0

    def finish_round(t_item: float, action: str, **attrs) -> None:
        clock.add("maintenance", time.perf_counter() - t_item)
        if tracing:
            tracer.add_span(
                "com.round", time.perf_counter() - t_item, start=t_item,
                candidate=candidates, action=action,
                theta_t=maintainer.theta_t, **attrs,
            )

    for item in stream:
        candidates += 1
        t_item = time.perf_counter()
        maintainer.add(item)
        gamma = item.distance  # objects arrive in distance order
        if not enable_pruning:
            finish_round(t_item, "no_pruning", gamma=gamma)
            continue
        theta_t = maintainer.theta_t
        if theta_t == float("-inf"):
            finish_round(t_item, "cp_not_full", gamma=gamma)
            continue
        # Bound for any pair of two unvisited objects (Alg. 6 lines 4-7).
        ub_unvisited = objective.theta_ub_unvisited(gamma)
        if ub_unvisited >= theta_t:
            finish_round(
                t_item, "unvisited_pair_possible",
                gamma=gamma, ub_unvisited=ub_unvisited,
            )
            continue
        can_terminate = True
        pruned_here = 0
        for o_i in maintainer.active_objects():
            oid = o_i.object.object_id
            if objective.theta_ub_visited(o_i.distance, gamma) >= theta_t:
                # o_i may still pair with an unvisited object: keep
                # expanding (Alg. 6 lines 11-12).
                can_terminate = False
                break
            if maintainer.best_theta(oid) < theta_t and not maintainer.is_core(oid):
                # o_i can pair with nothing: drop it (Alg. 6 lines 13-14).
                maintainer.prune(oid)
                pruned_here += 1
        pruned_total += pruned_here
        finish_round(
            t_item,
            "terminate" if can_terminate else "visited_pair_possible",
            gamma=gamma, ub_unvisited=ub_unvisited, pruned=pruned_here,
        )
        if can_terminate:
            stream.close()  # terminate the network expansion (line 16)
            terminated_early = True
            if tracing:
                tracer.event(
                    "com.early_termination", gamma=gamma, theta_t=theta_t,
                    gamma_fraction=(
                        gamma / query.delta_max if query.delta_max > 0 else 0.0
                    ),
                    candidates=candidates,
                )
            break

    chosen = maintainer.core_objects()[: query.k]
    if tracing:
        tracer.add_span(
            "com.maintenance", clock.stages.get("maintenance", 0.0),
            candidates=candidates,
            theta_evaluations=maintainer.theta_evaluations,
            ub_triangle_wins=maintainer.ub_triangle_wins,
            ub_landmark_wins=maintainer.ub_landmark_wins,
            pruned_objects=pruned_total,
            terminated_early=terminated_early,
        )
    stats = QueryStats(
        nodes_accessed=expansion.stats.nodes_accessed,
        edges_accessed=expansion.stats.edges_accessed,
        candidates=candidates,
        theta_evaluations=maintainer.theta_evaluations,
        expansion_terminated_early=terminated_early,
    )
    with clock.stage("finalise"):
        result = _finalise(chosen, objective, computer, "COM", stats)
    delta.apply(stats)
    clock.add("object_loading", expansion.stats.load_seconds)
    clock.add("pairwise_dijkstra", delta.pairwise_seconds)
    stats.stage_seconds = clock.stages
    stats.wall_seconds = time.perf_counter() - start
    return result
