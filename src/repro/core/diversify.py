"""Greedy max-sum diversification (paper Algorithm 1, §2.3).

Maximising the max-sum objective is NP-hard; the greedy algorithm of
Gollapudi & Sharma repeatedly picks the remaining pair with the largest
diversification distance θ and achieves a 2-approximation.  It assumes
the candidate objects and their pairwise distances are available — the
SEQ baseline feeds it everything Algorithm 3 returns.

Two evaluation paths produce **identical selections**:

* the historical scalar path (lazy per-pair θ cache, pure Python);
* the array path: the caller supplies ``pair_matrix_builder`` and the
  whole θ matrix is evaluated at once
  (:meth:`~repro.core.objective.DiversificationObjective.theta_matrix`),
  each greedy round reduced by one masked ``argmax``.

Bit-identical tie-breaking: the scalar loop walks pairs ``(i, j)`` of
the distance-sorted pool in lexicographic order keeping the first
strict maximum; ``argmax`` over the masked upper triangle in row-major
order *is* that first maximum, and the matrix θ values are computed
with the same IEEE operations as the scalar ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..nplib import np
from .objective import DiversificationObjective
from .queries import ResultItem

__all__ = ["greedy_diversify"]

PairDistance = Callable[[ResultItem, ResultItem], float]
#: Called with the distance-sorted pool; returns the n×n symmetric
#: pair-distance matrix aligned to it (numpy array).
PairMatrixBuilder = Callable[[Sequence[ResultItem]], "object"]


def _greedy_from_matrix(
    pool: List[ResultItem],
    k: int,
    objective: DiversificationObjective,
    pair_matrix_builder: PairMatrixBuilder,
) -> List[ResultItem]:
    n = len(pool)
    pair_matrix = pair_matrix_builder(pool)
    dists = np.fromiter((it.distance for it in pool), np.float64, n)
    theta = objective.theta_matrix(dists, pair_matrix)
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    alive = np.ones(n, dtype=bool)
    chosen: List[int] = []
    for _ in range(k // 2):
        mask = upper & alive[:, None] & alive[None, :]
        if not mask.any():
            break
        masked = np.where(mask, theta, -np.inf)
        flat = int(masked.argmax())  # first max in row-major order ==
        i, j = divmod(flat, n)       # lexicographically-first strict max
        chosen.extend((i, j))
        alive[i] = alive[j] = False
        if int(alive.sum()) < 2:
            break
    if len(chosen) < k and alive.any():
        # Odd k (or an exhausted pool): add the closest remaining
        # object — the lowest alive index, since the pool is sorted.
        chosen.append(int(np.flatnonzero(alive)[0]))
    result = [pool[i] for i in chosen[:k]]
    result.sort(key=lambda it: (it.distance, it.object.object_id))
    return result


def greedy_diversify(
    candidates: Sequence[ResultItem],
    k: int,
    objective: DiversificationObjective,
    pair_distance: PairDistance,
    pair_matrix_builder: Optional[PairMatrixBuilder] = None,
) -> List[ResultItem]:
    """Select ``k`` diversified objects from ``candidates``.

    Each iteration picks the unused pair ``(u, v)`` maximising
    ``θ(u, v)`` (Algorithm 1 lines 2-4); with odd ``k`` one more object
    is appended (the paper picks arbitrarily; we take the closest
    remaining object for determinism).  Fewer than ``k`` candidates are
    returned as-is, ordered by distance.

    ``pair_matrix_builder`` (with numpy available) switches the rounds
    to the vectorized matrix path — same selections, same order.
    """
    if k <= 0:
        return []
    pool = sorted(candidates, key=lambda it: (it.distance, it.object.object_id))
    if len(pool) <= k:
        return pool
    if pair_matrix_builder is not None and np is not None:
        return _greedy_from_matrix(pool, k, objective, pair_matrix_builder)

    theta_cache: Dict[Tuple[int, int], float] = {}

    def theta_of(i: int, j: int) -> float:
        key = (i, j) if i < j else (j, i)
        value = theta_cache.get(key)
        if value is None:
            u, v = pool[key[0]], pool[key[1]]
            value = objective.theta(u.distance, v.distance, pair_distance(u, v))
            theta_cache[key] = value
        return value

    remaining = set(range(len(pool)))
    chosen: List[int] = []
    for _ in range(k // 2):
        best_pair: Tuple[int, int] = (-1, -1)
        best_theta = float("-inf")
        order = sorted(remaining)
        for a_pos, i in enumerate(order):
            for j in order[a_pos + 1 :]:
                t = theta_of(i, j)
                if t > best_theta:
                    best_theta = t
                    best_pair = (i, j)
        if best_pair[0] < 0:
            break
        chosen.extend(best_pair)
        remaining.discard(best_pair[0])
        remaining.discard(best_pair[1])
        if len(remaining) < 2:
            break
    if len(chosen) < k and remaining:
        # Odd k (or an exhausted pool): add the closest remaining object.
        extra = min(remaining)
        chosen.append(extra)
    result = [pool[i] for i in chosen[:k]]
    result.sort(key=lambda it: (it.distance, it.object.object_id))
    return result
