"""Greedy max-sum diversification (paper Algorithm 1, §2.3).

Maximising the max-sum objective is NP-hard; the greedy algorithm of
Gollapudi & Sharma repeatedly picks the remaining pair with the largest
diversification distance θ and achieves a 2-approximation.  It assumes
the candidate objects and their pairwise distances are available — the
SEQ baseline feeds it everything Algorithm 3 returns.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .objective import DiversificationObjective
from .queries import ResultItem

__all__ = ["greedy_diversify"]

PairDistance = Callable[[ResultItem, ResultItem], float]


def greedy_diversify(
    candidates: Sequence[ResultItem],
    k: int,
    objective: DiversificationObjective,
    pair_distance: PairDistance,
) -> List[ResultItem]:
    """Select ``k`` diversified objects from ``candidates``.

    Each iteration picks the unused pair ``(u, v)`` maximising
    ``θ(u, v)`` (Algorithm 1 lines 2-4); with odd ``k`` one more object
    is appended (the paper picks arbitrarily; we take the closest
    remaining object for determinism).  Fewer than ``k`` candidates are
    returned as-is, ordered by distance.
    """
    if k <= 0:
        return []
    pool = sorted(candidates, key=lambda it: (it.distance, it.object.object_id))
    if len(pool) <= k:
        return pool

    theta_cache: Dict[Tuple[int, int], float] = {}

    def theta_of(i: int, j: int) -> float:
        key = (i, j) if i < j else (j, i)
        value = theta_cache.get(key)
        if value is None:
            u, v = pool[key[0]], pool[key[1]]
            value = objective.theta(u.distance, v.distance, pair_distance(u, v))
            theta_cache[key] = value
        return value

    remaining = set(range(len(pool)))
    chosen: List[int] = []
    for _ in range(k // 2):
        best_pair: Tuple[int, int] = (-1, -1)
        best_theta = float("-inf")
        order = sorted(remaining)
        for a_pos, i in enumerate(order):
            for j in order[a_pos + 1 :]:
                t = theta_of(i, j)
                if t > best_theta:
                    best_theta = t
                    best_pair = (i, j)
        if best_pair[0] < 0:
            break
        chosen.extend(best_pair)
        remaining.discard(best_pair[0])
        remaining.discard(best_pair[1])
        if len(remaining) < 2:
            break
    if len(chosen) < k and remaining:
        # Odd k (or an exhausted pool): add the closest remaining object.
        extra = min(remaining)
        chosen.append(extra)
    result = [pool[i] for i in chosen[:k]]
    result.sort(key=lambda it: (it.distance, it.object.object_id))
    return result
