"""Incremental maintenance of a diversified top-k answer under updates.

Re-running SEQ (or COM) from scratch after every insert/delete repeats
the expensive part — the network expansion that gathers the candidate
set — even though a single object update changes at most one candidate.
Following the incremental diversified top-k line of work (Drosou &
Pitoura, arXiv 1208.0076), :class:`IncrementalDiversifiedTopK` keeps
the query's *full candidate pool* (every object within ``delta_max``
matching the keywords, exactly what SEQ's exhaustive expansion
produces) and maintains it against the database's update journal:

* **insert** — if the new object carries all query keywords, its
  network distance is evaluated against a cached single-source node
  map (one bounded Dijkstra per refresh batch, reused across inserts);
  within ``delta_max`` it joins the pool.
* **delete** — the object is dropped from the pool by id.
* **edge_weight** — a reweight can shift *every* candidate's distance
  and the pairwise distances between them; if the edge intersects the
  query's relevance region the pool is re-bootstrapped from a fresh
  expansion (counted in :attr:`full_recomputes`).  Reweights of far
  edges are ignored — the same conservative Euclidean bound the
  semantic result cache uses.

The answer is then *re-diversified* from the maintained pool with the
same greedy Algorithm 1 SEQ uses.  Because the pool is kept exactly
equal to what a fresh exhaustive expansion would return, and greedy
diversification is deterministic in the pool contents (candidates are
sorted by ``(distance, object_id)`` before selection), the refreshed
answer is **identical** to re-running ``diversified_search`` from
scratch at the current epoch — the recompute-equivalence contract the
property tests enforce.

Distance fidelity
-----------------
Pool distances must be bit-identical to INE's ``δ(q, o)`` or the
greedy tie-breaks could diverge.  INE computes ``min over settled
end-nodes of (δ(q, n) + offset-from-n)`` with nodes settled up to
``delta_max``, and pins objects sharing the query's edge at the
along-edge distance ``|offset_o - offset_q|`` (paper's same-edge rule,
applied *instead of* the endpoint paths).  The maintainer mirrors both
rules: ``single_source_distances(cutoff=delta_max)`` yields exactly
the settled-node map, and same-edge inserts take the pinned along-edge
distance without consulting it.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..network.distance import (
    PairwiseDistanceComputer,
    position_distance_from_node_map,
    single_source_distances,
)
from ..spatial.geometry import project_onto_segment
from .diversify import greedy_diversify
from .ine import INEExpansion
from .objective import DiversificationObjective
from .queries import DiversifiedResult, DiversifiedSKQuery, QueryStats, ResultItem

__all__ = ["IncrementalDiversifiedTopK"]


class IncrementalDiversifiedTopK:
    """One standing diversified query, maintained across updates.

    Parameters
    ----------
    db:
        The :class:`~repro.core.database.Database` (duck-typed; needs
        ``ccam``, ``network``, ``store``, ``update_journal``,
        ``data_version``, ``min_weight_per_length`` and
        ``pairwise_backend``).
    index:
        Object index the standing query reads through.
    query:
        The :class:`DiversifiedSKQuery` to keep answered.
    """

    def __init__(self, db, index, query: DiversifiedSKQuery) -> None:
        self._db = db
        self._index = index
        self._query = query
        self._objective = DiversificationObjective(query.lambda_, query.delta_max)
        #: object_id -> ResultItem, the full candidate pool.
        self._pool: Dict[int, ResultItem] = {}
        #: Journal epoch the pool reflects.
        self._epoch = 0
        #: Cached single-source node map for insert distance evaluation;
        #: distances from the query only change on a (region-relevant)
        #: reweight, which re-bootstraps and drops the cache.
        self._node_map: Optional[Dict[int, float]] = None
        self.refreshes = 0
        self.incremental_refreshes = 0
        self.full_recomputes = 0
        self._bootstrap()

    # ------------------------------------------------------------------
    # Pool maintenance
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """(Re)build the pool from a fresh exhaustive expansion."""
        db = self._db
        q = self._query
        # Sample the epoch *before* expanding: an update landing
        # mid-expansion is then replayed by the next refresh instead of
        # being silently half-applied.
        self._epoch = db.data_version
        # Expand over the database's configured frontier (db is
        # duck-typed in tests, so the CSR hook is optional).
        frontier_csr = getattr(db, "frontier_csr", None)
        expansion = INEExpansion(
            db.ccam, db.network, self._index, q.position, q.terms,
            q.delta_max,
            csr=frontier_csr() if callable(frontier_csr) else None,
        )
        self._pool = {
            item.object.object_id: item
            for item in expansion.run_to_completion()
        }
        self._node_map = None

    def _reweight_is_relevant(self, edge_id: int) -> bool:
        """Could reweighting ``edge_id`` change any distance we rely on?

        Candidate distances stay within ``delta_max`` of the query;
        pairwise paths between candidates (Dijkstra cutoff
        ``2 * delta_max * 1.001``) stay within ``(1 + 2*1.001) *
        delta_max``.  Beyond that radius — by the Euclidean lower bound
        ``network >= r_min * euclidean`` — the edge is untouchable.
        """
        from ..engine.result_cache import PAIRWISE_RADIUS_FACTOR

        db = self._db
        q = self._query
        try:
            query_point = db.network.position_point(q.position)
        except Exception:
            # The query's own edge shrank beneath its offset: the
            # standing query's geometry itself is stale — recompute.
            return True
        edge = db.network.edge(edge_id)
        closest, _t = project_onto_segment(query_point, edge.p1, edge.p2)
        euclid = query_point.distance_to(closest)
        r_min = db.min_weight_per_length()
        return r_min * euclid <= PAIRWISE_RADIUS_FACTOR * q.delta_max

    def _insert_distance(self, obj) -> float:
        """``δ(q, o)`` exactly as INE would have computed it."""
        db = self._db
        q = self._query
        if obj.position.edge_id == q.position.edge_id:
            # Same-edge rule: pinned along-edge distance, no endpoint
            # paths (mirrors INE's `pinned` set).
            return abs(obj.position.offset - q.position.offset)
        if self._node_map is None:
            self._node_map = single_source_distances(
                db.ccam, db.network, q.position, cutoff=q.delta_max
            )
        return position_distance_from_node_map(
            db.network, self._node_map, obj.position
        )

    def refresh(self) -> bool:
        """Catch the pool up with the journal.

        Returns ``True`` when anything changed (pool content or a full
        re-bootstrap), ``False`` when every journaled record since the
        last refresh was irrelevant to this query.
        """
        db = self._db
        q = self._query
        records = db.update_journal.since(self._epoch)
        if not records:
            return False
        self.refreshes += 1
        changed = False
        for rec in records:
            if rec.kind == "edge_weight":
                if self._reweight_is_relevant(rec.edge_id):
                    # Distances (query->object and pairwise) may all have
                    # moved; rebuild from scratch at the current epoch.
                    # _bootstrap advances the cursor past the remaining
                    # records too — the fresh expansion already sees them.
                    self._bootstrap()
                    self.full_recomputes += 1
                    return True
                continue
            if rec.kind == "delete":
                if self._pool.pop(rec.object_id, None) is not None:
                    changed = True
                continue
            # insert
            if not q.terms <= rec.terms:
                continue
            try:
                obj = db.store.get(rec.object_id)
            except Exception:
                # Inserted and deleted again later in this same batch;
                # the delete record will keep it out of the pool.
                obj = None
            if obj is None:
                continue
            dist = self._insert_distance(obj)
            if dist <= q.delta_max:
                self._pool[rec.object_id] = ResultItem(obj, dist)
                changed = True
        self._epoch = records[-1].epoch
        self.incremental_refreshes += 1
        return changed

    # ------------------------------------------------------------------
    # Answer
    # ------------------------------------------------------------------
    def result(self) -> DiversifiedResult:
        """Diversify the maintained pool; identical to a fresh SEQ run.

        Builds the same pairwise computer ``seq_search`` would (same
        cutoff, shared distance cache, CH backend, pinned epoch) so the
        greedy selection sees float-identical ``θ`` values.
        """
        db = self._db
        q = self._query
        computer = PairwiseDistanceComputer(
            db.ccam,
            db.network,
            cutoff=2.0 * q.delta_max * 1.001,
            cache=db.distance_cache,
            backend=db.pairwise_backend(),
            epoch=self._epoch if db.distance_cache is not None else None,
        )
        candidates = list(self._pool.values())
        if computer.backend is not None and len(candidates) > 1:
            computer.prefetch([c.object.position for c in candidates])

        def pair_distance(a: ResultItem, b: ResultItem) -> float:
            return computer.distance(a.object.position, b.object.position)

        chosen = greedy_diversify(candidates, q.k, self._objective, pair_distance)
        dists = [it.distance for it in chosen]

        def pd(i: int, j: int) -> float:
            return computer.distance(
                chosen[i].object.position, chosen[j].object.position
            )

        value = self._objective.objective(dists, pd)
        stats = QueryStats(
            candidates=len(candidates),
            pairwise_dijkstras=computer.dijkstra_runs,
            distance_backend=computer.backend_name,
            epoch=self._epoch,
        )
        return DiversifiedResult(chosen, value, "SEQ", stats)

    def current(self) -> DiversifiedResult:
        """:meth:`refresh` then :meth:`result` in one call."""
        self.refresh()
        return self.result()

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    @property
    def epoch(self) -> int:
        return self._epoch

    def counters(self) -> Dict[str, int]:
        return {
            "refreshes": self.refreshes,
            "incremental_refreshes": self.incremental_refreshes,
            "full_recomputes": self.full_recomputes,
            "pool_size": len(self._pool),
        }
