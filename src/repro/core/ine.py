"""Incremental network expansion with spatial keyword pruning (Alg. 3).

The expansion integrates Dijkstra's algorithm with INE [Papadias et
al.]: nodes are settled in non-decreasing network distance from the
query; when an edge is reached for the first time its matching objects
are loaded through the object index (Algorithm 2 — this is where the
signature pruning bites) and queued with tentative distances that are
finalised once provably minimal.

:class:`INEExpansion` is a *generator*: objects stream out in
non-decreasing ``δ(q, o)`` order.  The plain SK search materialises the
stream; the incremental diversified search (COM, Algorithm 6) consumes
it lazily and may close it early, terminating the network expansion
exactly as the paper's Algorithm 6 line 16 does.

Two frontier implementations share the emission machinery:

* the **dict frontier** walks the adjacency lists returned by the
  provider (the CCAM store in measured runs);
* the **CSR frontier** settles nodes from a
  :class:`~repro.network.csr.CSRGraph`'s contiguous
  ``indptr/indices/weights`` arrays, with per-node push pruning
  (a tentative-best array) instead of unconditional duplicate pushes.

Both settle the same nodes in the same order — CSR rows ascend with
node id, so ``(distance, row)`` heap ties break exactly like
``(distance, node_id)``, and push pruning only drops heap entries that
could never produce a fresh pop — which keeps emission order, traversal
counters and the early-termination point byte-identical.  The CSR loop
still charges one provider adjacency read per settled node, so the
CCAM I/O model sees the same access sequence.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..index.base import ObjectIndex
from ..network.csr import CSRGraph
from ..network.distance import AdjacencyProvider, seed_distances
from ..network.graph import NetworkPosition, RoadNetwork
from ..network.objects import SpatioTextualObject
from ..obs.tracing import NULL_TRACER
from .queries import ResultItem

__all__ = ["ExpansionStats", "INEExpansion"]

#: Settled nodes per traced expansion round.  Tracing records one
#: ``ine.round`` span (frontier size, distance watermark, objects
#: emitted) per this many node settlements, so span count stays
#: proportional to log-scale progress rather than node count.
TRACE_ROUND_NODES = 32

_INF = float("inf")


@dataclass
class ExpansionStats:
    """Road-network traversal counters of one expansion (paper's l_n, l_e)."""

    nodes_accessed: int = 0
    edges_accessed: int = 0
    objects_emitted: int = 0
    terminated_early: bool = False
    #: Wall seconds spent inside ``index.load_objects`` (Algorithm 2:
    #: signature tests + posting fetches), a sub-stage of expansion.
    load_seconds: float = 0.0


class _RoundTrace:
    """Per-``TRACE_ROUND_NODES`` ``ine.round`` span bookkeeping.

    Shared by both frontier loops so the trace schema does not depend
    on the frontier (the ``frontier`` attribute — the heap length — is
    the one value allowed to differ: push pruning keeps the CSR heap
    shorter, and replay does not compare it).
    """

    __slots__ = (
        "tracer", "stats", "delta_max", "round_idx", "round_nodes",
        "round_edges", "round_emitted", "round_t0", "watermark",
    )

    def __init__(self, tracer, stats: ExpansionStats, delta_max: float) -> None:
        self.tracer = tracer
        self.stats = stats
        self.delta_max = delta_max
        self.round_idx = 0
        self.round_nodes = 0
        self.round_edges = stats.edges_accessed
        self.round_emitted = stats.objects_emitted
        self.round_t0 = time.perf_counter()
        self.watermark = 0.0

    def settle(self, d_n: float, frontier: int) -> None:
        self.watermark = d_n
        self.round_nodes += 1
        if self.round_nodes >= TRACE_ROUND_NODES:
            self.flush(frontier)

    def flush(self, frontier: int) -> None:
        """Record the in-progress expansion round as a span."""
        if self.round_nodes == 0:
            return
        self.tracer.add_span(
            "ine.round",
            time.perf_counter() - self.round_t0,
            start=self.round_t0,
            round=self.round_idx,
            frontier=frontier,
            watermark=self.watermark,
            watermark_fraction=(
                self.watermark / self.delta_max if self.delta_max > 0 else 0.0
            ),
            nodes_settled=self.round_nodes,
            edges_visited=self.stats.edges_accessed - self.round_edges,
            objects_emitted=self.stats.objects_emitted - self.round_emitted,
        )
        self.round_idx += 1
        self.round_nodes = 0
        self.round_edges = self.stats.edges_accessed
        self.round_emitted = self.stats.objects_emitted
        self.round_t0 = time.perf_counter()


class INEExpansion:
    """Algorithm 3 as a resumable object stream.

    Parameters
    ----------
    provider:
        Adjacency provider — the CCAM store in measured runs, so every
        adjacency access is charged to the I/O model.
    network:
        The logical road network (edge metadata only; no traversal).
    index:
        Object index implementing Algorithm 2 (``load_objects``).
    position, terms, delta_max:
        The SK query.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`; when enabled the
        expansion records one ``ine.round`` span per
        ``TRACE_ROUND_NODES`` settled nodes under the caller's current
        span, plus an ``ine.terminated`` event with the stop reason.
    csr:
        Optional :class:`~repro.network.csr.CSRGraph` snapshot of
        ``network``.  When given, the frontier settles nodes from the
        CSR arrays (same settle order, counters and emissions as the
        dict frontier); adjacency I/O is still charged per settled
        node through ``provider``.
    """

    def __init__(
        self,
        provider: AdjacencyProvider,
        network: RoadNetwork,
        index: ObjectIndex,
        position: NetworkPosition,
        terms: FrozenSet[str],
        delta_max: float,
        tracer=NULL_TRACER,
        csr: Optional[CSRGraph] = None,
    ) -> None:
        self._provider = provider
        self._network = network
        self._index = index
        self._position = position
        self._terms = terms
        self._delta_max = delta_max
        self._tracer = tracer
        self._csr = csr
        self.stats = ExpansionStats()

    def _load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        start = time.perf_counter()
        matches = self._index.load_objects(edge_id, terms)
        self.stats.load_seconds += time.perf_counter() - start
        return matches

    def _object_machinery(self):
        """Shared emission state: queue, finalisation, query-edge seed.

        Returns ``(queue_object, emit_upto, pinned)`` closures/state
        with the query edge already seeded (its objects queued at their
        along-edge distance and pinned against relaxation).
        """
        delta_max = self._delta_max
        #: object_id -> best tentative distance
        best: Dict[int, float] = {}
        #: object_id -> object (for emission)
        loaded: Dict[int, SpatioTextualObject] = {}
        #: objects on the query edge use the along-edge distance and are
        #: never relaxed (paper: δ(q, p) = w(q, p) on a shared edge).
        pinned: Set[int] = set()
        emitted: Set[int] = set()
        obj_heap: List[Tuple[float, int]] = []

        def queue_object(obj: SpatioTextualObject, dist: float) -> None:
            prev = best.get(obj.object_id)
            if prev is not None and prev <= dist:
                return
            best[obj.object_id] = dist
            loaded[obj.object_id] = obj
            heapq.heappush(obj_heap, (dist, obj.object_id))

        def emit_upto(bound: float) -> Iterator[ResultItem]:
            """Objects whose tentative distance can no longer improve."""
            while obj_heap and obj_heap[0][0] <= bound:
                dist, oid = heapq.heappop(obj_heap)
                if oid in emitted or dist > best[oid]:
                    continue  # stale heap entry
                if dist > delta_max:
                    continue
                emitted.add(oid)
                self.stats.objects_emitted += 1
                yield ResultItem(loaded[oid], dist)

        # Seed: the query's own edge.
        self.stats.edges_accessed += 1
        for obj in self._load_objects(self._position.edge_id, self._terms):
            dist = abs(obj.position.offset - self._position.offset)
            if dist <= delta_max:
                queue_object(obj, dist)
                pinned.add(obj.object_id)

        return queue_object, emit_upto, pinned

    def run(self) -> Iterator[ResultItem]:
        """Yield matching objects in non-decreasing network distance."""
        if self._csr is not None:
            return self._run_csr()
        return self._run_dict()

    # ------------------------------------------------------------------
    # Dict frontier (provider adjacency lists)
    # ------------------------------------------------------------------
    def _run_dict(self) -> Iterator[ResultItem]:
        network = self._network
        delta_max = self._delta_max

        settled: Set[int] = set()
        visited_edges: Set[int] = {self._position.edge_id}
        node_heap: List[Tuple[float, int]] = []
        #: matching objects grouped by edge, for endpoint relaxation
        edge_objects: Dict[int, List[SpatioTextualObject]] = {}

        queue_object, emit_upto, pinned = self._object_machinery()

        for node_id, dist in seed_distances(network, self._position).items():
            heapq.heappush(node_heap, (dist, node_id))

        tracer = self._tracer
        tracing = tracer.enabled
        rounds = _RoundTrace(tracer, self.stats, delta_max) if tracing else None

        try:
            while node_heap:
                d_n, node_id = heapq.heappop(node_heap)
                if node_id in settled:
                    continue
                # Every queued object with tentative distance <= d_n is
                # final: any improvement would route through a node settled
                # later, at distance >= d_n.
                yield from emit_upto(d_n)
                if d_n > delta_max:
                    # δ_T exceeded δmax: no unvisited node or object can
                    # qualify any more (paper's termination condition).
                    if tracing:
                        rounds.watermark = d_n
                        tracer.event(
                            "ine.terminated", reason="delta_max", watermark=d_n
                        )
                    break
                settled.add(node_id)
                self.stats.nodes_accessed += 1
                if tracing:
                    rounds.settle(d_n, len(node_heap))

                self._expand_node(
                    node_id, d_n, settled, visited_edges, node_heap,
                    edge_objects, pinned, queue_object,
                )

            yield from emit_upto(float("inf"))
        finally:
            if tracing:
                rounds.flush(len(node_heap))

    def _expand_node(
        self, node_id, d_n, settled, visited_edges, node_heap,
        edge_objects, pinned, queue_object,
    ) -> None:
        """Relax one settled node's incident edges (Alg. 3 lines 9-22)."""
        network = self._network
        query_edge = self._position.edge_id
        for edge_id, other, weight in self._provider.neighbors(node_id):
            if other not in settled:
                heapq.heappush(node_heap, (d_n + weight, other))
            if edge_id == query_edge:
                continue  # pinned objects keep their along-edge distance
            edge = network.edge(edge_id)
            if edge_id not in visited_edges:
                visited_edges.add(edge_id)
                self.stats.edges_accessed += 1
                matches = self._load_objects(edge_id, self._terms)
                if matches:
                    edge_objects[edge_id] = matches
                for obj in matches:
                    offset = (
                        obj.position.offset
                        if node_id == edge.n1
                        else edge.weight - obj.position.offset
                    )
                    queue_object(obj, d_n + offset)
            else:
                # Second end-node settled: relax the edge's objects
                # (Algorithm 3 lines 18-22).
                for obj in edge_objects.get(edge_id, ()):
                    if obj.object_id in pinned:
                        continue
                    offset = (
                        obj.position.offset
                        if node_id == edge.n1
                        else edge.weight - obj.position.offset
                    )
                    queue_object(obj, d_n + offset)

    # ------------------------------------------------------------------
    # CSR frontier (contiguous indptr/indices/weights)
    # ------------------------------------------------------------------
    def _run_csr(self) -> Iterator[ResultItem]:
        network = self._network
        delta_max = self._delta_max
        query_edge = self._position.edge_id
        provider = self._provider
        csr = self._csr
        indptr, indices, weights, entry_edges, entry_targets, node_ids = (
            csr.traversal_lists()
        )

        n = csr.num_nodes
        row_of = csr.row_of
        #: tentative best per row: a push happens only when it improves
        #: on every earlier push for that row, so dominated duplicates
        #: (which the dict frontier pushes and later skips as settled)
        #: never enter the heap — fresh pops are identical.
        best_node = [_INF] * n
        settled = bytearray(n)
        visited = bytearray(network.num_edges)
        node_heap: List[Tuple[float, int]] = []
        edge_objects: Dict[int, List[SpatioTextualObject]] = {}

        queue_object, emit_upto, pinned = self._object_machinery()

        for node_id, dist in seed_distances(network, self._position).items():
            r = row_of[node_id]
            if dist < best_node[r]:
                best_node[r] = dist
            heapq.heappush(node_heap, (dist, r))

        tracer = self._tracer
        tracing = tracer.enabled
        rounds = _RoundTrace(tracer, self.stats, delta_max) if tracing else None

        stats = self.stats
        try:
            while node_heap:
                d_n, r = heapq.heappop(node_heap)
                if settled[r]:
                    continue
                yield from emit_upto(d_n)
                if d_n > delta_max:
                    if tracing:
                        rounds.watermark = d_n
                        tracer.event(
                            "ine.terminated", reason="delta_max", watermark=d_n
                        )
                    break
                settled[r] = 1
                stats.nodes_accessed += 1
                if tracing:
                    rounds.settle(d_n, len(node_heap))

                node_id = node_ids[r]
                # I/O parity with the dict frontier: one adjacency read
                # per settled node is charged to the provider (a CCAM
                # page access); traversal then runs over the CSR arrays.
                provider.neighbors(node_id)

                for idx in range(indptr[r], indptr[r + 1]):
                    other = indices[idx]
                    if not settled[other]:
                        nd = d_n + weights[idx]
                        if nd < best_node[other]:
                            best_node[other] = nd
                            heapq.heappush(node_heap, (nd, other))
                    edge_id = entry_edges[idx]
                    if edge_id == query_edge:
                        continue  # pinned objects keep their distance
                    if not visited[edge_id]:
                        visited[edge_id] = 1
                        stats.edges_accessed += 1
                        matches = self._load_objects(edge_id, self._terms)
                        if matches:
                            edge_objects[edge_id] = matches
                            weight = weights[idx]
                            # add_edge orders n1 < n2, so the settled
                            # endpoint is n1 iff its id is the smaller.
                            src_is_n1 = node_id < entry_targets[idx]
                            for obj in matches:
                                offset = (
                                    obj.position.offset
                                    if src_is_n1
                                    else weight - obj.position.offset
                                )
                                queue_object(obj, d_n + offset)
                    else:
                        objs = edge_objects.get(edge_id)
                        if objs:
                            weight = weights[idx]
                            src_is_n1 = node_id < entry_targets[idx]
                            for obj in objs:
                                if obj.object_id in pinned:
                                    continue
                                offset = (
                                    obj.position.offset
                                    if src_is_n1
                                    else weight - obj.position.offset
                                )
                                queue_object(obj, d_n + offset)

            yield from emit_upto(float("inf"))
        finally:
            if tracing:
                rounds.flush(len(node_heap))

    def run_to_completion(self) -> List[ResultItem]:
        """Materialise the whole stream (plain SK search)."""
        return list(self.run())
