"""Incremental network expansion with spatial keyword pruning (Alg. 3).

The expansion integrates Dijkstra's algorithm with INE [Papadias et
al.]: nodes are settled in non-decreasing network distance from the
query; when an edge is reached for the first time its matching objects
are loaded through the object index (Algorithm 2 — this is where the
signature pruning bites) and queued with tentative distances that are
finalised once provably minimal.

:class:`INEExpansion` is a *generator*: objects stream out in
non-decreasing ``δ(q, o)`` order.  The plain SK search materialises the
stream; the incremental diversified search (COM, Algorithm 6) consumes
it lazily and may close it early, terminating the network expansion
exactly as the paper's Algorithm 6 line 16 does.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..index.base import ObjectIndex
from ..network.distance import AdjacencyProvider, seed_distances
from ..network.graph import NetworkPosition, RoadNetwork
from ..network.objects import SpatioTextualObject
from ..obs.tracing import NULL_TRACER
from .queries import ResultItem

__all__ = ["ExpansionStats", "INEExpansion"]

#: Settled nodes per traced expansion round.  Tracing records one
#: ``ine.round`` span (frontier size, distance watermark, objects
#: emitted) per this many node settlements, so span count stays
#: proportional to log-scale progress rather than node count.
TRACE_ROUND_NODES = 32


@dataclass
class ExpansionStats:
    """Road-network traversal counters of one expansion (paper's l_n, l_e)."""

    nodes_accessed: int = 0
    edges_accessed: int = 0
    objects_emitted: int = 0
    terminated_early: bool = False
    #: Wall seconds spent inside ``index.load_objects`` (Algorithm 2:
    #: signature tests + posting fetches), a sub-stage of expansion.
    load_seconds: float = 0.0


class INEExpansion:
    """Algorithm 3 as a resumable object stream.

    Parameters
    ----------
    provider:
        Adjacency provider — the CCAM store in measured runs, so every
        adjacency access is charged to the I/O model.
    network:
        The logical road network (edge metadata only; no traversal).
    index:
        Object index implementing Algorithm 2 (``load_objects``).
    position, terms, delta_max:
        The SK query.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`; when enabled the
        expansion records one ``ine.round`` span per
        ``TRACE_ROUND_NODES`` settled nodes under the caller's current
        span, plus an ``ine.terminated`` event with the stop reason.
    """

    def __init__(
        self,
        provider: AdjacencyProvider,
        network: RoadNetwork,
        index: ObjectIndex,
        position: NetworkPosition,
        terms: FrozenSet[str],
        delta_max: float,
        tracer=NULL_TRACER,
    ) -> None:
        self._provider = provider
        self._network = network
        self._index = index
        self._position = position
        self._terms = terms
        self._delta_max = delta_max
        self._tracer = tracer
        self.stats = ExpansionStats()

    def _load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        start = time.perf_counter()
        matches = self._index.load_objects(edge_id, terms)
        self.stats.load_seconds += time.perf_counter() - start
        return matches

    def run(self) -> Iterator[ResultItem]:
        """Yield matching objects in non-decreasing network distance."""
        network = self._network
        delta_max = self._delta_max
        query_edge = self._position.edge_id

        settled: Set[int] = set()
        visited_edges: Set[int] = set()
        node_heap: List[Tuple[float, int]] = []
        #: object_id -> best tentative distance
        best: Dict[int, float] = {}
        #: object_id -> object (for emission)
        loaded: Dict[int, SpatioTextualObject] = {}
        #: matching objects grouped by edge, for endpoint relaxation
        edge_objects: Dict[int, List[SpatioTextualObject]] = {}
        #: objects on the query edge use the along-edge distance and are
        #: never relaxed (paper: δ(q, p) = w(q, p) on a shared edge).
        pinned: Set[int] = set()
        emitted: Set[int] = set()
        obj_heap: List[Tuple[float, int]] = []

        def queue_object(obj: SpatioTextualObject, dist: float) -> None:
            prev = best.get(obj.object_id)
            if prev is not None and prev <= dist:
                return
            best[obj.object_id] = dist
            loaded[obj.object_id] = obj
            heapq.heappush(obj_heap, (dist, obj.object_id))

        def emit_upto(bound: float) -> Iterator[ResultItem]:
            """Objects whose tentative distance can no longer improve."""
            while obj_heap and obj_heap[0][0] <= bound:
                dist, oid = heapq.heappop(obj_heap)
                if oid in emitted or dist > best[oid]:
                    continue  # stale heap entry
                if dist > delta_max:
                    continue
                emitted.add(oid)
                self.stats.objects_emitted += 1
                yield ResultItem(loaded[oid], dist)

        # Seed: the query's own edge.
        visited_edges.add(query_edge)
        self.stats.edges_accessed += 1
        for obj in self._load_objects(query_edge, self._terms):
            dist = abs(obj.position.offset - self._position.offset)
            if dist <= delta_max:
                queue_object(obj, dist)
                pinned.add(obj.object_id)

        for node_id, dist in seed_distances(network, self._position).items():
            heapq.heappush(node_heap, (dist, node_id))

        tracer = self._tracer
        tracing = tracer.enabled
        round_idx = 0
        round_nodes = 0
        round_edges = self.stats.edges_accessed
        round_emitted = self.stats.objects_emitted
        round_t0 = time.perf_counter() if tracing else 0.0
        watermark = 0.0

        def flush_round(frontier: int) -> None:
            """Record the in-progress expansion round as a span."""
            nonlocal round_idx, round_nodes, round_edges, round_emitted, round_t0
            if round_nodes == 0:
                return
            tracer.add_span(
                "ine.round",
                time.perf_counter() - round_t0,
                start=round_t0,
                round=round_idx,
                frontier=frontier,
                watermark=watermark,
                watermark_fraction=(
                    watermark / delta_max if delta_max > 0 else 0.0
                ),
                nodes_settled=round_nodes,
                edges_visited=self.stats.edges_accessed - round_edges,
                objects_emitted=self.stats.objects_emitted - round_emitted,
            )
            round_idx += 1
            round_nodes = 0
            round_edges = self.stats.edges_accessed
            round_emitted = self.stats.objects_emitted
            round_t0 = time.perf_counter()

        try:
            while node_heap:
                d_n, node_id = heapq.heappop(node_heap)
                if node_id in settled:
                    continue
                # Every queued object with tentative distance <= d_n is
                # final: any improvement would route through a node settled
                # later, at distance >= d_n.
                yield from emit_upto(d_n)
                if d_n > delta_max:
                    # δ_T exceeded δmax: no unvisited node or object can
                    # qualify any more (paper's termination condition).
                    if tracing:
                        watermark = d_n
                        tracer.event(
                            "ine.terminated", reason="delta_max", watermark=d_n
                        )
                    break
                settled.add(node_id)
                self.stats.nodes_accessed += 1
                if tracing:
                    watermark = d_n
                    round_nodes += 1
                    if round_nodes >= TRACE_ROUND_NODES:
                        flush_round(len(node_heap))

                self._expand_node(
                    node_id, d_n, settled, visited_edges, node_heap,
                    edge_objects, pinned, queue_object,
                )

            yield from emit_upto(float("inf"))
        finally:
            if tracing:
                flush_round(len(node_heap))

    def _expand_node(
        self, node_id, d_n, settled, visited_edges, node_heap,
        edge_objects, pinned, queue_object,
    ) -> None:
        """Relax one settled node's incident edges (Alg. 3 lines 9-22)."""
        network = self._network
        query_edge = self._position.edge_id
        for edge_id, other, weight in self._provider.neighbors(node_id):
            if other not in settled:
                heapq.heappush(node_heap, (d_n + weight, other))
            if edge_id == query_edge:
                continue  # pinned objects keep their along-edge distance
            edge = network.edge(edge_id)
            if edge_id not in visited_edges:
                visited_edges.add(edge_id)
                self.stats.edges_accessed += 1
                matches = self._load_objects(edge_id, self._terms)
                if matches:
                    edge_objects[edge_id] = matches
                for obj in matches:
                    offset = (
                        obj.position.offset
                        if node_id == edge.n1
                        else edge.weight - obj.position.offset
                    )
                    queue_object(obj, d_n + offset)
            else:
                # Second end-node settled: relax the edge's objects
                # (Algorithm 3 lines 18-22).
                for obj in edge_objects.get(edge_id, ()):
                    if obj.object_id in pinned:
                        continue
                    offset = (
                        obj.position.offset
                        if node_id == edge.n1
                        else edge.weight - obj.position.offset
                    )
                    queue_object(obj, d_n + offset)

    def run_to_completion(self) -> List[ResultItem]:
        """Materialise the whole stream (plain SK search)."""
        return list(self.run())
