"""Boolean spatial keyword k-nearest-neighbour search.

The paper evaluates the *range* form of the boolean SK query (objects
within ``δmax``), but its INE machinery supports the kNN form directly
— and the surrounding literature (inverted R-tree [23], IR-tree [11])
is phrased in terms of kNN.  This module provides it as a first-class
query: the ``k`` matching objects closest to the query location.

Implementation: the expansion stream already yields matching objects in
non-decreasing network distance, so kNN is "take k and close the
generator"; the search radius grows adaptively when a horizon guess is
given, keeping the expansion bounded on sparse results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from typing import FrozenSet, Iterable, List, Optional

from ..errors import QueryError
from ..index.base import ObjectIndex
from ..network.distance import AdjacencyProvider
from ..network.graph import NetworkPosition, RoadNetwork
from ..obs.tracing import NULL_TRACER
from .ine import INEExpansion
from .queries import QueryStats, ResultItem

__all__ = ["SKkNNQuery", "SKkNNResult", "knn_search"]


@dataclass(frozen=True)
class SKkNNQuery:
    """Find the ``k`` closest objects containing all ``terms``.

    ``horizon`` bounds how far the expansion may ever reach (defaults
    to unbounded via a large radius); ``initial_radius`` seeds the
    adaptive radius doubling.
    """

    position: NetworkPosition
    terms: FrozenSet[str]
    k: int
    horizon: float = 1e9
    initial_radius: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("a kNN query needs at least one keyword")
        if self.k <= 0:
            raise QueryError("k must be positive")
        if self.horizon <= 0:
            raise QueryError("horizon must be positive")

    @classmethod
    def create(
        cls,
        position: NetworkPosition,
        terms: Iterable[str],
        k: int,
        horizon: float = 1e9,
        initial_radius: Optional[float] = None,
    ) -> "SKkNNQuery":
        return cls(position, frozenset(terms), k, horizon, initial_radius)


@dataclass
class SKkNNResult:
    """kNN result: up to ``k`` items ordered by network distance."""

    items: List[ResultItem]
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def kth_distance(self) -> float:
        """Distance of the farthest returned item (inf when empty)."""
        return self.items[-1].distance if self.items else float("inf")


def knn_search(
    provider: AdjacencyProvider,
    network: RoadNetwork,
    index: ObjectIndex,
    query: SKkNNQuery,
    tracer=NULL_TRACER,
    csr=None,
) -> SKkNNResult:
    """kNN over the INE stream with adaptive radius doubling.

    Each round expands with radius ``r``; if fewer than ``k`` matches
    arrive the radius doubles (up to the horizon).  Rounds restart the
    expansion — acceptable because the buffer pool makes re-traversal
    of the inner region cheap, exactly the CCAM locality argument.
    A traced run records one ``knn.round`` span per radius attempt.
    """
    radius = query.initial_radius
    if radius is None:
        # A reasonable first guess: a few average edge weights out.
        total = sum(e.weight for e in network.edges())
        radius = 8.0 * total / max(1, network.num_edges)
    radius = min(radius, query.horizon)

    stats = QueryStats()
    attempt = 0
    while True:
        t0 = time.perf_counter()
        expansion = INEExpansion(
            provider, network, index, query.position, query.terms, radius,
            tracer=tracer, csr=csr,
        )
        items = list(islice(expansion.run(), query.k))
        stats.nodes_accessed += expansion.stats.nodes_accessed
        stats.edges_accessed += expansion.stats.edges_accessed
        if tracer.enabled:
            tracer.add_span(
                "knn.round", time.perf_counter() - t0, start=t0,
                attempt=attempt, radius=radius, matches=len(items),
                nodes_settled=expansion.stats.nodes_accessed,
            )
        if len(items) >= query.k or radius >= query.horizon:
            stats.candidates = len(items)
            return SKkNNResult(items, stats)
        radius = min(radius * 2.0, query.horizon)
        attempt += 1
