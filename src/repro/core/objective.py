"""The bi-criteria max-sum diversification objective (paper §2.1, §4.3).

The supplied text of Equations (2)-(4) is OCR-damaged; DESIGN.md §1
documents the reconstruction used here, which follows the max-sum
diversification of Gollapudi & Sharma and is consistent with every
qualitative statement in the paper:

``rel(u)    = 1 - δ(u, q) / δmax``              (relevance, in [0, 1])
``div(u, v) = δ(u, v) / (2 δmax)``              (diversity, in [0, 1])
``θ(u, v)   = λ (rel(u) + rel(v)) / 2 + (1 - λ) div(u, v)``
``f(S)      = (2 / (k (k-1))) Σ_{u<v} θ(u, v)``

A larger ``λ`` prioritises closeness, which shrinks the pruning bounds
faster as the expansion front ``γ`` advances and enables the early
termination the paper observes in Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

from ..errors import QueryError
from ..nplib import np, require_numpy

__all__ = ["DiversificationObjective", "SCORING_MODES"]

#: How the engine evaluates relevance/diversity scoring: ``"array"``
#: batches whole candidate matrices through numpy (bit-identical
#: arithmetic, same tie-breaking); ``"scalar"`` keeps the historical
#: object-at-a-time loops.
SCORING_MODES = ("array", "scalar")


@dataclass(frozen=True)
class DiversificationObjective:
    """θ / f evaluation and the §4.3 pruning upper bounds."""

    lambda_: float
    delta_max: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.lambda_ <= 1.0:
            raise QueryError("lambda must lie in [0, 1]")
        if self.delta_max <= 0:
            raise QueryError("delta_max must be positive")

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def relevance(self, dist_to_query: float) -> float:
        """``rel(u) = 1 - δ(u, q)/δmax``, clamped to [0, 1]."""
        return max(0.0, min(1.0, 1.0 - dist_to_query / self.delta_max))

    def diversity(self, pair_distance: float) -> float:
        """``div(u, v) = δ(u, v)/(2 δmax)``, clamped to [0, 1].

        The clamp is exact, not a heuristic: two objects within
        ``δmax`` of the query are within ``2 δmax`` of each other by
        the triangle inequality.
        """
        return max(0.0, min(1.0, pair_distance / (2.0 * self.delta_max)))

    def theta(self, dist_u: float, dist_v: float, pair_distance: float) -> float:
        """Diversification distance θ(u, v) of one object pair."""
        rel = (self.relevance(dist_u) + self.relevance(dist_v)) / 2.0
        return self.lambda_ * rel + (1.0 - self.lambda_) * self.diversity(
            pair_distance
        )

    def objective(
        self,
        dists_to_query: Sequence[float],
        pair_distance: Callable[[int, int], float],
    ) -> float:
        """``f(S)`` for a result set given per-object and pairwise distances.

        ``pair_distance(i, j)`` returns ``δ(S[i], S[j])``.  Singleton
        sets score their relevance; empty sets score 0.
        """
        k = len(dists_to_query)
        if k == 0:
            return 0.0
        if k == 1:
            return self.lambda_ * self.relevance(dists_to_query[0])
        total = 0.0
        for i, j in combinations(range(k), 2):
            total += self.theta(
                dists_to_query[i], dists_to_query[j], pair_distance(i, j)
            )
        return 2.0 * total / (k * (k - 1))

    # ------------------------------------------------------------------
    # Vectorized components (array scoring mode)
    # ------------------------------------------------------------------
    # Each *_array method performs the exact same IEEE-754 operations
    # as its scalar twin, in the same order, element-wise — so a theta
    # computed through the matrix path is bit-identical to the scalar
    # one and every downstream comparison (greedy tie-breaking, COM's
    # ub-vs-θ_T decisions) resolves the same way.

    def relevance_array(self, dists_to_query):
        """Vectorized :meth:`relevance` over an array of distances."""
        require_numpy("array scoring")
        return np.clip(1.0 - dists_to_query / self.delta_max, 0.0, 1.0)

    def diversity_array(self, pair_distances):
        """Vectorized :meth:`diversity` over an array of pair distances."""
        require_numpy("array scoring")
        return np.clip(
            pair_distances / (2.0 * self.delta_max), 0.0, 1.0
        )

    def theta_batch(self, dist_u: float, dists_v, pair_distances):
        """θ of one object against a batch: ``θ(u, v_i)`` for all i."""
        rel = (self.relevance(dist_u) + self.relevance_array(dists_v)) / 2.0
        return self.lambda_ * rel + (
            1.0 - self.lambda_
        ) * self.diversity_array(pair_distances)

    def theta_matrix(self, dists_to_query, pair_matrix):
        """The full θ matrix over a candidate pool.

        ``dists_to_query`` is a length-n array of per-object distances,
        ``pair_matrix`` the n×n symmetric pair-distance matrix; returns
        the n×n θ matrix (diagonal included but meaningless — greedy
        only reads the strict upper triangle).
        """
        rel = self.relevance_array(dists_to_query)
        rel_pair = (rel[:, None] + rel[None, :]) / 2.0
        return self.lambda_ * rel_pair + (
            1.0 - self.lambda_
        ) * self.diversity_array(pair_matrix)

    # ------------------------------------------------------------------
    # §4.3 pruning bounds
    # ------------------------------------------------------------------
    def theta_ub_unvisited(self, gamma: float) -> float:
        """Upper bound of θ between any two *unvisited* objects.

        Unvisited objects are at network distance at least ``γ`` from
        the query (objects arrive in distance order) and at most
        ``2 δmax`` from each other.
        """
        rel_ub = self.relevance(gamma)
        return self.lambda_ * rel_ub + (1.0 - self.lambda_)

    def theta_ub_visited(self, dist_o: float, gamma: float) -> float:
        """Upper bound of θ between a visited object and any unvisited one.

        The unvisited side has relevance at most ``rel(γ)``; the pair
        distance is at most ``δ(o, q) + δmax`` (triangle inequality via
        the query, since the unvisited object is within ``δmax``).
        """
        rel = (self.relevance(dist_o) + self.relevance(gamma)) / 2.0
        div_ub = self.diversity(dist_o + self.delta_max)
        return self.lambda_ * rel + (1.0 - self.lambda_) * div_ub
