"""Query and result types of the public API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import QueryError
from ..network.graph import NetworkPosition
from ..network.objects import SpatioTextualObject
from ..storage.iostats import IOSnapshot

__all__ = [
    "SKQuery",
    "DiversifiedSKQuery",
    "ResultItem",
    "QueryStats",
    "SKResult",
    "DiversifiedResult",
]


@dataclass(frozen=True)
class SKQuery:
    """A boolean spatial keyword query on the road network (Def. §2.1).

    Retrieves every object containing *all* of ``terms`` within network
    distance ``delta_max`` of ``position``.
    """

    position: NetworkPosition
    terms: FrozenSet[str]
    delta_max: float

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("an SK query needs at least one keyword")
        if self.delta_max <= 0:
            raise QueryError("delta_max must be positive")

    @classmethod
    def create(
        cls, position: NetworkPosition, terms: Iterable[str], delta_max: float
    ) -> "SKQuery":
        return cls(position, frozenset(terms), delta_max)


@dataclass(frozen=True)
class DiversifiedSKQuery:
    """A diversified SK query: SK constraints plus ``k`` and ``λ``.

    ``lambda_`` weights relevance against spatial diversity in the
    max-sum objective (see :mod:`repro.core.objective`).
    """

    position: NetworkPosition
    terms: FrozenSet[str]
    delta_max: float
    k: int
    lambda_: float = 0.8

    def __post_init__(self) -> None:
        if not self.terms:
            raise QueryError("a diversified SK query needs at least one keyword")
        if self.delta_max <= 0:
            raise QueryError("delta_max must be positive")
        if self.k < 2:
            raise QueryError("k must be at least 2")
        if not 0.0 <= self.lambda_ <= 1.0:
            raise QueryError("lambda must lie in [0, 1]")

    @property
    def sk_query(self) -> SKQuery:
        return SKQuery(self.position, self.terms, self.delta_max)

    @classmethod
    def create(
        cls,
        position: NetworkPosition,
        terms: Iterable[str],
        delta_max: float,
        k: int,
        lambda_: float = 0.8,
    ) -> "DiversifiedSKQuery":
        return cls(position, frozenset(terms), delta_max, k, lambda_)


@dataclass(frozen=True)
class ResultItem:
    """One retrieved object with its network distance from the query."""

    object: SpatioTextualObject
    distance: float


@dataclass
class QueryStats:
    """Measurements of one query execution.

    All counters are *per-query deltas*, even when the underlying
    machinery (pairwise computer, distance cache, buffer pool) is
    shared across queries.  ``stage_seconds`` maps stage names
    (``expansion``, ``object_loading``, ``signature``,
    ``pairwise_dijkstra``, ``maintenance``, ``finalise``, ...) to wall
    seconds; stages may nest, so they need not sum to ``wall_seconds``.
    """

    wall_seconds: float = 0.0
    nodes_accessed: int = 0
    edges_accessed: int = 0
    objects_loaded: int = 0
    false_hit_objects: int = 0
    candidates: int = 0
    pairwise_dijkstras: int = 0
    theta_evaluations: int = 0
    expansion_terminated_early: bool = False
    io: Optional[IOSnapshot] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    distance_cache_hits: int = 0
    distance_cache_misses: int = 0
    distance_cache_evictions: int = 0
    buffer_evictions: int = 0
    distance_backend: str = "dijkstra"
    backend_queries: int = 0
    backend_settled_nodes: int = 0
    backend_bucket_hits: int = 0
    #: Data epoch the query executed against (``Database.data_version``
    #: pinned at context entry); 0 on a never-updated database.
    epoch: int = 0
    #: Whether the answer was served from the semantic result cache.
    result_cache_hit: bool = False

    @property
    def physical_reads(self) -> int:
        return self.io.physical_reads if self.io else 0


@dataclass
class SKResult:
    """Result of Algorithm 3: matching objects ordered by distance."""

    items: List[ResultItem]
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def object_ids(self) -> Tuple[int, ...]:
        return tuple(item.object.object_id for item in self.items)


@dataclass
class DiversifiedResult:
    """Result of a diversified SK search (SEQ or COM)."""

    items: List[ResultItem]
    objective_value: float
    method: str
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def object_ids(self) -> Tuple[int, ...]:
        return tuple(item.object.object_id for item in self.items)
