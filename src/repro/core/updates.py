"""Update journal: the ordered history of dynamic changes.

Every committed update — object insert, object delete, edge reweight —
appends one :class:`UpdateRecord` stamped with the ``data_version`` the
database advanced to.  Consumers replay the suffix they have not seen:

* the semantic result cache validates an entry by checking whether any
  record since the entry's epoch is *relevant* to its query;
* the incremental diversified top-k maintainer folds the suffix into
  its candidate pool instead of re-running search;
* observability gauges report per-kind totals.

The journal is append-only and thread-safe for readers; appends happen
under the database's update path, which is single-writer by contract
(concurrent structural mutation of the network/store is unsound — see
DESIGN.md "Dynamic updates").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from ..network.graph import NetworkPosition
from ..spatial.geometry import Point

__all__ = ["UpdateRecord", "UpdateJournal", "UPDATE_KINDS"]

UPDATE_KINDS = ("insert", "delete", "edge_weight")


@dataclass(frozen=True)
class UpdateRecord:
    """One committed update, stamped with its post-commit epoch."""

    epoch: int
    kind: str  # one of UPDATE_KINDS
    edge_id: int
    #: Keywords of the inserted/deleted object; empty for edge_weight.
    terms: FrozenSet[str] = frozenset()
    #: Object position for insert/delete (post-commit coordinates).
    position: Optional[NetworkPosition] = None
    #: Geometric point of the object for insert/delete.  Stored because
    #: ``position`` is in weight units: a later edge reweight rescales
    #: the live coordinate system, after which the old offset no longer
    #: resolves — the point is what region tests need anyway.
    point: Optional[Point] = None
    #: Object id for insert/delete.
    object_id: Optional[int] = None
    #: New edge weight for edge_weight records.
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in UPDATE_KINDS:
            raise ValueError(
                f"unknown update kind {self.kind!r}; "
                f"expected one of {UPDATE_KINDS}"
            )


@dataclass
class UpdateJournal:
    """Append-only, thread-safe history of :class:`UpdateRecord`."""

    _records: List[UpdateRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def append(self, record: UpdateRecord) -> None:
        with self._lock:
            if self._records and record.epoch <= self._records[-1].epoch:
                raise ValueError(
                    f"journal epochs must be strictly increasing "
                    f"({record.epoch} after {self._records[-1].epoch})"
                )
            self._records.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def since(self, epoch: int) -> List[UpdateRecord]:
        """All records with ``record.epoch > epoch``, oldest first.

        Epochs are strictly increasing, so a binary search would do;
        journals stay short in this simulation and a slice off the
        scanned tail keeps the code obvious.
        """
        with self._lock:
            i = len(self._records)
            while i > 0 and self._records[i - 1].epoch > epoch:
                i -= 1
            return self._records[i:]

    def counts(self) -> Dict[str, int]:
        """Lifetime number of records per update kind (for gauges)."""
        with self._lock:
            out = {kind: 0 for kind in UPDATE_KINDS}
            for record in self._records:
                out[record.kind] += 1
            return out
