"""Datasets: synthetic road networks, object generators, Table-2 profiles."""

from .catalog import PROFILES, DatasetProfile, build_dataset, build_network
from .generator import populate_objects, random_positions
from .io import load_cnode_cedge, load_dataset, save_dataset
from .synthetic import connect_components, grid_network, random_planar_network

__all__ = [
    "PROFILES",
    "DatasetProfile",
    "build_dataset",
    "build_network",
    "populate_objects",
    "load_cnode_cedge",
    "load_dataset",
    "save_dataset",
    "random_positions",
    "connect_components",
    "grid_network",
    "random_planar_network",
]
