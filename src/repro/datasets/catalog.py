"""Dataset profiles mirroring the paper's Table 2 at laptop scale.

The paper's datasets (NA, SF, TW, SYN) come from real sources we cannot
redistribute; these profiles rebuild their *shape* — network family and
density, objects-per-edge ratio, vocabulary size, keywords per object,
skew — at roughly 1/100 scale (DESIGN.md §2).  Each profile is fully
deterministic given its seed, and every knob can be overridden to drive
the Fig. 16 parameter sweeps.

=========  ==========================  ==========================
profile    paper original              reproduced shape
=========  ==========================  ==========================
``NA``     175 812 nodes / 179 178     sparse perturbed grid,
           edges; 2.2 M objects;       ~12 objects/edge, small
           208 K terms; 6.8 kw/obj     keyword sets
``SF``     174 955 / 223 000; 2.25 M   denser planar graph, rich
           objects; 81 K terms; 26     keyword sets (26 → 16
           kw/obj                      scaled), small vocabulary
``TW``     321 270 / 800 172; 11.5 M   dense kNN graph, large
           tweets; 1.6 M terms; 10.8   vocabulary, ~14 obj/edge
``SYN``    17 K / 223 K; 1 M objects;  planar graph, Zipf z=1.1,
           100 K terms; 15 kw/obj      all knobs sweepable
=========  ==========================  ==========================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..core.database import Database
from ..errors import DatasetError
from ..network.graph import RoadNetwork
from .generator import populate_objects
from .synthetic import grid_network, random_planar_network

__all__ = ["DatasetProfile", "PROFILES", "build_dataset", "build_network"]


@dataclass(frozen=True)
class DatasetProfile:
    """A reproducible dataset recipe."""

    name: str
    network_kind: str  # "grid" | "planar"
    num_nodes: int
    neighbours: int  # planar only: kNN degree
    num_objects: int
    vocabulary_size: int
    avg_keywords: float
    zipf_z: float = 1.1
    num_topics: Optional[int] = None  # default: one topic per ~40 terms
    seed: int = 11

    def scaled(self, factor: float) -> "DatasetProfile":
        """Scale node and object counts by ``factor`` (≥ 0.05)."""
        if factor <= 0:
            raise DatasetError("scale factor must be positive")
        return replace(
            self,
            num_nodes=max(16, int(self.num_nodes * factor)),
            num_objects=max(32, int(self.num_objects * factor)),
            vocabulary_size=max(16, int(self.vocabulary_size * math.sqrt(factor))),
        )


#: Laptop-scale renditions of the paper's four datasets.
PROFILES: Dict[str, DatasetProfile] = {
    "NA": DatasetProfile(
        name="NA",
        network_kind="grid",
        num_nodes=4096,
        neighbours=0,
        num_objects=24000,
        vocabulary_size=1500,
        avg_keywords=6.8,
        zipf_z=1.05,
        num_topics=60,
        seed=11,
    ),
    "SF": DatasetProfile(
        name="SF",
        network_kind="planar",
        num_nodes=3000,
        neighbours=3,
        num_objects=28000,
        vocabulary_size=700,
        avg_keywords=16,
        zipf_z=1.0,
        num_topics=16,
        seed=23,
    ),
    "TW": DatasetProfile(
        name="TW",
        network_kind="planar",
        num_nodes=4000,
        neighbours=5,
        num_objects=36000,
        vocabulary_size=3000,
        avg_keywords=10.8,
        zipf_z=1.0,
        num_topics=120,
        seed=37,
    ),
    "SYN": DatasetProfile(
        name="SYN",
        network_kind="planar",
        num_nodes=2500,
        neighbours=3,
        num_objects=20000,
        vocabulary_size=1000,
        avg_keywords=15,
        zipf_z=1.1,
        num_topics=40,
        seed=53,
    ),
}


def build_network(profile: DatasetProfile) -> RoadNetwork:
    """Build the road network of a profile."""
    if profile.network_kind == "grid":
        side = max(2, int(round(math.sqrt(profile.num_nodes))))
        return grid_network(side, side, seed=profile.seed)
    if profile.network_kind == "planar":
        return random_planar_network(
            profile.num_nodes, neighbours=profile.neighbours, seed=profile.seed
        )
    raise DatasetError(f"unknown network kind {profile.network_kind!r}")


def build_dataset(
    profile_or_name,
    scale: float = 1.0,
    buffer_pages: Optional[int] = None,
    **overrides,
) -> Database:
    """Build a frozen :class:`Database` for a profile (or profile name).

    ``overrides`` replace profile fields (e.g. ``num_objects=2000`` or
    ``zipf_z=1.3`` for the Fig. 16 sweeps); ``scale`` shrinks or grows
    the whole dataset proportionally.
    """
    if isinstance(profile_or_name, str):
        try:
            profile = PROFILES[profile_or_name.upper()]
        except KeyError:
            raise DatasetError(
                f"unknown profile {profile_or_name!r}; expected one of "
                f"{sorted(PROFILES)}"
            ) from None
    else:
        profile = profile_or_name
    if scale != 1.0:
        profile = profile.scaled(scale)
    if overrides:
        # Overrides are authoritative: applied after scaling.
        profile = replace(profile, **overrides)

    network = build_network(profile)
    db = Database(network, buffer_pages=buffer_pages)
    populate_objects(
        db.store,
        num_objects=profile.num_objects,
        vocabulary_size=profile.vocabulary_size,
        avg_keywords=profile.avg_keywords,
        zipf_z=profile.zipf_z,
        seed=profile.seed,
        num_topics=profile.num_topics,
    )
    db.freeze()
    return db
