"""Spatio-textual object generation.

Objects are placed uniformly along the network (edges weighted by
length, offsets uniform) and tagged with Zipf-distributed keyword sets,
mirroring the paper's synthetic dataset construction: "their
corresponding keywords are obtained from a vocabulary whose term
frequencies follow the Zipf distribution".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import DatasetError
from ..network.graph import NetworkPosition, RoadNetwork
from ..network.objects import ObjectStore
from ..text.vocabulary import make_term_names
from ..text.zipf import ZipfSampler

__all__ = ["populate_objects", "random_positions"]


def random_positions(
    network: RoadNetwork, count: int, rng: np.random.Generator
) -> List[NetworkPosition]:
    """``count`` positions uniform along the network's total length."""
    edges = list(network.edges())
    if not edges:
        raise DatasetError("network has no edges")
    lengths = np.array([e.length for e in edges], dtype=np.float64)
    probs = lengths / lengths.sum()
    choices = rng.choice(len(edges), size=count, p=probs)
    fractions = rng.uniform(0.0, 1.0, size=count)
    positions = []
    for edge_idx, t in zip(choices, fractions):
        edge = edges[int(edge_idx)]
        positions.append(NetworkPosition(edge.edge_id, edge.weight * float(t)))
    return positions


def populate_objects(
    store: ObjectStore,
    num_objects: int,
    vocabulary_size: int,
    avg_keywords: float,
    zipf_z: float = 1.1,
    seed: int = 0,
    terms: Optional[Sequence[str]] = None,
    num_topics: Optional[int] = None,
) -> None:
    """Fill an object store with synthetic spatio-textual objects.

    Keyword-set sizes are Poisson-distributed around ``avg_keywords``
    (minimum 1); terms are drawn without replacement under a Zipf law
    with skew ``zipf_z``.

    Keywords are *topic-structured*: the vocabulary is interleaved into
    ``num_topics`` pools (defaults to one pool per ~40 terms) and every
    object draws all its keywords from one Zipf-chosen pool.  Real
    spatio-textual corpora (business directories, tweets) exhibit this
    co-occurrence — "pancake" and "lobster" appear together on menus —
    and without it multi-keyword AND queries would be unsatisfiable in
    synthetic data.  ``num_topics=1`` disables the correlation.
    """
    if num_objects <= 0:
        raise DatasetError("num_objects must be positive")
    if avg_keywords < 1:
        raise DatasetError("avg_keywords must be at least 1")
    rng = np.random.default_rng(seed)
    term_names = list(terms) if terms is not None else make_term_names(vocabulary_size)
    if num_topics is None:
        num_topics = max(1, len(term_names) // 40)
    num_topics = max(1, min(num_topics, len(term_names)))

    # Interleave ranks across pools so every topic mixes frequent and
    # rare terms and the global frequency distribution stays Zipf-like.
    pools = [term_names[t::num_topics] for t in range(num_topics)]
    samplers = [
        ZipfSampler(pool, z=zipf_z, seed=seed + 1 + t)
        for t, pool in enumerate(pools)
    ]
    topic_probs = np.arange(1, num_topics + 1, dtype=np.float64) ** (-0.8)
    topic_probs /= topic_probs.sum()

    positions = random_positions(store.network, num_objects, rng)
    sizes = np.maximum(1, rng.poisson(avg_keywords, size=num_objects))
    topics = rng.choice(num_topics, size=num_objects, p=topic_probs)
    for position, size, topic in zip(positions, sizes, topics):
        store.add(position, samplers[int(topic)].sample_distinct(int(size)))
    store.freeze()
