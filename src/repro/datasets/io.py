"""Dataset persistence and real-data loaders.

Two formats are supported:

* **cnode/cedge** — the plain-text road-network format of the spatial
  dataset collections the paper downloads from (Li et al.'s "Real
  Datasets for Spatial Databases"): one ``node_id x y`` line per node
  in the ``.cnode`` file and one ``edge_id n1 n2 distance`` line per
  edge in the ``.cedge`` file.  Loading a real network this way plugs
  actual road graphs (North America, San Francisco, ...) into the
  library unchanged.
* **repro JSON** — a self-contained snapshot of a network plus its
  objects, for saving generated datasets and reloading them exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..errors import DatasetError
from ..network.graph import NetworkPosition, RoadNetwork
from ..network.objects import ObjectStore

__all__ = [
    "load_cnode_cedge",
    "save_dataset",
    "load_dataset",
]

PathLike = Union[str, Path]


def load_cnode_cedge(
    cnode_path: PathLike,
    cedge_path: PathLike,
    max_nodes: Optional[int] = None,
) -> RoadNetwork:
    """Load a road network from ``.cnode`` / ``.cedge`` files.

    ``max_nodes`` truncates the node set (edges referencing dropped
    nodes are skipped), which is how a laptop-scale slice of a
    continental network is obtained.  Parallel edges and self-loops in
    the raw data are skipped with a count available to the caller via
    the returned network's statistics.
    """
    network = RoadNetwork()
    kept = set()
    with open(cnode_path) as f:
        for line in f:
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 3:
                raise DatasetError(f"malformed cnode line: {line!r}")
            node_id, x, y = int(parts[0]), float(parts[1]), float(parts[2])
            if max_nodes is not None and len(kept) >= max_nodes:
                break
            network.add_node(node_id, x, y)
            kept.add(node_id)
    with open(cedge_path) as f:
        for line in f:
            parts = line.split()
            if not parts:
                continue
            if len(parts) < 4:
                raise DatasetError(f"malformed cedge line: {line!r}")
            n1, n2 = int(parts[1]), int(parts[2])
            dist = float(parts[3])
            if n1 not in kept or n2 not in kept or n1 == n2 or dist <= 0:
                continue
            if network.edge_between(n1, n2) is not None:
                continue  # parallel edge in the raw data
            network.add_edge(n1, n2, weight=dist, length=dist)
    if network.num_edges == 0:
        raise DatasetError("no usable edges loaded")
    return network


def save_dataset(store: ObjectStore, path: PathLike) -> None:
    """Write a network + object snapshot as self-contained JSON."""
    network = store.network
    payload = {
        "format": "repro-dataset",
        "version": 1,
        "nodes": [
            [node.node_id, node.point.x, node.point.y]
            for node in network.nodes()
        ],
        "edges": [
            [edge.n1, edge.n2, edge.weight, edge.length]
            for edge in sorted(network.edges(), key=lambda e: e.edge_id)
        ],
        "objects": [
            [
                obj.position.edge_id,
                obj.position.offset,
                sorted(obj.keywords),
            ]
            for obj in store
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_dataset(path: PathLike) -> ObjectStore:
    """Load a snapshot written by :func:`save_dataset`.

    Edge ids are assigned in file order, so positions referencing them
    round-trip exactly.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetError(f"cannot read dataset {path}: {exc}") from exc
    if payload.get("format") != "repro-dataset":
        raise DatasetError(f"{path} is not a repro dataset snapshot")

    network = RoadNetwork()
    for node_id, x, y in payload["nodes"]:
        network.add_node(int(node_id), float(x), float(y))
    for n1, n2, weight, length in payload["edges"]:
        network.add_edge(int(n1), int(n2), weight=float(weight),
                         length=float(length))
    store = ObjectStore(network)
    for edge_id, offset, keywords in payload["objects"]:
        store.add(NetworkPosition(int(edge_id), float(offset)), keywords)
    store.freeze()
    return store
