"""Synthetic road-network generators.

The paper's road networks (North America, San Francisco, Bay Area) are
real; we substitute deterministic synthetic networks that preserve the
properties the algorithms are sensitive to — node degree, edge-length
scale, planarity — at a configurable size (see DESIGN.md §2,
Substitutions).  Two families are provided:

* :func:`grid_network` — a perturbed grid, sparse and nearly planar,
  resembling the North-America road graph (edge/node ratio ≈ 1);
* :func:`random_planar_network` — a k-nearest-neighbour graph over
  random points, denser, resembling urban networks such as the Bay
  Area graph (edge/node ratio ≈ 2.5).

All coordinates live in the paper's ``[0, 10000]^2`` space and all
randomness is seeded.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..errors import DatasetError
from ..network.graph import RoadNetwork

__all__ = ["grid_network", "random_planar_network", "connect_components"]

EXTENT = 10000.0


def grid_network(
    rows: int,
    cols: int,
    jitter: float = 0.25,
    drop_prob: float = 0.08,
    seed: int = 0,
    extent: float = EXTENT,
) -> RoadNetwork:
    """A jittered grid network with some edges removed.

    ``jitter`` perturbs node positions by that fraction of the cell
    size; ``drop_prob`` removes that fraction of the non-tree edges
    (connectivity is always preserved: a spanning structure is kept).
    """
    if rows < 2 or cols < 2:
        raise DatasetError("grid needs at least 2x2 nodes")
    rng = np.random.default_rng(seed)
    network = RoadNetwork()
    dx = extent / (cols - 1)
    dy = extent / (rows - 1)
    for r in range(rows):
        for c in range(cols):
            jx = rng.uniform(-jitter, jitter) * dx if 0 < c < cols - 1 else 0.0
            jy = rng.uniform(-jitter, jitter) * dy if 0 < r < rows - 1 else 0.0
            network.add_node(r * cols + c, c * dx + jx, r * dy + jy)

    # Horizontal tree backbone plus the first column: always kept.
    for r in range(rows):
        for c in range(cols - 1):
            network.add_edge(r * cols + c, r * cols + c + 1)
    for r in range(rows - 1):
        network.add_edge(r * cols, (r + 1) * cols)
    # Remaining vertical edges are dropped independently.
    for r in range(rows - 1):
        for c in range(1, cols):
            if rng.random() >= drop_prob:
                network.add_edge(r * cols + c, (r + 1) * cols + c)
    return network


def random_planar_network(
    num_nodes: int,
    neighbours: int = 3,
    seed: int = 0,
    extent: float = EXTENT,
) -> RoadNetwork:
    """A k-nearest-neighbour graph over uniform random points.

    Every node is linked to its ``neighbours`` nearest points (edges
    deduplicated), then disconnected components are stitched together
    with their closest cross pairs, so the result is connected with an
    edge/node ratio of roughly ``neighbours`` ÷ 2 + ε.
    """
    if num_nodes < 2:
        raise DatasetError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, extent, size=(num_nodes, 2))
    network = RoadNetwork()
    for i, (x, y) in enumerate(points):
        network.add_node(i, float(x), float(y))

    tree = cKDTree(points)
    k = min(neighbours + 1, num_nodes)
    _dists, idx = tree.query(points, k=k)
    seen = set()
    for i in range(num_nodes):
        for j in np.atleast_1d(idx[i])[1:]:
            j = int(j)
            a, b = (i, j) if i < j else (j, i)
            if a != b and (a, b) not in seen:
                seen.add((a, b))
                network.add_edge(a, b)
    connect_components(network, points)
    return network


def connect_components(network: RoadNetwork, points: np.ndarray) -> None:
    """Stitch disconnected components with closest-pair bridge edges."""
    parent = list(range(network.num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for edge in network.edges():
        union(edge.n1, edge.n2)

    components: dict = {}
    for i in range(network.num_nodes):
        components.setdefault(find(i), []).append(i)
    comps = list(components.values())
    while len(comps) > 1:
        base = comps[0]
        other = comps[1]
        best: Optional[Tuple[float, int, int]] = None
        base_tree = cKDTree(points[base])
        dists, nearest = base_tree.query(points[other], k=1)
        pick = int(np.argmin(dists))
        a = other[pick]
        b = base[int(np.atleast_1d(nearest)[pick])]
        if network.edge_between(a, b) is None:
            network.add_edge(a, b)
        union(a, b)
        comps = [base + other] + comps[2:]
