"""Plan-then-execute query engine.

Three layers, used in order:

1. **Planner** (:mod:`repro.engine.plan`) — ``plan_sk`` /
   ``plan_knn`` / ``plan_diversified`` turn a query + index into an
   immutable :class:`QueryPlan` with cost hints and an algorithm
   choice.
2. **Context** (:mod:`repro.engine.context`) —
   :class:`ExecutionContext` owns all per-query mutable state, keeping
   the shared index/storage structures read-only during queries.
3. **Executor** (:mod:`repro.engine.executor`) —
   :class:`QueryEngine` runs plans, one at a time or concurrently via
   ``execute_many(plans, workers=N)``.

The :class:`~repro.core.database.Database` facade wraps all three; use
this package directly for planner introspection or concurrent batches.
"""

from .context import ExecutionContext
from .executor import QueryEngine
from .plan import CostHints, QueryPlan, plan_diversified, plan_knn, plan_sk

__all__ = [
    "CostHints",
    "ExecutionContext",
    "QueryEngine",
    "QueryPlan",
    "plan_diversified",
    "plan_knn",
    "plan_sk",
]
