"""Per-execution state: everything one running query mutates.

Historically each query diffed *shared* lifetime counters (index load
counters, the disk's I/O totals, the buffer pool's eviction count)
against a snapshot taken at query start.  That breaks the moment two
queries run concurrently — both diffs see each other's work.

:class:`ExecutionContext` inverts the ownership: the context owns a
fresh :class:`~repro.index.base.LoadCounters`, a per-thread I/O scope
and a per-thread buffer-eviction scope for the duration of one query,
and the shared structures *route* this thread's updates into them
(:meth:`ObjectIndex.begin_execution`, :meth:`IOStats.scoped`,
:meth:`BufferPool.eviction_scope`).  Index and storage objects are
never mutated by a query beyond those thread-local slots, which is
what makes ``QueryEngine.execute_many(workers=N)`` sound.

On exit the per-execution counters are folded into the lifetime totals
under their owners' locks, so ``index.lifetime_counters`` and
``disk.stats`` stay exact across any interleaving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..index.base import LoadCounters
from ..obs.tracing import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..core.database import Database
    from ..core.queries import QueryStats
    from .plan import QueryPlan

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """All mutable state of one query execution, as a context manager.

    Inside the ``with`` block the plan's index routes its counter
    updates and tracer lookups to this context (on this thread only),
    the disk's I/O statistics collect into :attr:`io_scope` and buffer
    evictions triggered by this thread into :attr:`buffer_scope`.
    Call :meth:`finalise` on the query's stats *before* leaving the
    block; afterwards every number it filled in is a true per-query
    value, no shared-counter diffing involved.
    """

    def __init__(
        self,
        db: "Database",
        plan: "QueryPlan",
        tracer=None,
    ) -> None:
        self.db = db
        self.plan = plan
        #: The collector this context publishes its finished trace to
        #: (``None`` when the tracer was injected or tracing is off).
        self._collector = None
        if tracer is not None:
            # Explicit override (EXPLAIN): the caller owns the tracer
            # and reads the tree off it directly.
            self.tracer = tracer
        else:
            collector = getattr(db, "trace_collector", None)
            if collector is not None:
                # Tracing is on: this query gets its *own* bounded span
                # tree on the collector's shared timeline.  Per-query
                # ownership is what makes execute_many(workers=N) with
                # tracing sound — tracer span stacks never cross
                # threads.
                self.tracer = collector.new_tracer()
                self._collector = collector
            else:
                self.tracer = db.tracer if db.tracer is not None else NULL_TRACER
        #: Data epoch this execution is pinned to, sampled once at
        #: context creation.  The pairwise computer passes it to every
        #: shared distance-cache access, so a query that started before
        #: an edge-weight update can neither read post-update maps nor
        #: write its pre-update maps back after the invalidation.
        self.epoch = getattr(db, "data_version", 0)
        #: Fresh per-execution index load counters; merged into the
        #: index's lifetime counters when the context closes.
        self.counters = LoadCounters()
        self.io_scope = None
        self.buffer_scope = None
        self._io_cm = None
        self._buffer_cm = None

    def __enter__(self) -> "ExecutionContext":
        self.plan.index.begin_execution(self.counters, self.tracer)
        try:
            self._io_cm = self.db.disk.stats.scoped()
            self.io_scope = self._io_cm.__enter__()
            self._buffer_cm = self.db.disk.buffer.eviction_scope()
            self.buffer_scope = self._buffer_cm.__enter__()
        except BaseException:
            self.plan.index.end_execution()
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if self._buffer_cm is not None:
                self._buffer_cm.__exit__(exc_type, exc, tb)
        finally:
            try:
                if self._io_cm is not None:
                    self._io_cm.__exit__(exc_type, exc, tb)
            finally:
                try:
                    self.plan.index.end_execution()
                finally:
                    if self._collector is not None:
                        self._collector.collect(self.tracer)
        return False

    def finalise(self, stats: "QueryStats") -> None:
        """Fill a query's stats from this context's collected state.

        Must run inside the ``with`` block (the I/O scope is still
        live).  Sets the I/O snapshot, buffer evictions, index-side
        object-loading counters and the ``signature`` stage time —
        everything that used to come from shared-counter diffs.
        """
        if self.io_scope is None:
            raise RuntimeError("finalise() outside the execution context")
        stats.io = self.io_scope.snapshot()
        stats.epoch = self.epoch
        stats.buffer_evictions = self.buffer_scope.evictions
        stats.objects_loaded = self.counters.objects_loaded
        stats.false_hit_objects = self.counters.false_hit_objects
        stats.stage_seconds["signature"] = self.counters.signature_seconds

    def trace_signature_summary(self, results: int) -> None:
        """Attach the per-query ``signature.filter`` summary span.

        Reads this execution's own counters directly — under the
        context they *are* the per-query deltas — split by index
        family via the ``partition`` attribute, which is what makes
        the SIF vs SIF-P comparison visible per query.
        """
        c = self.counters
        self.tracer.add_span(
            "signature.filter",
            c.signature_seconds,
            partition=self.plan.index.name,
            edges_pruned=c.edges_pruned_by_signature,
            edges_probed=c.edges_probed,
            tests_run=c.signature_tests_run,
            tests_pruned=c.signature_tests_pruned,
            candidates_tested=c.objects_loaded,
            false_positives=c.false_hit_objects,
            results=results,
        )
