"""The query executor: runs :class:`~repro.engine.plan.QueryPlan`\\ s.

:class:`QueryEngine` is the single place query algorithms are invoked.
``execute`` opens an :class:`~repro.engine.context.ExecutionContext`
(per-query counters, I/O scope, per-query tracer), dispatches on the
plan's ``kind``/``algorithm``, finalises the stats, records them into
the database's metrics registry under the plan's label and offers the
finished query to the database's slow-query log
(:mod:`repro.obs.slowlog`) when one is installed.

``execute_many`` runs a batch — serially, or on a thread pool.  The
concurrency contract:

* Index structures are read-only during queries; per-query counters
  live in thread-local execution slots (``ObjectIndex.begin_execution``).
* The disk layer (buffer pool, I/O stats) and the shared
  :class:`~repro.network.distance.DistanceCache` are lock-protected;
  each query builds its *own* ``PairwiseDistanceComputer`` on top of
  the shared cache.
* Tracing is concurrency-native: each execution context draws a fresh
  per-query :class:`~repro.obs.tracing.Tracer` from the database's
  :class:`~repro.obs.tracing.TraceCollector` and publishes the
  finished span tree back, so a traced ``execute_many(workers=N)``
  yields one independent tree per query (merged into a single Chrome
  trace with per-worker lanes by :mod:`repro.obs.export`).

CPython's GIL serialises the pure-Python compute, so wall-clock
speedup from ``workers > 1`` comes from overlapping *waits*.  The
simulated disk charges ``physical_reads × io_latency`` arithmetically;
``io_wait_latency`` makes that charge real — the engine sleeps it off
after each query (releasing the GIL), which is the disk-resident
deployment the paper models.  Concurrent workers overlap those stalls
exactly as real outstanding I/O would.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, List, Optional

from ..core.diversified_search import com_search, seq_search
from ..core.ine import INEExpansion
from ..core.knn import knn_search
from ..core.queries import QueryStats, SKResult
from ..errors import QueryError
from ..network.distance import PairwiseDistanceComputer
from ..obs.profiler import executing_plan
from .context import ExecutionContext

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..core.database import Database
    from .plan import QueryPlan

__all__ = ["QueryEngine"]


class QueryEngine:
    """Executes query plans against one database.

    ``io_wait_latency`` (seconds per physical page read, default 0:
    disabled) turns the simulated disk's arithmetic I/O charge into a
    real per-query stall, served *after* the compute with the GIL
    released — see the module docstring.  The sleep is excluded from
    ``stats.wall_seconds`` (which keeps measuring compute) but is part
    of the batch wall clock that ``execute_many`` callers observe.
    """

    def __init__(
        self, db: "Database", io_wait_latency: float = 0.0
    ) -> None:
        if io_wait_latency < 0:
            raise ValueError("io_wait_latency must be non-negative")
        self.db = db
        self.io_wait_latency = io_wait_latency

    # ------------------------------------------------------------------
    # Single-plan execution
    # ------------------------------------------------------------------
    def execute(self, plan: "QueryPlan", tracer=None):
        """Run one plan; returns the kind-specific result object.

        ``tracer`` overrides the per-query tracer for this execution
        only (``repro explain`` uses this to trace one query without
        touching global state).
        """
        ctx = ExecutionContext(self.db, plan, tracer)
        # Publish the plan label for the sampling profiler: stacks
        # sampled on this thread while the query runs are attributed
        # to e.g. "SIF/COM" (two dict writes per query — negligible).
        try:
            with executing_plan(
                f"{plan.label} [{self.db.distance_backend}]"
            ), ctx:
                if plan.kind == "sk":
                    result = self._execute_sk(plan, ctx)
                elif plan.kind == "knn":
                    result = self._execute_knn(plan, ctx)
                elif plan.kind == "diversified":
                    result = self._execute_diversified(plan, ctx)
                else:  # pragma: no cover — QueryPlan validates kind
                    raise QueryError(f"unknown plan kind {plan.kind!r}")
        except Exception:
            self.db._record_query_error(plan.kind, plan.label)
            raise
        kind = plan.kind
        if kind == "diversified":
            kind = f"diversified/{plan.algorithm}"
        self.db._record_query(kind, plan.label, result.stats)
        self._offer_slow_log(plan, result, ctx)
        self._io_wait(result.stats)
        return result

    def _execute_sk(self, plan: "QueryPlan", ctx: ExecutionContext) -> SKResult:
        db = self.db
        query = plan.query
        t = ctx.tracer
        start = time.perf_counter()
        with t.span(
            "query.sk", index=plan.index.name,
            terms=sorted(query.terms), delta_max=query.delta_max,
        ) as root:
            expansion = INEExpansion(
                db.ccam, db.network, plan.index, query.position,
                query.terms, query.delta_max, tracer=t,
            )
            items = expansion.run_to_completion()
            wall = time.perf_counter() - start
            if t.enabled:
                ctx.trace_signature_summary(len(items))
                root.set(
                    candidates=len(items), results=len(items),
                    nodes_accessed=expansion.stats.nodes_accessed,
                    edges_accessed=expansion.stats.edges_accessed,
                    wall_seconds=wall,
                )
        stats = QueryStats(
            wall_seconds=wall,
            nodes_accessed=expansion.stats.nodes_accessed,
            edges_accessed=expansion.stats.edges_accessed,
            candidates=len(items),
            stage_seconds={
                "expansion": wall,
                "object_loading": expansion.stats.load_seconds,
            },
        )
        ctx.finalise(stats)
        return SKResult(items, stats)

    def _execute_knn(self, plan: "QueryPlan", ctx: ExecutionContext):
        db = self.db
        query = plan.query
        t = ctx.tracer
        start = time.perf_counter()
        with t.span(
            "query.knn", index=plan.index.name,
            terms=sorted(query.terms), k=query.k,
        ) as root:
            result = knn_search(
                db.ccam, db.network, plan.index, query, tracer=t
            )
            if t.enabled:
                root.set(results=len(result))
        result.stats.wall_seconds = time.perf_counter() - start
        ctx.finalise(result.stats)
        return result

    def _execute_diversified(self, plan: "QueryPlan", ctx: ExecutionContext):
        db = self.db
        query = plan.query
        t = ctx.tracer
        result_cache = getattr(db, "result_cache", None)
        if result_cache is not None:
            cached = result_cache.get(
                db, plan.index.name, query, plan.algorithm
            )
            if cached is not None:
                # Serve the cached answer under a fresh stats object:
                # this execution did (almost) no work, and the original
                # run's counters must not be double-recorded.
                stats = QueryStats(
                    candidates=len(cached.items),
                    result_cache_hit=True,
                    distance_backend=db.distance_backend,
                )
                ctx.finalise(stats)
                if t.enabled:
                    t.event(
                        "result_cache.hit", index=plan.index.name,
                        method=plan.algorithm.upper(),
                    )
                from ..core.queries import DiversifiedResult

                return DiversifiedResult(
                    items=cached.items,
                    objective_value=cached.objective_value,
                    method=cached.method,
                    stats=stats,
                )
        # One computer per query; the cache behind it may be shared
        # (and is lock-protected), the computer never is.  The context's
        # pinned epoch gates every shared-cache read and write.
        pairwise = PairwiseDistanceComputer(
            db.ccam,
            db.network,
            cutoff=2.0 * query.delta_max * 1.001,
            cache=db.distance_cache,
            tracer=t,
            backend=db.pairwise_backend(),
            epoch=ctx.epoch if db.distance_cache is not None else None,
        )
        with t.span(
            "query.diversified", method=plan.algorithm.upper(),
            index=plan.index.name, terms=sorted(query.terms),
            delta_max=query.delta_max, k=query.k,
            lambda_=query.lambda_, backend=pairwise.backend_name,
        ) as root:
            array_scoring = db.scoring_mode == "array"
            if plan.algorithm == "seq":
                result = seq_search(
                    db.ccam, db.network, plan.index, query,
                    pairwise=pairwise, tracer=t,
                    array_scoring=array_scoring,
                )
            else:
                result = com_search(
                    db.ccam, db.network, plan.index, query,
                    pairwise=pairwise,
                    enable_pruning=plan.enable_pruning,
                    landmarks=plan.landmarks,
                    tracer=t,
                    array_scoring=array_scoring,
                )
            if t.enabled:
                ctx.trace_signature_summary(len(result))
                root.set(
                    candidates=result.stats.candidates,
                    results=len(result),
                    objective_value=result.objective_value,
                    wall_seconds=result.stats.wall_seconds,
                    pairwise_dijkstras=result.stats.pairwise_dijkstras,
                    distance_cache_hits=result.stats.distance_cache_hits,
                    terminated_early=(
                        result.stats.expansion_terminated_early
                    ),
                )
        ctx.finalise(result.stats)
        if result_cache is not None:
            result_cache.put(
                db, plan.index.name, query, plan.algorithm, result
            )
        return result

    def _offer_slow_log(
        self, plan: "QueryPlan", result, ctx: ExecutionContext
    ) -> None:
        """Offer a finished query to the slow-query log, if installed.

        Runs after the execution context closed, so the stats are final
        and the per-query span tree (when tracing is on) is complete.
        """
        log = getattr(self.db, "slow_query_log", None)
        if log is None:
            return
        trace = ctx.tracer.last_trace if ctx.tracer.enabled else None
        log.offer(
            label=plan.label,
            kind=plan.kind,
            algorithm=plan.algorithm,
            stats=result.stats,
            results=len(result),
            trace=trace,
            worker=threading.current_thread().name,
        )

    def _io_wait(self, stats: Optional[QueryStats]) -> None:
        if not self.io_wait_latency or stats is None or stats.io is None:
            return
        stall = stats.io.physical_reads * self.io_wait_latency
        if stall > 0:
            time.sleep(stall)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def execute_many(
        self, plans: Iterable["QueryPlan"], workers: int = 1
    ) -> List:
        """Run a batch of plans; results come back in plan order.

        ``workers > 1`` executes on a thread pool.  Results, metrics
        aggregates and lifetime counters are identical to a serial run
        (per-execution state is context-owned; merges are locked); only
        sink-record *order* may differ.  Tracing composes with
        concurrency: each query draws its own tracer from the
        database's trace collector, so a traced batch yields one span
        tree per query regardless of the worker count.
        """
        if workers < 1:
            raise QueryError("workers must be >= 1")
        plans = list(plans)
        if workers == 1 or len(plans) <= 1:
            return [self.execute(plan) for plan in plans]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        ) as pool:
            return list(pool.map(self.execute, plans))
