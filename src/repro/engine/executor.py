"""The query executor: runs :class:`~repro.engine.plan.QueryPlan`\\ s.

:class:`QueryEngine` is the single place query algorithms are invoked.
``execute`` opens an :class:`~repro.engine.context.ExecutionContext`
(per-query counters, I/O scope, per-query tracer), dispatches on the
plan's ``kind``/``algorithm``, finalises the stats, records them into
the database's metrics registry under the plan's label and offers the
finished query to the database's slow-query log
(:mod:`repro.obs.slowlog`) when one is installed.

``execute_many`` runs a batch — serially, or on a thread pool.  The
concurrency contract:

* Index structures are read-only during queries; per-query counters
  live in thread-local execution slots (``ObjectIndex.begin_execution``).
* The disk layer (buffer pool, I/O stats) and the shared
  :class:`~repro.network.distance.DistanceCache` are lock-protected;
  each query builds its *own* ``PairwiseDistanceComputer`` on top of
  the shared cache.
* Tracing is concurrency-native: each execution context draws a fresh
  per-query :class:`~repro.obs.tracing.Tracer` from the database's
  :class:`~repro.obs.tracing.TraceCollector` and publishes the
  finished span tree back, so a traced ``execute_many(workers=N)``
  yields one independent tree per query (merged into a single Chrome
  trace with per-worker lanes by :mod:`repro.obs.export`).

CPython's GIL serialises the pure-Python compute, so wall-clock
speedup from ``workers > 1`` comes from overlapping *waits*.  The
simulated disk charges ``physical_reads × io_latency`` arithmetically;
``io_wait_latency`` makes that charge real — the engine sleeps it off
after each query (releasing the GIL), which is the disk-resident
deployment the paper models.  Concurrent workers overlap those stalls
exactly as real outstanding I/O would.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, List, Optional

from ..core.diversified_search import com_search, seq_search
from ..core.ine import INEExpansion
from ..core.knn import knn_search
from ..core.queries import QueryStats, SKResult
from ..errors import QueryError
from ..network.distance import DISTANCE_BACKENDS, PairwiseDistanceComputer
from ..obs.profiler import executing_plan
from ..obs.recorder import result_digest
from ..obs.tracing import NULL_TRACER
from .context import ExecutionContext

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..core.database import Database
    from .plan import QueryPlan

__all__ = ["QueryEngine"]


class QueryEngine:
    """Executes query plans against one database.

    ``io_wait_latency`` (seconds per physical page read, default 0:
    disabled) turns the simulated disk's arithmetic I/O charge into a
    real per-query stall, served *after* the compute with the GIL
    released — see the module docstring.  The sleep is excluded from
    ``stats.wall_seconds`` (which keeps measuring compute) but is part
    of the batch wall clock that ``execute_many`` callers observe.
    """

    def __init__(
        self, db: "Database", io_wait_latency: float = 0.0
    ) -> None:
        if io_wait_latency < 0:
            raise ValueError("io_wait_latency must be non-negative")
        self.db = db
        self.io_wait_latency = io_wait_latency
        #: Shadow-execution state (see :meth:`enable_shadow`): ``None``
        #: keeps the zero-overhead path — one attribute read per query.
        self.shadow_backend: Optional[str] = None
        self.shadow_rate: float = 1.0
        self._shadow_lock = threading.Lock()
        self._shadow_counter = 0

    # ------------------------------------------------------------------
    # Shadow execution
    # ------------------------------------------------------------------
    def enable_shadow(self, backend: str, rate: float = 1.0) -> None:
        """Run a sampled fraction of diversified queries twice.

        Each sampled query is re-executed on ``backend`` inside the
        same execution context right after its primary run; the two
        :func:`~repro.obs.recorder.result_digest`\\ s are compared in
        flight.  Matches count ``shadow.matches``; mismatches count
        ``shadow.divergences`` (plus a per-plan-label
        ``shadow.divergence#<label>`` counter) and are filed into the
        slow-query log with both digests.  ``rate`` in ``(0, 1]`` is
        the sampled fraction; sampling is **deterministic in the batch
        index** (query ``i`` is sampled iff
        ``floor((i+1)·rate) > floor(i·rate)``), so a recorded run
        replays with the same shadow decisions regardless of worker
        count or dispatch order.
        """
        backend = backend.lower()
        if backend not in DISTANCE_BACKENDS:
            raise QueryError(
                f"unknown shadow backend {backend!r}; "
                f"expected one of {DISTANCE_BACKENDS}"
            )
        if not 0.0 < rate <= 1.0:
            raise QueryError("shadow rate must be in (0, 1]")
        self.shadow_backend = backend
        self.shadow_rate = rate

    def disable_shadow(self) -> None:
        self.shadow_backend = None

    # ------------------------------------------------------------------
    # Single-plan execution
    # ------------------------------------------------------------------
    def execute(self, plan: "QueryPlan", tracer=None, sequence=None):
        """Run one plan; returns the kind-specific result object.

        ``tracer`` overrides the per-query tracer for this execution
        only (``repro explain`` uses this to trace one query without
        touching global state).

        ``sequence`` is the query's index within its batch, when the
        caller knows it.  It gives the query a dispatch-order-free
        identity: the flight recorder stamps it into the captured
        record (so replay aligns on it) and shadow sampling derives
        its keep/skip decision from it — which is what makes a
        recorded ``--workers N`` run replay with identical shadow
        decisions.  Without one, a locked engine-lifetime counter
        stands in (still deterministic serially).
        """
        ctx = ExecutionContext(self.db, plan, tracer)
        shadow = None
        # Publish the plan label for the sampling profiler: stacks
        # sampled on this thread while the query runs are attributed
        # to e.g. "SIF/COM" (two dict writes per query — negligible).
        try:
            with executing_plan(
                f"{plan.label} [{self.db.distance_backend}]"
            ), ctx:
                if plan.kind == "sk":
                    result = self._execute_sk(plan, ctx)
                elif plan.kind == "knn":
                    result = self._execute_knn(plan, ctx)
                elif plan.kind == "diversified":
                    result = self._execute_diversified(plan, ctx)
                else:  # pragma: no cover — QueryPlan validates kind
                    raise QueryError(f"unknown plan kind {plan.kind!r}")
                if self.shadow_backend is not None and self._shadow_due(
                    plan, result, sequence
                ):
                    shadow = self._execute_shadow(plan, result)
        except Exception:
            self.db._record_query_error(plan.kind, plan.label)
            raise
        kind = plan.kind
        if kind == "diversified":
            kind = f"diversified/{plan.algorithm}"
        self.db._record_query(kind, plan.label, result.stats)
        # The digest is only computed when someone will consume it —
        # the recorder-off, shadow-off path stays digest-free.
        recorder = getattr(self.db, "flight_recorder", None)
        digest = None
        if shadow is not None:
            digest = shadow["primary_digest"]
        elif recorder is not None:
            digest = result_digest(result)
        self._offer_slow_log(plan, result, ctx, digest=digest)
        if recorder is not None:
            recorder.record_query(
                plan, result, digest,
                sequence=sequence,
                worker=threading.current_thread().name,
                shadow=shadow,
            )
        self._io_wait(result.stats)
        return result

    def _shadow_due(self, plan, result, sequence) -> bool:
        """Should this query get a shadow run?  (Cheap; engine hot path.)

        Only diversified queries are shadowed (they are the paths with
        backend-dependent machinery), and result-cache hits are skipped
        — a cached answer exercised no backend, so re-checking it
        audits nothing.
        """
        if plan.kind != "diversified":
            return False
        if result.stats.result_cache_hit:
            return False
        if sequence is None:
            with self._shadow_lock:
                sequence = self._shadow_counter
                self._shadow_counter += 1
        rate = self.shadow_rate
        return int((sequence + 1) * rate) > int(sequence * rate)

    def _shadow_oracle(self, backend: str):
        """The distance oracle a shadow run uses (seam for fault
        injection in tests; ``None`` = bounded Dijkstra)."""
        if backend == "ch":
            return self.db.ch_oracle()
        if backend == "hub":
            return self.db.hub_oracle()
        return None

    def _execute_shadow(self, plan, result):
        """Re-run one diversified query on the shadow backend; compare.

        Runs inside the primary query's execution context (same pinned
        epoch, same data) but with a **private, cache-free** pairwise
        computer — the audit must recompute distances, not read back
        whatever the primary just cached.  The primary's stats are
        already finalised; shadow work only lands on lifetime counters.
        """
        db = self.db
        query = plan.query
        backend_name = self.shadow_backend
        pairwise = PairwiseDistanceComputer(
            db.ccam,
            db.network,
            cutoff=2.0 * query.delta_max * 1.001,
            cache=None,
            tracer=NULL_TRACER,
            backend=self._shadow_oracle(backend_name),
        )
        array_scoring = db.scoring_mode == "array"
        csr = db.frontier_csr()
        if plan.algorithm == "seq":
            shadow_result = seq_search(
                db.ccam, db.network, plan.index, query,
                pairwise=pairwise, tracer=NULL_TRACER,
                array_scoring=array_scoring, csr=csr,
            )
        else:
            shadow_result = com_search(
                db.ccam, db.network, plan.index, query,
                pairwise=pairwise,
                enable_pruning=plan.enable_pruning,
                landmarks=plan.landmarks,
                tracer=NULL_TRACER,
                array_scoring=array_scoring, csr=csr,
            )
        primary_digest = result_digest(result)
        shadow_digest = result_digest(shadow_result)
        match = primary_digest == shadow_digest
        m = db.metrics
        m.inc("shadow.executions")
        if match:
            m.inc("shadow.matches")
        else:
            m.inc("shadow.divergences")
            m.inc(f"shadow.divergence#{plan.label}")
            log = getattr(db, "slow_query_log", None)
            if log is not None:
                log.note({
                    "type": "shadow_divergence",
                    "label": plan.label,
                    "algorithm": plan.algorithm,
                    "primary_backend": db.distance_backend,
                    "shadow_backend": backend_name,
                    "primary_digest": primary_digest,
                    "shadow_digest": shadow_digest,
                    "primary_results": len(result),
                    "shadow_results": len(shadow_result),
                    "worker": threading.current_thread().name,
                })
        return {
            "backend": backend_name,
            "digest": shadow_digest,
            "primary_digest": primary_digest,
            "match": match,
        }

    def _execute_sk(self, plan: "QueryPlan", ctx: ExecutionContext) -> SKResult:
        db = self.db
        query = plan.query
        t = ctx.tracer
        start = time.perf_counter()
        with t.span(
            "query.sk", index=plan.index.name,
            terms=sorted(query.terms), delta_max=query.delta_max,
        ) as root:
            expansion = INEExpansion(
                db.ccam, db.network, plan.index, query.position,
                query.terms, query.delta_max, tracer=t,
                csr=db.frontier_csr(),
            )
            items = expansion.run_to_completion()
            wall = time.perf_counter() - start
            if t.enabled:
                ctx.trace_signature_summary(len(items))
                root.set(
                    candidates=len(items), results=len(items),
                    nodes_accessed=expansion.stats.nodes_accessed,
                    edges_accessed=expansion.stats.edges_accessed,
                    wall_seconds=wall,
                )
        stats = QueryStats(
            wall_seconds=wall,
            nodes_accessed=expansion.stats.nodes_accessed,
            edges_accessed=expansion.stats.edges_accessed,
            candidates=len(items),
            stage_seconds={
                "expansion": wall,
                "object_loading": expansion.stats.load_seconds,
            },
        )
        ctx.finalise(stats)
        return SKResult(items, stats)

    def _execute_knn(self, plan: "QueryPlan", ctx: ExecutionContext):
        db = self.db
        query = plan.query
        t = ctx.tracer
        start = time.perf_counter()
        with t.span(
            "query.knn", index=plan.index.name,
            terms=sorted(query.terms), k=query.k,
        ) as root:
            result = knn_search(
                db.ccam, db.network, plan.index, query, tracer=t,
                csr=db.frontier_csr(),
            )
            if t.enabled:
                root.set(results=len(result))
        result.stats.wall_seconds = time.perf_counter() - start
        ctx.finalise(result.stats)
        return result

    def _execute_diversified(self, plan: "QueryPlan", ctx: ExecutionContext):
        db = self.db
        query = plan.query
        t = ctx.tracer
        result_cache = getattr(db, "result_cache", None)
        if result_cache is not None:
            cached = result_cache.get(
                db, plan.index.name, query, plan.algorithm
            )
            if cached is not None:
                # Serve the cached answer under a fresh stats object:
                # this execution did (almost) no work, and the original
                # run's counters must not be double-recorded.
                stats = QueryStats(
                    candidates=len(cached.items),
                    result_cache_hit=True,
                    distance_backend=db.distance_backend,
                )
                ctx.finalise(stats)
                if t.enabled:
                    t.event(
                        "result_cache.hit", index=plan.index.name,
                        method=plan.algorithm.upper(),
                    )
                from ..core.queries import DiversifiedResult

                return DiversifiedResult(
                    items=cached.items,
                    objective_value=cached.objective_value,
                    method=cached.method,
                    stats=stats,
                )
        # One computer per query; the cache behind it may be shared
        # (and is lock-protected), the computer never is.  The context's
        # pinned epoch gates every shared-cache read and write.
        pairwise = PairwiseDistanceComputer(
            db.ccam,
            db.network,
            cutoff=2.0 * query.delta_max * 1.001,
            cache=db.distance_cache,
            tracer=t,
            backend=db.pairwise_backend(),
            epoch=ctx.epoch if db.distance_cache is not None else None,
        )
        with t.span(
            "query.diversified", method=plan.algorithm.upper(),
            index=plan.index.name, terms=sorted(query.terms),
            delta_max=query.delta_max, k=query.k,
            lambda_=query.lambda_, backend=pairwise.backend_name,
        ) as root:
            array_scoring = db.scoring_mode == "array"
            csr = db.frontier_csr()
            if plan.algorithm == "seq":
                result = seq_search(
                    db.ccam, db.network, plan.index, query,
                    pairwise=pairwise, tracer=t,
                    array_scoring=array_scoring, csr=csr,
                )
            else:
                result = com_search(
                    db.ccam, db.network, plan.index, query,
                    pairwise=pairwise,
                    enable_pruning=plan.enable_pruning,
                    landmarks=plan.landmarks,
                    tracer=t,
                    array_scoring=array_scoring, csr=csr,
                )
            if t.enabled:
                ctx.trace_signature_summary(len(result))
                root.set(
                    candidates=result.stats.candidates,
                    results=len(result),
                    objective_value=result.objective_value,
                    wall_seconds=result.stats.wall_seconds,
                    pairwise_dijkstras=result.stats.pairwise_dijkstras,
                    distance_cache_hits=result.stats.distance_cache_hits,
                    terminated_early=(
                        result.stats.expansion_terminated_early
                    ),
                )
        ctx.finalise(result.stats)
        if result_cache is not None:
            result_cache.put(
                db, plan.index.name, query, plan.algorithm, result
            )
        return result

    def _offer_slow_log(
        self, plan: "QueryPlan", result, ctx: ExecutionContext,
        digest: Optional[str] = None,
    ) -> None:
        """Offer a finished query to the slow-query log, if installed.

        Runs after the execution context closed, so the stats are final
        and the per-query span tree (when tracing is on) is complete.
        """
        log = getattr(self.db, "slow_query_log", None)
        if log is None:
            return
        trace = ctx.tracer.last_trace if ctx.tracer.enabled else None
        log.offer(
            label=plan.label,
            kind=plan.kind,
            algorithm=plan.algorithm,
            stats=result.stats,
            results=len(result),
            trace=trace,
            worker=threading.current_thread().name,
            digest=digest,
        )

    def _io_wait(self, stats: Optional[QueryStats]) -> None:
        if not self.io_wait_latency or stats is None or stats.io is None:
            return
        stall = stats.io.physical_reads * self.io_wait_latency
        if stall > 0:
            time.sleep(stall)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def execute_many(
        self, plans: Iterable["QueryPlan"], workers: int = 1
    ) -> List:
        """Run a batch of plans; results come back in plan order.

        ``workers > 1`` executes on a thread pool.  Results, metrics
        aggregates and lifetime counters are identical to a serial run
        (per-execution state is context-owned; merges are locked); only
        sink-record *order* may differ.  Tracing composes with
        concurrency: each query draws its own tracer from the
        database's trace collector, so a traced batch yields one span
        tree per query regardless of the worker count.
        """
        if workers < 1:
            raise QueryError("workers must be >= 1")
        plans = list(plans)
        # Every plan carries its batch index: flight records and shadow
        # sampling decisions are then functions of the batch position,
        # identical between serial, concurrent and replayed runs.
        if workers == 1 or len(plans) <= 1:
            return [
                self.execute(plan, sequence=i)
                for i, plan in enumerate(plans)
            ]
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        ) as pool:
            return list(pool.map(
                lambda pair: self.execute(pair[1], sequence=pair[0]),
                enumerate(plans),
            ))
