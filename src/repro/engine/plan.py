"""Query planning: turn (query, index) into an executable QueryPlan.

The legacy ``Database`` facade made the algorithm choice ad hoc at each
call site — SK search always ran INE to completion, diversified search
took a ``method=`` string, kNN was its own entry point.  Diversified
top-k engines are plan-then-execute pipelines (Qin et al.); this
module supplies the *plan* half: a small, immutable description of how
one query will run, with cost hints derived from the dataset's
statistics and the query keywords' document frequencies.

A :class:`QueryPlan` is pure metadata — building one touches no index
pages and runs no Dijkstra.  The executor
(:class:`~repro.engine.executor.QueryEngine`) consumes plans;
``repro explain`` renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from ..core.knn import SKkNNQuery
from ..core.queries import DiversifiedSKQuery, SKQuery
from ..errors import QueryError
from ..index.base import ObjectIndex

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..core.database import Database

__all__ = ["CostHints", "QueryPlan", "plan_sk", "plan_knn", "plan_diversified"]

#: Algorithms the executor understands, per query kind.
_ALGORITHMS = {
    "sk": ("ine",),
    "knn": ("ine-knn",),
    "diversified": ("seq", "com"),
}

#: Below this many estimated matching objects SEQ's flat
#: scan-then-greedy beats COM: the candidate set is so small that the
#: core-pair maintenance and pruning bookkeeping cost more than the
#: pairwise distances they avoid.  2·k keeps the threshold query-sized.
_SEQ_CANDIDATE_FACTOR = 2


@dataclass(frozen=True)
class CostHints:
    """Planner-time cost estimates for one query.

    All numbers derive from catalogue statistics
    (:meth:`~repro.core.database.Database.dataset_statistics` and the
    object store's keyword document frequencies) — nothing here reads
    index pages.  ``estimated_matches`` assumes keyword independence:
    ``N · Π(df_t / N)`` over the query terms, the textbook conjunctive
    selectivity estimate; the rarest term bounds it from above.
    """

    num_objects: int
    num_edges: int
    vocabulary_size: int
    #: ``(term, document frequency)`` pairs, rarest first.
    term_frequencies: Tuple[Tuple[str, int], ...]
    #: Estimated objects satisfying the conjunctive keyword constraint.
    estimated_matches: float
    #: ``estimated_matches / num_objects`` (0 on an empty store).
    selectivity: float
    #: How pairwise network distances will be evaluated: ``"dijkstra"``
    #: (bounded Dijkstras), ``"ch"`` (Contraction-Hierarchies oracle)
    #: or ``"hub"`` (2-hop hub labels, batched label-join kernel).
    distance_backend: str = "dijkstra"
    #: How relevance/diversity scoring will be evaluated: ``"array"``
    #: (vectorized θ matrices / bound rows) or ``"scalar"``
    #: (object-at-a-time).  Same answers either way.
    scoring: str = "scalar"
    #: How the INE frontier will be expanded: ``"csr"`` (array heap
    #: over a CSR snapshot) or ``"dict"`` (adjacency-map loop).  Same
    #: settle order, answers and counters either way.
    frontier: str = "dict"
    #: Data epoch the hints were computed at.  A plan built before an
    #: update executes against newer statistics; ``repro explain`` and
    #: slow-query triage can see the skew.
    data_version: int = 0
    #: Journal length at plan time — how dynamic this database has been.
    #: Many recent updates mean catalogue statistics (and any cached
    #: answers) are more likely to be stale.
    recent_updates: int = 0

    @property
    def rarest_term(self) -> Optional[str]:
        return self.term_frequencies[0][0] if self.term_frequencies else None


@dataclass(frozen=True)
class QueryPlan:
    """An executable description of one query.

    ``label`` (index kind + algorithm, e.g. ``"SIF/COM"``) is what the
    metrics layer records per query, so workload snapshots from
    mixed-plan runs stay attributable.
    """

    kind: str  # "sk" | "knn" | "diversified"
    query: object
    index: ObjectIndex = field(repr=False)
    algorithm: str
    enable_pruning: bool = True
    landmarks: object = field(default=None, repr=False)
    hints: Optional[CostHints] = None
    #: Why the planner picked ``algorithm`` (shown by ``repro explain``).
    rationale: str = ""

    def __post_init__(self) -> None:
        allowed = _ALGORITHMS.get(self.kind)
        if allowed is None:
            raise QueryError(f"unknown plan kind {self.kind!r}")
        if self.algorithm not in allowed:
            raise QueryError(
                f"algorithm {self.algorithm!r} invalid for kind "
                f"{self.kind!r}; expected one of {allowed}"
            )

    @property
    def label(self) -> str:
        """Index kind + algorithm, the per-query attribution label."""
        return f"{self.index.name}/{self.algorithm.upper()}"

    def describe(self) -> str:
        """Multi-line rendering for ``repro explain``."""
        q = self.query
        lines = [f"QUERY PLAN  [{self.label}]"]
        lines.append(f"  kind: {self.kind}    algorithm: {self.algorithm}")
        terms = "+".join(sorted(q.terms)) if getattr(q, "terms", None) else "?"
        params = [f"terms={terms}"]
        if isinstance(q, (SKQuery, DiversifiedSKQuery)):
            params.append(f"δmax={q.delta_max:g}")
        if isinstance(q, DiversifiedSKQuery):
            params.append(f"k={q.k}")
            params.append(f"λ={q.lambda_:g}")
        if isinstance(q, SKkNNQuery):
            params.append(f"k={q.k}")
        lines.append("  query: " + "  ".join(params))
        if self.kind == "diversified":
            backend = self.hints.distance_backend if self.hints else "dijkstra"
            scoring = self.hints.scoring if self.hints else "scalar"
            frontier = self.hints.frontier if self.hints else "dict"
            lines.append(
                f"  pruning: {'on' if self.enable_pruning else 'off'}"
                f"    landmarks: "
                f"{'yes' if self.landmarks is not None else 'no'}"
                f"    distance backend: {backend}"
                f"    scoring: {scoring}"
                f"    frontier: {frontier}"
            )
        h = self.hints
        if h is not None:
            freq = ", ".join(f"{t}:{n}" for t, n in h.term_frequencies)
            lines.append(
                f"  cost hints: {h.num_objects} objects, "
                f"df[{freq}], est. matches "
                f"{h.estimated_matches:.1f} "
                f"(selectivity {h.selectivity:.2%})"
            )
            if h.data_version or h.recent_updates:
                lines.append(
                    f"  dynamic: epoch {h.data_version}, "
                    f"{h.recent_updates} journaled updates"
                )
        if self.rationale:
            lines.append(f"  rationale: {self.rationale}")
        return "\n".join(lines)


def _cost_hints(db: "Database", terms) -> CostHints:
    stats = db.dataset_statistics()
    frequencies = db.keyword_frequencies()
    num_objects = int(stats["num_objects"])
    tf = tuple(sorted(
        ((term, frequencies.get(term, 0)) for term in terms),
        key=lambda pair: (pair[1], pair[0]),
    ))
    estimated = float(num_objects)
    for _term, df in tf:
        estimated *= (df / num_objects) if num_objects else 0.0
    return CostHints(
        num_objects=num_objects,
        num_edges=int(stats["num_edges"]),
        vocabulary_size=int(stats["vocabulary_size"]),
        term_frequencies=tf,
        estimated_matches=estimated,
        selectivity=(estimated / num_objects) if num_objects else 0.0,
        distance_backend=getattr(db, "distance_backend", "dijkstra"),
        scoring=getattr(db, "scoring_mode", "scalar"),
        frontier=getattr(db, "frontier_mode", "dict"),
        data_version=getattr(db, "data_version", 0),
        recent_updates=len(getattr(db, "update_journal", ())),
    )


def plan_sk(db: "Database", index: ObjectIndex, query: SKQuery) -> QueryPlan:
    """Plan a boolean SK range search (always INE, Algorithm 3)."""
    db.ensure_frozen()
    return QueryPlan(
        kind="sk",
        query=query,
        index=index,
        algorithm="ine",
        hints=_cost_hints(db, query.terms),
        rationale="SK range search expands the network incrementally (INE)",
    )


def plan_knn(
    db: "Database", index: ObjectIndex, query: SKkNNQuery
) -> QueryPlan:
    """Plan a boolean SK kNN search (INE with adaptive radius)."""
    db.ensure_frozen()
    return QueryPlan(
        kind="knn",
        query=query,
        index=index,
        algorithm="ine-knn",
        hints=_cost_hints(db, query.terms),
        rationale="kNN takes k items off the distance-ordered INE stream",
    )


def plan_diversified(
    db: "Database",
    index: ObjectIndex,
    query: DiversifiedSKQuery,
    method: Optional[str] = None,
    enable_pruning: bool = True,
    landmarks=None,
) -> QueryPlan:
    """Plan a diversified SK search.

    ``method`` forces ``"seq"`` or ``"com"``; when ``None`` the planner
    chooses from the cost hints: COM's incremental core-pair
    maintenance and §4.3 pruning pay off on large candidate streams,
    while tiny streams (≲ 2·k estimated matches) are cheaper through
    SEQ's flat scan.
    """
    db.ensure_frozen()
    hints = _cost_hints(db, query.terms)
    if method is not None:
        method = method.lower()
        if method not in ("seq", "com"):
            raise QueryError("method must be 'seq' or 'com'")
        algorithm = method
        rationale = f"caller forced {method.upper()}"
    else:
        threshold = _SEQ_CANDIDATE_FACTOR * query.k
        if hints.estimated_matches <= threshold:
            algorithm = "seq"
            rationale = (
                f"est. {hints.estimated_matches:.1f} matches ≤ "
                f"{threshold} (2·k): flat SEQ beats COM's bookkeeping"
            )
        else:
            algorithm = "com"
            rationale = (
                f"est. {hints.estimated_matches:.1f} matches > "
                f"{threshold} (2·k): COM's §4.3 pruning pays off"
            )
    return QueryPlan(
        kind="diversified",
        query=query,
        index=index,
        algorithm=algorithm,
        enable_pruning=enable_pruning,
        landmarks=landmarks,
        hints=hints,
        rationale=rationale,
    )
