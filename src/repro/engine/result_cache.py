"""Semantic result cache for diversified queries.

Caches full diversified top-k answers keyed on everything that
determines them — index, keywords, query location, ``delta_max``,
``k``, ``λ`` and algorithm — and *survives unrelated updates*: instead
of flushing on every ``data_version`` bump, an entry is validated
lazily on probe by replaying the update journal since the entry's last
known-good epoch and asking whether any record could possibly have
changed this query's answer.

Relevance predicates (conservative — "maybe relevant" invalidates):

* **insert/delete** — the object must carry *all* of the query's
  keywords (AND semantics; anything else can never enter the candidate
  set) *and* lie within ``delta_max`` of the query point.  The spatial
  half uses the Euclidean lower bound ``network_distance >= r_min *
  euclidean_distance`` where ``r_min = min(weight/length)`` over all
  edges (``Database.min_weight_per_length``, maintained shrink-only so
  it stays a lower bound across reweights).
* **edge_weight** — a reweighted edge matters if any path the query
  evaluated could cross it: candidate-retrieval paths stay within
  ``delta_max`` of the query, and pairwise paths between two candidates
  (Dijkstra cutoff ``2 * delta_max * 1.001``) stay within
  ``(1 + 2 * 1.001) * delta_max``.  The edge is irrelevant when the
  Euclidean bound puts its whole segment beyond that radius.

A surviving probe advances the entry's epoch to the current
``data_version``, so each journal record is examined at most once per
entry.  LRU-bounded and lock-protected: safe under
``execute_many(workers=N)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.queries import DiversifiedResult, DiversifiedSKQuery
from ..core.updates import UpdateRecord
from ..spatial.geometry import Point, project_onto_segment

__all__ = ["ResultCache", "PAIRWISE_RADIUS_FACTOR"]

#: Region radius for edge-weight relevance, in units of ``delta_max``:
#: 1 for the candidate region plus ``2 * 1.001`` for the pairwise
#: Dijkstra cutoff used by SEQ/COM.
PAIRWISE_RADIUS_FACTOR = 1.0 + 2.0 * 1.001


@dataclass
class _Entry:
    result: DiversifiedResult
    #: Every journal record at or before this epoch is known harmless.
    valid_epoch: int
    query_point: Point
    terms: frozenset
    delta_max: float


class ResultCache:
    """LRU cache of diversified answers with journal-based validation."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evictions = 0

    @staticmethod
    def _key(index_name: str, query: DiversifiedSKQuery, algorithm: str) -> Tuple:
        return (
            index_name,
            tuple(sorted(query.terms)),
            query.position.edge_id,
            query.position.offset,
            query.delta_max,
            query.k,
            query.lambda_,
            algorithm,
        )

    # ------------------------------------------------------------------
    # Relevance predicates
    # ------------------------------------------------------------------
    @staticmethod
    def _relevant(db, entry: _Entry, rec: UpdateRecord) -> bool:
        """Could this journal record have changed the entry's answer?"""
        r_min = db.min_weight_per_length()
        if rec.kind == "edge_weight":
            edge = db.network.edge(rec.edge_id)
            closest, _t = project_onto_segment(
                entry.query_point, edge.p1, edge.p2
            )
            euclid = entry.query_point.distance_to(closest)
            return r_min * euclid <= PAIRWISE_RADIUS_FACTOR * entry.delta_max
        # insert / delete: keyword test first (it is exact), then region.
        if not entry.terms <= rec.terms:
            return False
        euclid = entry.query_point.distance_to(rec.point)
        return r_min * euclid <= entry.delta_max

    # ------------------------------------------------------------------
    # Probe / fill
    # ------------------------------------------------------------------
    def get(
        self, db, index_name: str, query: DiversifiedSKQuery, algorithm: str
    ) -> Optional[DiversifiedResult]:
        """The cached answer, or ``None`` (miss or invalidated)."""
        key = self._key(index_name, query, algorithm)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            current = db.data_version
            if entry.valid_epoch < current:
                for rec in db.update_journal.since(entry.valid_epoch):
                    if self._relevant(db, entry, rec):
                        del self._entries[key]
                        self.invalidated += 1
                        self.misses += 1
                        return None
                entry.valid_epoch = current
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.result

    def put(
        self,
        db,
        index_name: str,
        query: DiversifiedSKQuery,
        algorithm: str,
        result: DiversifiedResult,
    ) -> None:
        """Cache one answer, valid as of the epoch it executed against.

        The entry's epoch is the *query's* pinned epoch
        (``result.stats.epoch``), not the database's current one — an
        update committing mid-query must be replayed on the next probe,
        not silently skipped.
        """
        key = self._key(index_name, query, algorithm)
        try:
            query_point = db.network.position_point(query.position)
        except Exception:
            # An edge reweight between execution and this put can leave
            # the query's weight-unit offset beyond the shrunken edge;
            # such an answer is about to be invalid anyway — skip it.
            return
        entry = _Entry(
            result=result,
            valid_epoch=result.stats.epoch,
            query_point=query_point,
            terms=query.terms,
            delta_max=query.delta_max,
        )
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "invalidated": self.invalidated,
                "evictions": self.evictions,
            }
