"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for malformed road networks (unknown nodes, bad weights)."""


class StorageError(ReproError):
    """Raised by the simulated disk substrate (bad page ids, closed files)."""


class QueryError(ReproError):
    """Raised for invalid queries (empty keyword set, bad parameters)."""


class DatasetError(ReproError):
    """Raised by dataset generators and loaders."""


class DependencyError(ReproError):
    """Raised when an optional-at-import dependency is missing.

    The array-native paths (CSR graph, hub labels, vectorized scoring)
    require numpy; the pure-Python paths do not.  Import never fails —
    this is raised at *use* time with a message naming the feature.
    """
