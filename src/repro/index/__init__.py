"""Spatio-textual object indexes: IR, IF, SIF, SIF-P, SIF-G, CCAM."""

from .base import LoadCounters, ObjectIndex
from .edge_store import EdgeStoreIndex
from .inverted_file import InvertedFileIndex, edge_zorder_key
from .inverted_rtree import InvertedRTreeIndex
from .partition import (
    QueryLog,
    dp_partition,
    false_hit_cost,
    greedy_partition,
    partition_cost,
    segments_from_cuts,
)
from .query_log import frequency_edge_log, log_from_workload, random_edge_log
from .signature import SignatureFile
from .sif import SIFIndex
from .sif_g import SIFGIndex
from .sif_p import SIFPIndex

__all__ = [
    "LoadCounters",
    "ObjectIndex",
    "EdgeStoreIndex",
    "InvertedFileIndex",
    "edge_zorder_key",
    "InvertedRTreeIndex",
    "QueryLog",
    "dp_partition",
    "false_hit_cost",
    "greedy_partition",
    "partition_cost",
    "segments_from_cuts",
    "frequency_edge_log",
    "log_from_workload",
    "random_edge_log",
    "SignatureFile",
    "SIFIndex",
    "SIFGIndex",
    "SIFPIndex",
]
