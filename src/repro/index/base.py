"""Common interface of the spatio-textual object indexes.

Algorithm 3 (the SK search) is index-agnostic: whenever the network
expansion reaches an edge for the first time it asks the object index
for the objects on that edge satisfying the keyword constraint
(Algorithm 2, ``LoadObjects``).  The four indexes of the paper — IR,
IF, SIF, SIF-P (plus the SIF-G comparison point of Fig. 9) — differ
only in how much I/O that call costs and how many irrelevant objects it
loads.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from ..network.objects import ObjectStore, SpatioTextualObject
from ..obs.tracing import NULL_TRACER

__all__ = ["LoadCounters", "ObjectIndex"]


@dataclass
class LoadCounters:
    """Per-query counters maintained by every index.

    ``objects_loaded`` counts object postings fetched from disk;
    ``false_hit_objects`` counts the subset fetched for edges (or
    virtual edges) that produced no result — the quantity Fig. 9 plots.
    """

    edges_probed: int = 0
    edges_pruned_by_signature: int = 0
    objects_loaded: int = 0
    false_hits: int = 0
    false_hit_objects: int = 0
    results_returned: int = 0
    #: AND-semantics signature tests run / tests that pruned their
    #: edge.  These live here (not on the shared SignatureFile) so
    #: concurrent queries under ``execute_many(workers=N)`` each count
    #: into their own per-query slot and the lifetime totals absorb
    #: exact deltas under the merge lock.
    signature_tests_run: int = 0
    signature_tests_pruned: int = 0
    #: Wall seconds spent in signature verification (the in-memory
    #: bitmap tests of SIF / SIF-P / SIF-G); sampled as per-query
    #: deltas by the metrics layer.
    signature_seconds: float = 0.0

    def reset(self) -> None:
        self.edges_probed = 0
        self.edges_pruned_by_signature = 0
        self.objects_loaded = 0
        self.false_hits = 0
        self.false_hit_objects = 0
        self.results_returned = 0
        self.signature_tests_run = 0
        self.signature_tests_pruned = 0
        self.signature_seconds = 0.0

    def absorb(self, other: "LoadCounters") -> None:
        """Add another counter set's values into this one."""
        self.edges_probed += other.edges_probed
        self.edges_pruned_by_signature += other.edges_pruned_by_signature
        self.objects_loaded += other.objects_loaded
        self.false_hits += other.false_hits
        self.false_hit_objects += other.false_hit_objects
        self.results_returned += other.results_returned
        self.signature_tests_run += other.signature_tests_run
        self.signature_tests_pruned += other.signature_tests_pruned
        self.signature_seconds += other.signature_seconds


class ObjectIndex(abc.ABC):
    """Access path from an edge id to its matching objects.

    Concurrency contract: an index is **read-only during queries**.
    Per-query load counters and the active tracer live in a per-thread
    execution slot installed by
    :class:`~repro.engine.context.ExecutionContext`
    (:meth:`begin_execution` / :meth:`end_execution`), so concurrent
    queries on different threads never write into each other's stats.
    The index's only persistent mutable state — the lifetime counter
    totals — is updated once per query, at :meth:`end_execution`, under
    a lock.
    """

    #: Short name used in reports ("IR", "IF", "SIF", "SIF-P", "SIF-G").
    name: str = "?"

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        #: Lifetime counter totals, visible whenever no per-query
        #: execution slot is active on the calling thread.
        self._lifetime_counters = LoadCounters()
        self._default_tracer = NULL_TRACER
        #: An inner index (SIF's inverted file) forwards its counters
        #: and tracer to the composite that owns it; see
        #: :meth:`share_stats_with`.
        self._stats_parent: Optional["ObjectIndex"] = None
        self._execution_slots = threading.local()
        self._merge_lock = threading.Lock()
        #: Wall-clock seconds spent building the index.
        self.build_seconds: float = 0.0

    @property
    def store(self) -> ObjectStore:
        return self._store

    # ------------------------------------------------------------------
    # Per-execution stats routing
    # ------------------------------------------------------------------
    @property
    def counters(self) -> LoadCounters:
        """The counter set writes should land in *right now*.

        Inside a query this is the executing context's per-query
        counters (installed per thread); outside it is the lifetime
        totals, which accumulate one query's deltas at a time.
        """
        parent = self._stats_parent
        if parent is not None:
            return parent.counters
        stack = getattr(self._execution_slots, "stack", None)
        if stack:
            return stack[-1][0]
        return self._lifetime_counters

    @property
    def lifetime_counters(self) -> LoadCounters:
        """The persistent totals, regardless of any active execution."""
        parent = self._stats_parent
        if parent is not None:
            return parent.lifetime_counters
        return self._lifetime_counters

    @property
    def tracer(self):
        """Tracer for per-edge pruning events.

        Resolves to the executing context's tracer while a query is
        active on this thread; otherwise to the default (assignable,
        normally :data:`~repro.obs.tracing.NULL_TRACER`)."""
        parent = self._stats_parent
        if parent is not None:
            return parent.tracer
        stack = getattr(self._execution_slots, "stack", None)
        if stack:
            return stack[-1][1]
        return self._default_tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._default_tracer = tracer

    def share_stats_with(self, parent: "ObjectIndex") -> None:
        """Forward this index's counters/tracer to ``parent``.

        Composite indexes (SIF wrapping an inverted file) call this so
        the inner index's loads surface on the composite — including
        inside per-query execution slots, which only the composite
        manages."""
        self._stats_parent = parent

    def begin_execution(self, counters: LoadCounters, tracer) -> None:
        """Install a per-query stats slot for the calling thread.

        Paired with :meth:`end_execution`; slots nest per thread, so a
        query that re-enters the index (kNN's radius-doubling rounds)
        keeps one slot throughout."""
        stack = getattr(self._execution_slots, "stack", None)
        if stack is None:
            stack = self._execution_slots.stack = []
        stack.append((counters, tracer))

    def end_execution(self) -> None:
        """Retire the calling thread's slot, folding its per-query
        counter deltas into the lifetime totals (lock-protected)."""
        stack = getattr(self._execution_slots, "stack", None)
        if not stack:
            return
        counters, _tracer = stack.pop()
        with self._merge_lock:
            self._lifetime_counters.absorb(counters)

    @abc.abstractmethod
    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        """Algorithm 2: objects on ``edge_id`` containing *all* ``terms``.

        Implementations charge their I/O to the shared disk manager and
        update :attr:`counters`.
        """

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total on-disk size of the index (pages plus signatures)."""

    def describe(self) -> str:
        return f"{self.name} ({self.size_bytes() / 1024:.0f} KiB)"

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _filter_and(
        objects: Sequence[SpatioTextualObject], terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        return [o for o in objects if o.contains_all(terms)]
