"""Common interface of the spatio-textual object indexes.

Algorithm 3 (the SK search) is index-agnostic: whenever the network
expansion reaches an edge for the first time it asks the object index
for the objects on that edge satisfying the keyword constraint
(Algorithm 2, ``LoadObjects``).  The four indexes of the paper — IR,
IF, SIF, SIF-P (plus the SIF-G comparison point of Fig. 9) — differ
only in how much I/O that call costs and how many irrelevant objects it
loads.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from ..network.objects import ObjectStore, SpatioTextualObject
from ..obs.tracing import NULL_TRACER

__all__ = ["LoadCounters", "ObjectIndex"]


@dataclass
class LoadCounters:
    """Per-query counters maintained by every index.

    ``objects_loaded`` counts object postings fetched from disk;
    ``false_hit_objects`` counts the subset fetched for edges (or
    virtual edges) that produced no result — the quantity Fig. 9 plots.
    """

    edges_probed: int = 0
    edges_pruned_by_signature: int = 0
    objects_loaded: int = 0
    false_hits: int = 0
    false_hit_objects: int = 0
    results_returned: int = 0
    #: Wall seconds spent in signature verification (the in-memory
    #: bitmap tests of SIF / SIF-P / SIF-G); sampled as per-query
    #: deltas by the metrics layer.
    signature_seconds: float = 0.0

    def reset(self) -> None:
        self.edges_probed = 0
        self.edges_pruned_by_signature = 0
        self.objects_loaded = 0
        self.false_hits = 0
        self.false_hit_objects = 0
        self.results_returned = 0
        self.signature_seconds = 0.0


class ObjectIndex(abc.ABC):
    """Access path from an edge id to its matching objects."""

    #: Short name used in reports ("IR", "IF", "SIF", "SIF-P", "SIF-G").
    name: str = "?"

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self.counters = LoadCounters()
        #: Wall-clock seconds spent building the index.
        self.build_seconds: float = 0.0
        #: Tracer for per-edge pruning events.  The owning database
        #: re-points this at its own tracer at every query entry, so an
        #: index follows whatever tracing state the database is in.
        self.tracer = NULL_TRACER

    @property
    def store(self) -> ObjectStore:
        return self._store

    @abc.abstractmethod
    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        """Algorithm 2: objects on ``edge_id`` containing *all* ``terms``.

        Implementations charge their I/O to the shared disk manager and
        update :attr:`counters`.
        """

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total on-disk size of the index (pages plus signatures)."""

    def describe(self) -> str:
        return f"{self.name} ({self.size_bytes() / 1024:.0f} KiB)"

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _filter_and(
        objects: Sequence[SpatioTextualObject], terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        return [o for o in objects if o.contains_all(terms)]
