"""CCAM object storage — the C1 analysis baseline (paper §3.2).

"A large number of irrelevant objects may be loaded if we simply store
objects together with their corresponding edges in the CCAM structure"
(§3.1).  This index does exactly that: every object of an edge lives in
the edge's object pages and all of them are loaded before the keyword
constraint is tested.  It exists to reproduce the ``C1 = l_e × m``
analysis and as the ablation baseline showing why inverted indexing is
needed.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List

from ..network.objects import ObjectStore, SpatioTextualObject
from ..storage.pagefile import PAGE_SIZE, DiskManager, PageFile
from .base import ObjectIndex

__all__ = ["EdgeStoreIndex"]

_OBJECT_RECORD_BYTES = 64  # id, offset, and an inline keyword summary


class EdgeStoreIndex(ObjectIndex):
    """All objects stored with their edges, no textual access path."""

    name = "CCAM"

    def __init__(
        self, store: ObjectStore, disk: DiskManager, file_prefix: str = "edgestore"
    ) -> None:
        super().__init__(store)
        self._file: PageFile = disk.create_file(
            f"{file_prefix}.objects", category="inverted"
        )
        self._edge_pages: Dict[int, List[int]] = {}
        start = time.perf_counter()
        self._build()
        self.build_seconds = time.perf_counter() - start

    def _build(self) -> None:
        per_page = max(1, PAGE_SIZE // _OBJECT_RECORD_BYTES)
        for edge_id in self._store.edges_with_objects():
            objects = self._store.objects_on_edge(edge_id)
            pages: List[int] = []
            for start in range(0, len(objects), per_page):
                chunk = [o.object_id for o in objects[start : start + per_page]]
                pages.append(
                    self._file.allocate(
                        chunk, size_bytes=len(chunk) * _OBJECT_RECORD_BYTES
                    )
                )
            self._edge_pages[edge_id] = pages

    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        pages = self._edge_pages.get(edge_id)
        if not pages:
            return []
        self.counters.edges_probed += 1
        loaded: List[SpatioTextualObject] = []
        for page_no in pages:
            for oid in self._file.read(page_no):
                loaded.append(self._store.get(oid))
        self.counters.objects_loaded += len(loaded)
        out = self._filter_and(loaded, terms)
        if not out and loaded:
            self.counters.false_hits += 1
            self.counters.false_hit_objects += len(loaded)
        self.counters.results_returned += len(out)
        out.sort(key=lambda o: o.position.offset)
        return out

    def size_bytes(self) -> int:
        return self._file.size_bytes
