"""IF — the inverted file over edges (paper §3.1).

For each keyword ``t`` the objects containing ``t`` are kept with their
edges in a disk-resident B+-tree whose key is the Z-order code of the
edge's centre point (ties broken by edge id so keys stay unique while
preserving spatial locality).  Leaf values point at postings pages; the
postings of one keyword are packed into pages in edge-key order, so
spatially close edges share pages (the Z-order clustering the paper
relies on) and small posting lists do not waste whole pages.

``load_objects`` implements Algorithm 2 without the signature test:
every query keyword requires a B+-tree descent, and the postings of
every query keyword on the edge are fetched before the
AND-intersection — which is exactly why false hits hurt IF and motivate
SIF.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..network.graph import RoadNetwork
from ..network.objects import ObjectStore, SpatioTextualObject
from ..spatial.zorder import ZOrderCurve
from ..storage.bplustree import BPlusTree
from ..storage.pagefile import PAGE_SIZE, DiskManager, PageFile
from .base import ObjectIndex

__all__ = ["InvertedFileIndex", "edge_zorder_key", "pack_postings", "POSTING_BYTES"]

#: Bytes per posting: edge key, object id and offset.
POSTING_BYTES = 16
POSTINGS_PER_PAGE = PAGE_SIZE // POSTING_BYTES

#: A posting: ``(edge_key, object_id, offset)``.
Posting = Tuple[int, int, float]


def edge_zorder_key(curve: ZOrderCurve, network: RoadNetwork, edge_id: int) -> int:
    """Unique, locality-preserving B+-tree key for an edge."""
    code = curve.encode_point(network.edge(edge_id).center)
    return (code << 24) | edge_id


def pack_postings(
    file: PageFile, postings: List[Posting]
) -> Dict[int, List[int]]:
    """Pack postings (sorted by edge key) into pages of ``file``.

    Returns ``edge_key -> page numbers holding that edge's postings``.
    Pages are shared between consecutive edges, so the map's page lists
    overlap at the boundaries.
    """
    edge_pages: Dict[int, List[int]] = {}
    for start in range(0, len(postings), POSTINGS_PER_PAGE):
        chunk = postings[start : start + POSTINGS_PER_PAGE]
        page_no = file.allocate(chunk, size_bytes=len(chunk) * POSTING_BYTES)
        for edge_key, _oid, _off in chunk:
            pages = edge_pages.setdefault(edge_key, [])
            if not pages or pages[-1] != page_no:
                pages.append(page_no)
    return edge_pages


class InvertedFileIndex(ObjectIndex):
    """Per-keyword B+-trees of edge postings (index "IF")."""

    name = "IF"

    def __init__(
        self,
        store: ObjectStore,
        disk: DiskManager,
        curve: Optional[ZOrderCurve] = None,
        file_prefix: str = "if",
    ) -> None:
        super().__init__(store)
        self._disk = disk
        self._curve = curve or ZOrderCurve()
        self._network = store.network
        self._trees: Dict[str, BPlusTree] = {}
        self._pages_per_term: Dict[str, int] = {}
        self._postings: PageFile = disk.create_file(
            f"{file_prefix}.postings", category="inverted"
        )
        self._tree_file: PageFile = disk.create_file(
            f"{file_prefix}.trees", category="inverted"
        )
        start = time.perf_counter()
        self._build()
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        # term -> postings in edge-key order
        staged: Dict[str, List[Posting]] = {}
        for edge_id in sorted(
            self._store.edges_with_objects(),
            key=lambda e: edge_zorder_key(self._curve, self._network, e),
        ):
            key = edge_zorder_key(self._curve, self._network, edge_id)
            for obj in self._store.objects_on_edge(edge_id):
                posting = (key, obj.object_id, obj.position.offset)
                for term in obj.keywords:
                    staged.setdefault(term, []).append(posting)

        for term in sorted(staged):
            postings = staged[term]
            edge_pages = pack_postings(self._postings, postings)
            entries = sorted(edge_pages.items())
            tree = BPlusTree(self._tree_file, key_bytes=8, value_bytes=8)
            tree.bulk_load(entries)
            self._trees[term] = tree
            self._pages_per_term[term] = len(
                {p for pages in edge_pages.values() for p in pages}
            )

    # ------------------------------------------------------------------
    # Algorithm 2 (without the signature test)
    # ------------------------------------------------------------------
    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        self.counters.edges_probed += 1
        key = edge_zorder_key(self._curve, self._network, edge_id)
        loaded_total = 0
        intersection: Optional[Set[int]] = None
        for term in terms:
            tree = self._trees.get(term)
            pages = tree.search(key) if tree is not None else None
            if pages is None:
                # The keyword never occurs on this edge: the descent was
                # still paid, and postings already fetched are wasted.
                intersection = set()
                continue
            ids: Set[int] = set()
            for page_no in pages:
                for edge_key, oid, _off in self._postings.read(page_no):
                    if edge_key == key:
                        loaded_total += 1
                        ids.add(oid)
            intersection = ids if intersection is None else intersection & ids
        self.counters.objects_loaded += loaded_total
        result_ids = intersection or set()
        if not result_ids and loaded_total:
            self.counters.false_hits += 1
            self.counters.false_hit_objects += loaded_total
        self.counters.results_returned += len(result_ids)
        out = [self._store.get(oid) for oid in result_ids]
        out.sort(key=lambda o: o.position.offset)
        return out

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return self._postings.size_bytes + self._tree_file.size_bytes

    def has_term(self, term: str) -> bool:
        return term in self._trees

    def postings_pages_of(self, term: str) -> int:
        """Number of postings pages of one keyword (signature threshold)."""
        return self._pages_per_term.get(term, 0)

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def insert_object(self, obj: SpatioTextualObject) -> None:
        """Insert one new object's postings (dynamic maintenance).

        For each keyword the posting is appended to the edge's last
        postings page if it has free space, otherwise a fresh page is
        allocated and linked from the keyword's B+-tree.  New keywords
        get a fresh single-leaf tree.
        """
        key = edge_zorder_key(self._curve, self._network, obj.position.edge_id)
        posting = (key, obj.object_id, obj.position.offset)
        for term in obj.keywords:
            tree = self._trees.get(term)
            if tree is None:
                page_no = self._postings.allocate(
                    [posting], size_bytes=POSTING_BYTES
                )
                tree = BPlusTree(self._tree_file, key_bytes=8, value_bytes=8)
                tree.bulk_load([(key, [page_no])])
                self._trees[term] = tree
                self._pages_per_term[term] = 1
                continue
            pages = tree.search(key)
            if pages is None:
                page_no = self._postings.allocate(
                    [posting], size_bytes=POSTING_BYTES
                )
                tree.insert(key, [page_no])
                self._pages_per_term[term] = self._pages_per_term.get(term, 0) + 1
                continue
            last = self._postings.read_unbuffered(pages[-1])
            if len(last) < POSTINGS_PER_PAGE:
                last.append(posting)
            else:
                page_no = self._postings.allocate(
                    [posting], size_bytes=POSTING_BYTES
                )
                pages.append(page_no)
                self._pages_per_term[term] = self._pages_per_term.get(term, 0) + 1

    def delete_object(self, obj: SpatioTextualObject) -> None:
        """Remove one object's postings (dynamic maintenance).

        Postings matching ``(edge, object_id)`` are filtered out of the
        edge's pages in place.  Pages are *not* reclaimed when they
        empty — like the insert path, the layout is append-only and a
        rebuild compacts it; emptied pages simply stop yielding
        postings.  Filtering keys on the edge too because postings
        pages are shared between Z-order-adjacent edges.
        """
        key = edge_zorder_key(self._curve, self._network, obj.position.edge_id)
        for term in obj.keywords:
            tree = self._trees.get(term)
            pages = tree.search(key) if tree is not None else None
            if pages is None:
                continue
            for page_no in pages:
                payload = self._postings.read_unbuffered(page_no)
                kept = [
                    p for p in payload
                    if not (p[0] == key and p[1] == obj.object_id)
                ]
                if len(kept) != len(payload):
                    self._postings.rewrite(
                        page_no, kept, size_bytes=len(kept) * POSTING_BYTES
                    )
