"""IR — the inverted R-tree baseline (paper §5, [23]).

One R-tree of object locations per keyword, built in Euclidean space
and therefore *independent of the road network*: to find the objects of
an edge the search must window-query every query keyword's R-tree with
the edge's MBR, then fetch each candidate's object record to check
which edge it actually lies on (an R-tree leaf entry carries only a
point and an object pointer).  Those verification reads against objects
of *other* nearby edges are why the paper reports IR "nearly 4 times
slower" than the network-aware indexes.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set

from ..network.objects import ObjectStore, SpatioTextualObject
from ..spatial.geometry import MBR
from ..spatial.rtree import RTree, RTreeEntry
from ..storage.pagefile import PAGE_SIZE, DiskManager, PageFile
from .base import ObjectIndex

__all__ = ["InvertedRTreeIndex"]

_OBJECT_RECORD_BYTES = 64
_RECORDS_PER_PAGE = PAGE_SIZE // _OBJECT_RECORD_BYTES


class InvertedRTreeIndex(ObjectIndex):
    """Per-keyword R-trees over object points (index "IR")."""

    name = "IR"

    def __init__(
        self,
        store: ObjectStore,
        disk: DiskManager,
        file_prefix: str = "ir",
    ) -> None:
        super().__init__(store)
        self._disk = disk
        self._trees: Dict[str, RTree] = {}
        self._file = disk.create_file(f"{file_prefix}.rtrees", category="rtree")
        self._records: PageFile = disk.create_file(
            f"{file_prefix}.objects", category="rtree"
        )
        start = time.perf_counter()
        self._build()
        self.build_seconds = time.perf_counter() - start

    def _build(self) -> None:
        # Object record pages, ordered by object id: the verification
        # target of every R-tree candidate.
        record_ids: List[int] = sorted(o.object_id for o in self._store)
        self._record_page_of: Dict[int, int] = {}
        for start in range(0, len(record_ids), _RECORDS_PER_PAGE):
            chunk = record_ids[start : start + _RECORDS_PER_PAGE]
            payload = {
                oid: self._store.get(oid).position.edge_id for oid in chunk
            }
            page_no = self._records.allocate(
                payload, size_bytes=len(chunk) * _OBJECT_RECORD_BYTES
            )
            for oid in chunk:
                self._record_page_of[oid] = page_no

        staged: Dict[str, List[RTreeEntry]] = {}
        for obj in self._store:
            point = self._store.object_point(obj.object_id)
            box = MBR(point.x, point.y, point.x, point.y)
            for term in obj.keywords:
                staged.setdefault(term, []).append(RTreeEntry(box, obj.object_id))
        for term in sorted(staged):
            tree = RTree(self._file)
            tree.bulk_load(staged[term])
            self._trees[term] = tree

    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        self.counters.edges_probed += 1
        region = self._store.network.edge(edge_id).mbr
        loaded_total = 0
        intersection: Optional[Set[int]] = None
        for term in terms:
            tree = self._trees.get(term)
            ids: Set[int] = set()
            if tree is not None:
                for entry in tree.window(region):
                    oid = entry.payload
                    # Verify which edge the candidate lies on: fetch its
                    # object record (the expensive step of IR).
                    record = self._records.read(self._record_page_of[oid])
                    loaded_total += 1
                    if record[oid] == edge_id:
                        ids.add(oid)
            intersection = ids if intersection is None else intersection & ids
        self.counters.objects_loaded += loaded_total
        result_ids = intersection or set()
        if not result_ids and loaded_total:
            self.counters.false_hits += 1
            self.counters.false_hit_objects += loaded_total
        self.counters.results_returned += len(result_ids)
        out = [self._store.get(oid) for oid in result_ids]
        out.sort(key=lambda o: o.position.offset)
        return out

    def size_bytes(self) -> int:
        return self._file.size_bytes + self._records.size_bytes
