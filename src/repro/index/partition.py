"""Edge partitioning for the enhanced signature technique (paper §3.3).

An edge with ``m`` objects (indexed by visiting order along the edge)
is split by ``c`` cuts into ``c + 1`` virtual edges, each carrying its
own signature.  A good partition separates objects whose keyword
combinations trigger *false hits* — edges that pass the signature test
yet contain no object satisfying the AND constraint.

Two solvers are provided, both driven by a query log:

* :func:`dp_partition` — the exact dynamic program of Algorithm 4
  (``O(c^2 m^3)`` subproblem evaluations);
* :func:`greedy_partition` — the iterative cut refinement the paper
  uses in its experiments ("up to two orders of magnitude faster ...
  while they achieve similar performance in terms of I/O costs").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

__all__ = [
    "QueryLog",
    "false_hit_cost",
    "partition_cost",
    "segments_from_cuts",
    "dp_partition",
    "greedy_partition",
]

#: A query log: ``(query keyword set, probability)`` pairs.
QueryLog = Sequence[Tuple[FrozenSet[str], float]]


def false_hit_cost(
    group_keywords: Sequence[FrozenSet[str]], terms: FrozenSet[str]
) -> int:
    """ξ(q, e') for one virtual edge.

    ``group_keywords`` holds the keyword set of every object in the
    virtual edge.  The cost is the number of objects loaded due to a
    false hit: the full group size when the signature test passes but
    no object contains all query keywords, zero otherwise (signature
    failure or true hit).
    """
    if not group_keywords or not terms:
        return 0
    union: Set[str] = set()
    for kws in group_keywords:
        if terms <= kws:
            return 0  # true hit
        union.update(kws)
    if terms <= union:
        return len(group_keywords)  # passes the signature test, no result
    return 0  # fails the signature test


def segments_from_cuts(m: int, cuts: Sequence[int]) -> List[Tuple[int, int]]:
    """Inclusive ``(start, end)`` object ranges induced by cut positions.

    A cut at position ``p`` separates objects ``p`` and ``p + 1``
    (0-based); valid positions are ``0 .. m - 2``.
    """
    bounds = sorted(set(cuts))
    for p in bounds:
        if not 0 <= p <= m - 2:
            raise ValueError(f"cut position {p} out of range for {m} objects")
    segments: List[Tuple[int, int]] = []
    start = 0
    for p in bounds:
        segments.append((start, p))
        start = p + 1
    segments.append((start, m - 1))
    return segments


def partition_cost(
    object_keywords: Sequence[FrozenSet[str]],
    cuts: Sequence[int],
    query_log: QueryLog,
) -> float:
    """ξ(Q, P): expected false-hit cost of a partition under a query log."""
    segments = segments_from_cuts(len(object_keywords), cuts)
    total = 0.0
    for terms, prob in query_log:
        if prob <= 0:
            continue
        for start, end in segments:
            total += prob * false_hit_cost(object_keywords[start : end + 1], terms)
    return total


def _segment_cost_table(
    object_keywords: Sequence[FrozenSet[str]], query_log: QueryLog
) -> Dict[Tuple[int, int], float]:
    """Pre-compute ξ(Q, ·) of every contiguous object range (Eq. 7)."""
    m = len(object_keywords)
    table: Dict[Tuple[int, int], float] = {}
    for i in range(m):
        for j in range(i, m):
            cost = 0.0
            group = object_keywords[i : j + 1]
            for terms, prob in query_log:
                if prob > 0:
                    cost += prob * false_hit_cost(group, terms)
            table[(i, j)] = cost
    return table


def dp_partition(
    object_keywords: Sequence[FrozenSet[str]],
    cuts: int,
    query_log: QueryLog,
) -> Tuple[Tuple[int, ...], float]:
    """Algorithm 4: optimal partition with exactly ``min(cuts, m-1)`` cuts.

    Returns ``(cut_positions, cost)``.  ``P*(i, j, c)`` is the minimum
    cost of splitting objects ``i..j`` into ``c + 1`` virtual edges
    (Equations 7–9); memoised recursion replaces the explicit tables.
    """
    m = len(object_keywords)
    if m == 0:
        return (), 0.0
    cuts = max(0, min(cuts, m - 1))
    base = _segment_cost_table(object_keywords, query_log)
    memo: Dict[Tuple[int, int, int], Tuple[float, Tuple[int, ...]]] = {}

    def solve(i: int, j: int, c: int) -> Tuple[float, Tuple[int, ...]]:
        if c == 0:
            return base[(i, j)], ()
        if j - i < c:  # not enough cutting positions
            return float("inf"), ()
        key = (i, j, c)
        if key in memo:
            return memo[key]
        best_cost = float("inf")
        best_cuts: Tuple[int, ...] = ()
        for k in range(i, j):  # a cut right after the k-th object
            for v in range(c):  # v cuts on the left of k, c-1-v on the right
                left_cost, left_cuts = solve(i, k, v)
                if left_cost >= best_cost:
                    continue
                right_cost, right_cuts = solve(k + 1, j, c - v - 1)
                cost = left_cost + right_cost
                if cost < best_cost:
                    best_cost = cost
                    best_cuts = tuple(sorted({*left_cuts, k, *right_cuts}))
        memo[key] = (best_cost, best_cuts)
        return memo[key]

    cost, positions = solve(0, m - 1, cuts)
    return positions, cost


def _split_costs(
    object_keywords: Sequence[FrozenSet[str]],
    start: int,
    end: int,
    query_log: QueryLog,
) -> Tuple[float, List[float]]:
    """Segment cost and the cost of every split of ``[start, end]``.

    Returns ``(cost_of_whole_segment, costs)`` where ``costs[i]`` is
    the combined cost of the two segments produced by cutting after
    object ``start + i``.  One forward and one backward sweep per query
    evaluates *all* split points in ``O(len · |q.T|)`` — this is what
    gives the greedy its ``O(c·m·(s_t + |Q|·q_t))`` complexity against
    the DP's ``O(c² m³)``.
    """
    n = end - start + 1
    whole = 0.0
    costs = [0.0] * (n - 1)
    for terms, prob in query_log:
        if prob <= 0 or not terms:
            continue
        # Backward sweep: suffix "passes signature" / "has a true hit".
        suffix_pass = [False] * n
        suffix_hit = [False] * n
        missing: Set[str] = set(terms)
        hit = False
        for i in range(n - 1, -1, -1):
            kws = object_keywords[start + i]
            missing -= kws
            hit = hit or terms <= kws
            suffix_pass[i] = not missing
            suffix_hit[i] = hit
        if suffix_pass[0] and not suffix_hit[0]:
            whole += prob * n
        # Forward sweep: prefix state, combine with the suffix arrays.
        p_missing: Set[str] = set(terms)
        p_hit = False
        for i in range(n - 1):
            kws = object_keywords[start + i]
            p_missing = p_missing - kws
            p_hit = p_hit or terms <= kws
            left_cost = (i + 1) if (not p_missing and not p_hit) else 0
            right_cost = (
                (n - i - 1) if (suffix_pass[i + 1] and not suffix_hit[i + 1]) else 0
            )
            costs[i] += prob * (left_cost + right_cost)
    return whole, costs


def greedy_partition(
    object_keywords: Sequence[FrozenSet[str]],
    cuts: int,
    query_log: QueryLog,
    stop_when_no_improvement: bool = True,
) -> Tuple[Tuple[int, ...], float]:
    """Greedy cut refinement (paper §3.3, used in the experiments).

    Starting from the whole edge (0 cuts), each iteration adds the
    single cut position that minimises the partition cost, up to
    ``cuts`` cuts.  Adding a cut only changes the segment it splits, so
    each round evaluates fresh segments once via :func:`_split_costs`
    and reuses cached evaluations for the rest.  Returns
    ``(cut_positions, cost)``.
    """
    m = len(object_keywords)
    if m <= 1 or cuts <= 0:
        return (), partition_cost(object_keywords, (), query_log)

    def evaluate(start: int, end: int):
        """(segment cost, best delta, best split position) — cached."""
        whole, costs = _split_costs(object_keywords, start, end, query_log)
        if not costs:
            return whole, float("inf"), -1
        best_i = min(range(len(costs)), key=costs.__getitem__)
        return whole, costs[best_i] - whole, start + best_i

    # Segments as (start, end, cost, best_delta, best_position).
    segments: List[Tuple[int, int, float, float, int]] = []
    cost0, delta0, pos0 = evaluate(0, m - 1)
    segments.append((0, m - 1, cost0, delta0, pos0))
    chosen: List[int] = []
    for _ in range(min(cuts, m - 1)):
        seg_idx = min(
            range(len(segments)), key=lambda i: segments[i][3]
        )
        start, end, _cost, delta, position = segments[seg_idx]
        if position < 0 or (stop_when_no_improvement and delta >= 0):
            break
        l_cost, l_delta, l_pos = evaluate(start, position)
        r_cost, r_delta, r_pos = evaluate(position + 1, end)
        segments[seg_idx : seg_idx + 1] = [
            (start, position, l_cost, l_delta, l_pos),
            (position + 1, end, r_cost, r_delta, r_pos),
        ]
        chosen.append(position)
    return tuple(sorted(chosen)), sum(s[2] for s in segments)
