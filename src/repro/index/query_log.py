"""Query-log models for building SIF-P (paper §3.3 Remark 1, Fig. 10).

The partitioner needs a query log ``Q`` with per-query probabilities.
Three models are evaluated in the paper:

* **real** — the actual query load is available and used directly
  (SIF-P-Real, the best case);
* **freq** — no log is available; one is generated per edge assuming
  frequent keywords are more likely to be queried (SIF-P-Freq, the
  paper's default);
* **random** — keywords are drawn uniformly per edge (SIF-P-Rand, the
  stress case whose keyword distribution diverges from the load).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from .partition import QueryLog

__all__ = [
    "log_from_workload",
    "frequency_edge_log",
    "random_edge_log",
    "workload_log_builder",
    "frequency_log_builder",
    "random_log_builder",
]


def log_from_workload(
    keyword_sets: Iterable[Iterable[str]],
) -> QueryLog:
    """Build a query log from an observed workload (SIF-P-Real).

    Duplicate keyword sets are merged; probabilities are the empirical
    frequencies.
    """
    counts: Counter = Counter(frozenset(kws) for kws in keyword_sets)
    total = sum(counts.values())
    if total == 0:
        return []
    return [(terms, n / total) for terms, n in sorted(
        counts.items(), key=lambda kv: (-kv[1], sorted(kv[0]))
    )]


def _local_frequencies(
    object_keywords: Sequence[FrozenSet[str]],
) -> Tuple[List[str], np.ndarray]:
    freq: Dict[str, int] = {}
    for kws in object_keywords:
        for term in kws:
            freq[term] = freq.get(term, 0) + 1
    terms = sorted(freq, key=lambda t: (-freq[t], t))
    weights = np.array([freq[t] for t in terms], dtype=np.float64)
    return terms, weights / weights.sum()


def frequency_edge_log(
    object_keywords: Sequence[FrozenSet[str]],
    num_queries: int,
    num_terms: int,
    rng: np.random.Generator,
) -> QueryLog:
    """Synthesise a per-edge log weighted by local keyword frequency."""
    if not object_keywords or num_queries <= 0:
        return []
    terms, probs = _local_frequencies(object_keywords)
    return _sample_log(terms, probs, num_queries, num_terms, rng)


def random_edge_log(
    object_keywords: Sequence[FrozenSet[str]],
    num_queries: int,
    num_terms: int,
    rng: np.random.Generator,
) -> QueryLog:
    """Synthesise a per-edge log with uniformly random local keywords."""
    if not object_keywords or num_queries <= 0:
        return []
    terms, _ = _local_frequencies(object_keywords)
    probs = np.full(len(terms), 1.0 / len(terms))
    return _sample_log(terms, probs, num_queries, num_terms, rng)


def _sample_log(
    terms: List[str],
    probs: np.ndarray,
    num_queries: int,
    num_terms: int,
    rng: np.random.Generator,
) -> QueryLog:
    counts: Counter = Counter()
    k = min(num_terms, len(terms))
    for _ in range(num_queries):
        if k == len(terms):
            chosen = frozenset(terms)
        else:
            idx = rng.choice(len(terms), size=k, replace=False, p=probs)
            chosen = frozenset(terms[i] for i in idx)
        counts[chosen] += 1
    total = sum(counts.values())
    return [(q, n / total) for q, n in sorted(
        counts.items(), key=lambda kv: (-kv[1], sorted(kv[0]))
    )]


def workload_log_builder(keyword_sets: Iterable[Iterable[str]]):
    """SIF-P-Real: partition every edge against the actual query load.

    Returns a ``log_builder`` suitable for
    :class:`repro.index.sif_p.SIFPIndex`; queries whose keywords do not
    all occur on an edge contribute zero cost there, so passing the
    global log to every edge is exact.
    """
    log = log_from_workload(keyword_sets)

    def build(object_keywords: Sequence[FrozenSet[str]], rng) -> QueryLog:
        return log

    return build


def frequency_log_builder(num_queries: int = 32, num_terms: int = 3):
    """SIF-P-Freq (the default): per-edge frequency-weighted logs."""

    def build(
        object_keywords: Sequence[FrozenSet[str]], rng: np.random.Generator
    ) -> QueryLog:
        return frequency_edge_log(object_keywords, num_queries, num_terms, rng)

    return build


def random_log_builder(num_queries: int = 32, num_terms: int = 3):
    """SIF-P-Rand: per-edge uniformly random logs (the stress case)."""

    def build(
        object_keywords: Sequence[FrozenSet[str]], rng: np.random.Generator
    ) -> QueryLog:
        return random_edge_log(object_keywords, num_queries, num_terms, rng)

    return build
