"""SIF — the signature-based inverted file (paper §3.1).

SIF is the inverted file (IF) guarded by the in-memory edge signatures:
before any B+-tree descent, the AND-semantics signature test discards
edges that cannot contain a result.  The pruning is free (signatures
live in memory); the cost is a slightly larger index (Fig. 6(c)).
"""

from __future__ import annotations

import time
from typing import FrozenSet, List, Optional

from ..network.objects import ObjectStore, SpatioTextualObject
from ..spatial.kdtree import KDTreePartition
from ..spatial.zorder import ZOrderCurve
from ..storage.pagefile import DiskManager
from .base import ObjectIndex
from .inverted_file import InvertedFileIndex
from .signature import SignatureFile

__all__ = ["SIFIndex"]


class SIFIndex(ObjectIndex):
    """Signature-based inverted file (index "SIF")."""

    name = "SIF"

    def __init__(
        self,
        store: ObjectStore,
        disk: DiskManager,
        curve: Optional[ZOrderCurve] = None,
        kd_partition: Optional[KDTreePartition] = None,
        min_postings_pages: int = 1,
        file_prefix: str = "sif",
    ) -> None:
        super().__init__(store)
        start = time.perf_counter()
        self._inverted = InvertedFileIndex(
            store, disk, curve=curve, file_prefix=file_prefix
        )
        if kd_partition is None:
            centers = [e.center for e in store.network.edges()]
            kd_partition = KDTreePartition(centers)
        self._signatures = SignatureFile(
            store,
            inverted=self._inverted,
            min_postings_pages=min_postings_pages,
            kd_partition=kd_partition,
        )
        self.build_seconds = time.perf_counter() - start
        # Counters are shared so false hits surface on the SIF object.
        self._inverted.share_stats_with(self)

    @property
    def signatures(self) -> SignatureFile:
        return self._signatures

    @property
    def inverted(self) -> InvertedFileIndex:
        return self._inverted

    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        start = time.perf_counter()
        passed = self._signatures.test(edge_id, terms)
        counters = self.counters
        counters.signature_seconds += time.perf_counter() - start
        counters.signature_tests_run += 1
        if not passed:
            counters.signature_tests_pruned += 1
            counters.edges_pruned_by_signature += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "signature.prune", edge=edge_id, partition="SIF"
                )
            return []
        return self._inverted.load_objects(edge_id, terms)

    def size_bytes(self) -> int:
        return self._inverted.size_bytes() + self._signatures.size_bytes()

    def insert_object(self, obj) -> None:
        """Dynamic maintenance: postings plus signature bits."""
        self._inverted.insert_object(obj)
        for term in obj.keywords:
            self._signatures.set_bit(obj.position.edge_id, term)

    def delete_object(self, obj) -> None:
        """Dynamic maintenance: drop postings, clear orphaned bits.

        Must run *after* ``ObjectStore.remove`` — a signature bit is
        cleared only when no surviving object on the edge still carries
        the term, and that check reads the store's current state.
        """
        self._inverted.delete_object(obj)
        edge_id = obj.position.edge_id
        remaining = self._store.objects_on_edge(edge_id)
        for term in obj.keywords:
            if not any(term in o.keywords for o in remaining):
                self._signatures.clear_bit(edge_id, term)
