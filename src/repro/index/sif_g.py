"""SIF-G — group-based indexing (paper §5.1, Fig. 9 comparison point).

"Besides the individual terms, we also build the signature file and
inverted list for the combinations of the frequent terms": every
unordered pair of the top-x most frequent terms becomes a synthetic
*group term* whose inverted list keeps only edges carrying an object
with *both* terms.  A query containing an indexed pair can use the
group list — a much more selective signature and posting set — at the
price of a large extra index (the paper budgets SIF-G ten times the
space of SIF-P's signatures and still finds SIF-P more cost-effective).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..network.objects import ObjectStore, SpatioTextualObject
from ..spatial.kdtree import KDTreePartition
from ..spatial.zorder import ZOrderCurve
from ..storage.bplustree import BPlusTree
from ..storage.pagefile import DiskManager, PageFile
from .base import ObjectIndex
from .inverted_file import InvertedFileIndex, edge_zorder_key, pack_postings
from .signature import SignatureFile

__all__ = ["SIFGIndex"]


class SIFGIndex(ObjectIndex):
    """SIF plus pairwise group terms over the most frequent keywords."""

    name = "SIF-G"

    def __init__(
        self,
        store: ObjectStore,
        disk: DiskManager,
        top_terms: int = 10,
        curve: Optional[ZOrderCurve] = None,
        kd_partition: Optional[KDTreePartition] = None,
        min_postings_pages: int = 1,
        file_prefix: str = "sifg",
    ) -> None:
        super().__init__(store)
        self._curve = curve or ZOrderCurve()
        self._network = store.network
        start = time.perf_counter()
        self._inverted = InvertedFileIndex(
            store, disk, curve=self._curve, file_prefix=file_prefix
        )
        if kd_partition is None:
            centers = [e.center for e in store.network.edges()]
            kd_partition = KDTreePartition(centers)
        self._kd = kd_partition
        self._signatures = SignatureFile(
            store,
            inverted=self._inverted,
            min_postings_pages=min_postings_pages,
            kd_partition=kd_partition,
        )
        self._inverted.share_stats_with(self)

        freq = store.keyword_frequencies()
        ranked = sorted(freq, key=lambda t: (-freq[t], t))
        self._top_terms: List[str] = ranked[:top_terms]
        self._group_file: PageFile = disk.create_file(
            f"{file_prefix}.groups", category="inverted"
        )
        self._group_trees: Dict[FrozenSet[str], BPlusTree] = {}
        self._group_bits: Dict[FrozenSet[str], Set[int]] = {}
        self._build_groups()
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    def _build_groups(self) -> None:
        top = set(self._top_terms)
        staged: Dict[FrozenSet[str], List[Tuple[int, int, float]]] = {}
        ordered_edges = sorted(
            self._store.edges_with_objects(),
            key=lambda e: edge_zorder_key(self._curve, self._network, e),
        )
        for edge_id in ordered_edges:
            key = edge_zorder_key(self._curve, self._network, edge_id)
            for obj in self._store.objects_on_edge(edge_id):
                present = sorted(obj.keywords & top)
                for i in range(len(present)):
                    for j in range(i + 1, len(present)):
                        pair = frozenset((present[i], present[j]))
                        staged.setdefault(pair, []).append(
                            (key, obj.object_id, obj.position.offset)
                        )
                        self._group_bits.setdefault(pair, set()).add(edge_id)
        for pair in sorted(staged, key=sorted):
            edge_pages = pack_postings(self._group_file, staged[pair])
            tree = BPlusTree(self._group_file, key_bytes=8, value_bytes=8)
            tree.bulk_load(sorted(edge_pages.items()))
            self._group_trees[pair] = tree

    def _cover(self, terms: FrozenSet[str]) -> Tuple[List[FrozenSet[str]], List[str]]:
        """Greedy cover of the query terms by indexed pairs + singletons."""
        remaining = set(terms)
        pairs: List[FrozenSet[str]] = []
        ordered = sorted(remaining)
        for i in range(len(ordered)):
            for j in range(i + 1, len(ordered)):
                pair = frozenset((ordered[i], ordered[j]))
                if (
                    pair in self._group_trees
                    and ordered[i] in remaining
                    and ordered[j] in remaining
                ):
                    pairs.append(pair)
                    remaining.discard(ordered[i])
                    remaining.discard(ordered[j])
        return pairs, sorted(remaining)

    # ------------------------------------------------------------------
    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        pairs, singles = self._cover(terms)
        counters = self.counters
        # Signature test: group bits for pairs, plain bits for singles.
        sig_start = time.perf_counter()
        counters.signature_tests_run += 1
        for pair in pairs:
            if edge_id not in self._group_bits.get(pair, ()):
                counters.signature_seconds += time.perf_counter() - sig_start
                counters.signature_tests_pruned += 1
                counters.edges_pruned_by_signature += 1
                return []
        passed = self._signatures.test(edge_id, singles)
        counters.signature_seconds += time.perf_counter() - sig_start
        if not passed:
            counters.signature_tests_pruned += 1
            counters.edges_pruned_by_signature += 1
            return []

        self.counters.edges_probed += 1
        key = edge_zorder_key(self._curve, self._network, edge_id)
        loaded_total = 0
        intersection: Optional[Set[int]] = None
        for pair in pairs:
            pages = self._group_trees[pair].search(key)
            ids: Set[int] = set()
            for page_no in pages or []:
                for edge_key, oid, _off in self._group_file.read(page_no):
                    if edge_key == key:
                        loaded_total += 1
                        ids.add(oid)
            intersection = ids if intersection is None else intersection & ids
        for term in singles:
            tree = self._inverted._trees.get(term)
            pages = tree.search(key) if tree is not None else None
            ids = set()
            for page_no in pages or []:
                for edge_key, oid, _off in self._inverted._postings.read(page_no):
                    if edge_key == key:
                        loaded_total += 1
                        ids.add(oid)
            intersection = ids if intersection is None else intersection & ids

        self.counters.objects_loaded += loaded_total
        result_ids = intersection or set()
        if not result_ids and loaded_total:
            self.counters.false_hits += 1
            self.counters.false_hit_objects += loaded_total
        self.counters.results_returned += len(result_ids)
        out = [self._store.get(oid) for oid in result_ids]
        out.sort(key=lambda o: o.position.offset)
        return out

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return (
            self._inverted.size_bytes()
            + self._signatures.size_bytes()
            + self.group_size_bytes()
        )

    def group_size_bytes(self) -> int:
        """Extra space of the group lists and group signatures."""
        num_edges = self._network.num_edges
        sig_bytes = len(self._group_bits) * ((num_edges + 7) // 8)
        return self._group_file.size_bytes + sig_bytes

    @property
    def signatures(self) -> SignatureFile:
        return self._signatures

    @property
    def num_groups(self) -> int:
        return len(self._group_trees)
