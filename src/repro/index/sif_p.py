"""SIF-P — signature-based inverted file with edge partitioning (§3.3).

Dense edges are split into *virtual edges*, each with its own
signature, so that queries whose keywords occur on the edge but never
on the same object (or the same stretch of the edge) fail the signature
test instead of loading postings.  Postings are stored per virtual
edge, so a passing virtual edge only loads its own objects.

Only the densest edges are partitioned (the paper considers "the edges
whose number of objects ranked at the top 10%"), with a bounded number
of cuts (3 in the experiments); the partition is chosen by the greedy
(default) or exact DP solver against a query log.
"""

from __future__ import annotations

import bisect
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..network.objects import ObjectStore, SpatioTextualObject
from ..spatial.kdtree import KDTreePartition
from ..spatial.zorder import ZOrderCurve
from ..storage.bplustree import BPlusTree
from ..storage.pagefile import PAGE_SIZE, DiskManager, PageFile
from .base import ObjectIndex
from .inverted_file import edge_zorder_key
from .partition import QueryLog, dp_partition, greedy_partition, segments_from_cuts
from .query_log import frequency_edge_log
from .signature import PackedBitMatrix

__all__ = ["SIFPIndex", "LogBuilder"]

#: Bytes per posting: edge key, object id, offset.  Virtual-edge
#: membership is positional (postings are grouped by virtual edge on
#: the page), so SIF-P postings cost the same as SIF postings.
_POSTING_BYTES = 16
_POSTINGS_PER_PAGE = PAGE_SIZE // _POSTING_BYTES

#: A posting: ``(edge_key, virtual_idx, object_id, offset)``.
_Posting = Tuple[int, int, int, float]

#: Builds a per-edge query log from the keyword sets of its objects.
LogBuilder = Callable[[Sequence[FrozenSet[str]], np.random.Generator], QueryLog]


def _default_log_builder(
    object_keywords: Sequence[FrozenSet[str]], rng: np.random.Generator
) -> QueryLog:
    """SIF-P-Freq: frequency-weighted synthetic log (the paper default)."""
    return frequency_edge_log(object_keywords, num_queries=32, num_terms=3, rng=rng)


class SIFPIndex(ObjectIndex):
    """Partition-enhanced signature-based inverted file (index "SIF-P")."""

    name = "SIF-P"

    def __init__(
        self,
        store: ObjectStore,
        disk: DiskManager,
        curve: Optional[ZOrderCurve] = None,
        kd_partition: Optional[KDTreePartition] = None,
        max_cuts: int = 3,
        partition_fraction: float = 0.10,
        method: str = "greedy",
        log_builder: Optional[LogBuilder] = None,
        min_postings_pages: int = 1,
        seed: int = 7,
        file_prefix: str = "sifp",
    ) -> None:
        if method not in ("greedy", "dp"):
            raise ValueError("method must be 'greedy' or 'dp'")
        super().__init__(store)
        self._disk = disk
        self._curve = curve or ZOrderCurve()
        self._network = store.network
        self._max_cuts = max_cuts
        self._partition_fraction = partition_fraction
        self._method = method
        self._log_builder = log_builder or _default_log_builder
        self._min_postings_pages = min_postings_pages
        self._rng = np.random.default_rng(seed)
        if kd_partition is None:
            centers = [e.center for e in store.network.edges()]
            kd_partition = KDTreePartition(centers)
        self._kd = kd_partition

        self._postings: PageFile = disk.create_file(
            f"{file_prefix}.postings", category="inverted"
        )
        self._tree_file: PageFile = disk.create_file(
            f"{file_prefix}.trees", category="inverted"
        )
        self._trees: Dict[str, BPlusTree] = {}
        self._pages_per_term: Dict[str, int] = {}
        #: edge_id -> inclusive (start, end) object ranges (visiting order)
        self._segments: Dict[int, List[Tuple[int, int]]] = {}
        #: edge_id -> cut *offsets*: the offset of the first object of
        #: each segment after the first, frozen at build time.  The
        #: build-time cuts are positional (between object ranks), but
        #: ranks shift under insert/delete; anchoring each cut at an
        #: offset makes virtual-edge membership a stable function of
        #: position, so dynamic maintenance can place new objects and
        #: recompute the positional ranges from the current store.
        self._boundaries: Dict[int, List[float]] = {}
        #: Packed per-term bitset rows over a *global* virtual-edge slot
        #: space: every edge owns a contiguous run of
        #: ``max(1, len(segments))`` slots, assigned at build (or lazily
        #: for edges first populated dynamically).  Slot counts are
        #: stable — ``_recompute_segments`` preserves the segment count
        #: — so a slot id is a permanent name for ``(edge, v_idx)``.
        self._matrix = PackedBitMatrix(0)
        #: edge_id -> first slot of its run
        self._slot_base: Dict[int, int] = {}
        #: slot -> owning edge (size accounting walks rows back to edges)
        self._slot_edge: List[int] = []
        self._unsigned_terms: Set[str] = set()

        start = time.perf_counter()
        self._build()
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _choose_partitioned_edges(self) -> Set[int]:
        """Edges dense enough to partition (top fraction by object count)."""
        counts = [
            (len(self._store.objects_on_edge(e)), e)
            for e in self._store.edges_with_objects()
        ]
        counts = [(n, e) for n, e in counts if n >= 2]
        if not counts:
            return set()
        counts.sort(reverse=True)
        keep = max(1, int(round(len(counts) * self._partition_fraction)))
        return {e for _n, e in counts[:keep]}

    def _partition_edge(self, object_keywords: List[FrozenSet[str]]) -> Tuple[int, ...]:
        log = self._log_builder(object_keywords, self._rng)
        if not log:
            return ()
        if self._method == "dp":
            cuts, _cost = dp_partition(object_keywords, self._max_cuts, log)
        else:
            cuts, _cost = greedy_partition(object_keywords, self._max_cuts, log)
        return cuts

    def _alloc_slots(self, edge_id: int, count: int) -> int:
        """Reserve ``count`` contiguous virtual-edge slots for an edge."""
        base = len(self._slot_edge)
        self._slot_base[edge_id] = base
        self._slot_edge.extend([edge_id] * count)
        self._matrix.ensure_slots(len(self._slot_edge))
        return base

    def _slot(self, edge_id: int, v_idx: int) -> int:
        """Global slot of ``(edge_id, v_idx)`` (lazily allocates one
        slot for edges first populated after the build)."""
        base = self._slot_base.get(edge_id)
        if base is None:
            base = self._alloc_slots(edge_id, 1)
        return base + v_idx

    def _build(self) -> None:
        to_partition = self._choose_partitioned_edges()
        # term -> postings in (edge key, virtual idx) order
        staged: Dict[str, List[_Posting]] = {}
        staged_bits: Dict[str, Set[int]] = {}
        ordered_edges = sorted(
            self._store.edges_with_objects(),
            key=lambda e: edge_zorder_key(self._curve, self._network, e),
        )
        for edge_id in ordered_edges:
            objects = self._store.objects_on_edge(edge_id)
            kws = [o.keywords for o in objects]
            cuts: Tuple[int, ...] = ()
            if edge_id in to_partition and len(objects) >= 2:
                cuts = self._partition_edge(kws)
            segments = segments_from_cuts(len(objects), cuts)
            self._segments[edge_id] = segments
            self._boundaries[edge_id] = [
                objects[seg_start].position.offset
                for seg_start, _seg_end in segments[1:]
            ]
            base = self._alloc_slots(edge_id, max(1, len(segments)))
            key = edge_zorder_key(self._curve, self._network, edge_id)
            for v_idx, (seg_start, seg_end) in enumerate(segments):
                for obj in objects[seg_start : seg_end + 1]:
                    posting = (key, v_idx, obj.object_id, obj.position.offset)
                    for term in obj.keywords:
                        staged.setdefault(term, []).append(posting)
                        staged_bits.setdefault(term, set()).add(base + v_idx)

        for term in sorted(staged):
            postings = staged[term]
            # Pack into pages; map (edge_key, v_idx) -> page numbers.
            ve_pages: Dict[Tuple[int, int], List[int]] = {}
            for s in range(0, len(postings), _POSTINGS_PER_PAGE):
                chunk = postings[s : s + _POSTINGS_PER_PAGE]
                page_no = self._postings.allocate(
                    chunk, size_bytes=len(chunk) * _POSTING_BYTES
                )
                for edge_key, v_idx, _oid, _off in chunk:
                    pages = ve_pages.setdefault((edge_key, v_idx), [])
                    if not pages or pages[-1] != page_no:
                        pages.append(page_no)
            # Group by edge key for the tree: value = {v_idx: pages}.
            per_edge: Dict[int, Dict[int, List[int]]] = {}
            for (edge_key, v_idx), pages in ve_pages.items():
                per_edge.setdefault(edge_key, {})[v_idx] = pages
            entries = sorted(per_edge.items())
            tree = BPlusTree(self._tree_file, key_bytes=8, value_bytes=8)
            tree.bulk_load(entries)
            self._trees[term] = tree
            self._pages_per_term[term] = len(
                {p for pages in ve_pages.values() for p in pages}
            )

        # The paper's rule: rare keywords (inverted file fits in one
        # page) carry no signature; their bits always pass.
        for term, pages in self._pages_per_term.items():
            if pages < self._min_postings_pages:
                self._unsigned_terms.add(term)
                staged_bits.pop(term, None)
        for term, slots in staged_bits.items():
            self._matrix.bulk_set(term, slots)

    # ------------------------------------------------------------------
    # Signature test per virtual edge
    # ------------------------------------------------------------------
    @property
    def num_signed_terms(self) -> int:
        return self._matrix.num_rows

    def _bit(self, edge_id: int, v_idx: int, term: str) -> bool:
        if term in self._unsigned_terms:
            return True
        if term not in self._matrix:
            return False  # term absent from the whole dataset
        base = self._slot_base.get(edge_id)
        if base is None:
            return False  # edge never received any bit
        return self._matrix.probe(
            self._matrix.combined((term,)), base + v_idx
        )

    def segments_of(self, edge_id: int) -> List[Tuple[int, int]]:
        """Virtual-edge object ranges of an edge (single range if uncut)."""
        segs = self._segments.get(edge_id)
        if segs is not None:
            return segs
        return [(0, max(0, len(self._store.objects_on_edge(edge_id)) - 1))]

    def num_partitioned_edges(self) -> int:
        return sum(1 for segs in self._segments.values() if len(segs) > 1)

    # ------------------------------------------------------------------
    # Algorithm 2 with per-virtual-edge signatures
    # ------------------------------------------------------------------
    def load_objects(
        self, edge_id: int, terms: FrozenSet[str]
    ) -> List[SpatioTextualObject]:
        segments = self._segments.get(edge_id)
        if segments is None:
            return []  # no objects on this edge at all
        counters = self.counters
        sig_start = time.perf_counter()
        # Batched per-virtual-edge test: AND the signed terms' rows once
        # and gather every segment's bit from the combined row in one
        # kernel call.  A non-unsigned term with no row means "absent
        # from the whole dataset": every segment fails.
        matrix = self._matrix
        signed: List[str] = []
        absent = False
        for term in terms:
            if term in self._unsigned_terms:
                continue
            if term not in matrix:
                absent = True
                break
            signed.append(term)
        if absent:
            passing: List[int] = []
        else:
            base = self._slot_base.get(edge_id)
            if base is None:
                # Edge owns no slots (no bit was ever set for it): only
                # an all-unsigned query can pass.
                passing = [] if signed else list(range(len(segments)))
            else:
                passing = matrix.probe_range(
                    matrix.combined(signed), base, len(segments)
                )
        counters.signature_seconds += time.perf_counter() - sig_start
        counters.signature_tests_run += 1
        if not passing:
            counters.signature_tests_pruned += 1
            counters.edges_pruned_by_signature += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "signature.prune", edge=edge_id, partition="SIF-P",
                    segments=len(segments),
                )
            return []
        self.counters.edges_probed += 1
        if self.tracer.enabled and len(passing) < len(segments):
            # Partial prune: some virtual edges failed the signature
            # test, so their postings are never read — the §3.3 win.
            self.tracer.event(
                "signature.partial_prune", edge=edge_id, partition="SIF-P",
                segments=len(segments), passing=len(passing),
            )
        key = edge_zorder_key(self._curve, self._network, edge_id)

        # One B+-tree descent per query keyword (as in SIF), then only
        # the postings pages of passing virtual edges are read.
        per_term_pages: Dict[str, Dict[int, List[int]]] = {}
        for term in terms:
            tree = self._trees.get(term)
            value = tree.search(key) if tree is not None else None
            per_term_pages[term] = dict(value) if value else {}

        result_ids: Set[int] = set()
        for v_idx in passing:
            loaded = 0
            intersection: Optional[Set[int]] = None
            for term in terms:
                pages = per_term_pages[term].get(v_idx)
                if pages is None:
                    intersection = set()
                    continue
                ids: Set[int] = set()
                for page_no in pages:
                    for edge_key, pv_idx, oid, _off in self._postings.read(page_no):
                        if edge_key == key and pv_idx == v_idx:
                            loaded += 1
                            ids.add(oid)
                intersection = ids if intersection is None else intersection & ids
            self.counters.objects_loaded += loaded
            hits = intersection or set()
            if not hits and loaded:
                self.counters.false_hits += 1
                self.counters.false_hit_objects += loaded
            result_ids.update(hits)

        self.counters.results_returned += len(result_ids)
        out = [self._store.get(oid) for oid in result_ids]
        out.sort(key=lambda o: o.position.offset)
        return out

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return (
            self._postings.size_bytes
            + self._tree_file.size_bytes
            + self.signature_size_bytes()
        )

    def signature_size_bytes(self) -> int:
        """Compacted signature size.

        Edge-level bits are compacted against the KD-tree exactly as in
        SIF; each partitioned edge then adds one bit per extra virtual
        edge for every signed keyword present on it.
        """
        total = 0
        extra_bits = 0
        slot_edge = self._slot_edge
        for term in self._matrix.keys():
            edges = {slot_edge[s] for s in self._matrix.slots_of(term)}
            total += self._kd.compact_size_bytes(edges)
            for edge_id in edges:
                segs = self._segments.get(edge_id)
                if segs and len(segs) > 1:
                    extra_bits += len(segs) - 1
        return total + (extra_bits + 7) // 8

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def _virtual_index(self, edge_id: int, offset: float) -> int:
        """Virtual edge containing ``offset`` (cuts are offsets)."""
        boundaries = self._boundaries.get(edge_id)
        if not boundaries:
            return 0
        return bisect.bisect_right(boundaries, offset)

    def _recompute_segments(self, edge_id: int) -> None:
        """Rebuild the positional (start, end) ranges from the cut
        offsets and the store's current visiting order.

        An emptied virtual edge keeps its slot as a ``(start, start-1)``
        range so surviving segments keep their ``v_idx`` — postings and
        signature bits reference segments by index.
        """
        boundaries = self._boundaries.setdefault(edge_id, [])
        counts = [0] * (len(boundaries) + 1)
        for obj in self._store.objects_on_edge(edge_id):
            counts[bisect.bisect_right(boundaries, obj.position.offset)] += 1
        segments: List[Tuple[int, int]] = []
        start = 0
        for count in counts:
            segments.append((start, start + count - 1))
            start += count
        self._segments[edge_id] = segments

    def insert_object(self, obj: SpatioTextualObject) -> None:
        """Insert one object's postings, bits and segment membership.

        Mirrors :meth:`InvertedFileIndex.insert_object` but the tree
        value is ``{v_idx: pages}`` and the posting carries the virtual
        edge the object's offset falls into.
        """
        edge_id = obj.position.edge_id
        key = edge_zorder_key(self._curve, self._network, edge_id)
        v_idx = self._virtual_index(edge_id, obj.position.offset)
        posting = (key, v_idx, obj.object_id, obj.position.offset)
        for term in obj.keywords:
            tree = self._trees.get(term)
            if tree is None:
                page_no = self._postings.allocate(
                    [posting], size_bytes=_POSTING_BYTES
                )
                tree = BPlusTree(self._tree_file, key_bytes=8, value_bytes=8)
                tree.bulk_load([(key, {v_idx: [page_no]})])
                self._trees[term] = tree
                self._pages_per_term[term] = 1
            else:
                value = tree.search(key)
                if value is None:
                    page_no = self._postings.allocate(
                        [posting], size_bytes=_POSTING_BYTES
                    )
                    tree.insert(key, {v_idx: [page_no]})
                    self._pages_per_term[term] = (
                        self._pages_per_term.get(term, 0) + 1
                    )
                else:
                    pages = value.get(v_idx)
                    if pages is None:
                        page_no = self._postings.allocate(
                            [posting], size_bytes=_POSTING_BYTES
                        )
                        value[v_idx] = [page_no]
                        self._pages_per_term[term] += 1
                    else:
                        last = self._postings.read_unbuffered(pages[-1])
                        if len(last) < _POSTINGS_PER_PAGE:
                            last.append(posting)
                        else:
                            page_no = self._postings.allocate(
                                [posting], size_bytes=_POSTING_BYTES
                            )
                            pages.append(page_no)
                            self._pages_per_term[term] += 1
            if term not in self._unsigned_terms:
                self._matrix.set(term, self._slot(edge_id, v_idx))
        self._recompute_segments(edge_id)

    def delete_object(self, obj: SpatioTextualObject) -> None:
        """Remove one object's postings and any orphaned bits.

        Must run after ``ObjectStore.remove`` (segment recomputation
        reads the store).  Postings are matched by ``(edge, object_id)``
        across every virtual edge of the keyword's tree value — robust
        even if duplicate offsets straddling a cut made the build-time
        ``v_idx`` differ from what the offset resolves to today.  A
        virtual edge's bit is cleared once no posting for the term
        survives in it.
        """
        edge_id = obj.position.edge_id
        key = edge_zorder_key(self._curve, self._network, edge_id)
        for term in obj.keywords:
            tree = self._trees.get(term)
            value = tree.search(key) if tree is not None else None
            if not value:
                continue
            for v_idx, pages in value.items():
                survivors = False
                for page_no in pages:
                    payload = self._postings.read_unbuffered(page_no)
                    kept = [
                        p for p in payload
                        if not (p[0] == key and p[2] == obj.object_id)
                    ]
                    if len(kept) != len(payload):
                        self._postings.rewrite(
                            page_no, kept,
                            size_bytes=len(kept) * _POSTING_BYTES,
                        )
                    if not survivors and any(
                        p[0] == key and p[1] == v_idx for p in kept
                    ):
                        survivors = True
                if not survivors and term in self._matrix:
                    self._matrix.clear(term, self._slot(edge_id, v_idx))
        self._recompute_segments(edge_id)

    def rescale_edge(self, edge_id: int, factor: float) -> None:
        """Rescale the cut offsets after an edge reweight.

        Offsets are in weight units; a reweight moves every resident
        object's offset by ``factor`` (``ObjectStore.rescale_edge_offsets``
        runs first), so the cuts move with them and virtual-edge
        membership is preserved exactly.  Stored posting offsets go
        stale, which is harmless: ``load_objects`` resolves objects
        through the store and never trusts the posting's offset.
        """
        boundaries = self._boundaries.get(edge_id)
        if boundaries:
            self._boundaries[edge_id] = [b * factor for b in boundaries]
        self._recompute_segments(edge_id)
