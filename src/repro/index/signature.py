"""Per-keyword edge signatures (paper §3.1), packed as bitset rows.

``I(e, t) = 1`` iff at least one object with keyword ``t`` lies on edge
``e``.  An edge can be skipped — zero I/O — when any query keyword has
``I(e, t) = 0``, exploiting the AND semantics of the boolean query.

Following the paper:

* no signature is built for a keyword whose inverted file fits into one
  data page (such keywords cannot prune meaningfully and would bloat the
  signature file);
* signature size is accounted by compacting each keyword's bitmap
  against a KD-tree over edge centres, collapsing subtrees whose leaves
  share the same bit.

Signatures are memory-resident at query time ("can be easily fit into
the main memory"), so the test itself costs no I/O.

Storage layout: one packed ``uint64`` bitset row per signed keyword,
``ceil(num_slots / 64)`` words wide, over a dense slot space (edge ids
for SIF, virtual-edge slots for SIF-P).  The AND over a query's terms
is computed once per distinct term set and cached until the next
``set``/``clear`` bumps the version; ``test`` then costs one
word-index/mask probe, and :meth:`PackedBitMatrix.probe_many` answers a
whole batch of slots with one vectorised gather.  Without numpy the
rows fall back to arbitrary-precision Python ints, which are packed
bitmaps with the same semantics.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..network.objects import ObjectStore
from ..nplib import HAVE_NUMPY, np
from ..spatial.kdtree import KDTreePartition
from .inverted_file import InvertedFileIndex

__all__ = ["PackedBitMatrix", "SignatureFile"]

#: Combined-row cache entries kept before the cache is dropped.  Query
#: workloads reuse a handful of term sets; dynamic churn invalidates by
#: version, so the cap only guards against adversarial term diversity.
_COMBINED_CACHE_CAP = 512


class PackedBitMatrix:
    """Packed bitset rows over a dense slot space, one row per key.

    The matrix is the storage engine shared by :class:`SignatureFile`
    (slots = edge ids) and SIF-P (slots = global virtual-edge slots).
    Key-existence policy — whether an absent key passes conservatively
    (SIF) or fails everywhere (SIF-P) — is the *caller's* concern: the
    caller selects which keys participate in :meth:`combined` and the
    matrix only ANDs the selected rows.

    Rows are ``uint64`` numpy vectors when numpy is available and
    arbitrary-precision Python ints otherwise; both are packed bitmaps
    with identical observable semantics.
    """

    def __init__(self, num_slots: int) -> None:
        self._num_slots = max(0, int(num_slots))
        self._row_of: Dict[str, int] = {}
        self._version = 0
        self._combined_cache: Dict[
            Tuple[int, ...], Tuple[int, object]
        ] = {}
        self._cache_lock = threading.Lock()
        if HAVE_NUMPY:
            self._words = max(1, (self._num_slots + 63) // 64)
            self._rows = np.zeros((0, self._words), dtype=np.uint64)
            self._used_rows = 0
            self._int_rows: List[int] = []
        else:
            self._words = max(1, (self._num_slots + 63) // 64)
            self._rows = None
            self._used_rows = 0
            self._int_rows = []

    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return self._num_slots

    @property
    def num_rows(self) -> int:
        return len(self._row_of)

    @property
    def num_words(self) -> int:
        """Words per row — ``ceil(num_slots / 64)`` (at least one)."""
        return max(1, (self._num_slots + 63) // 64)

    @property
    def version(self) -> int:
        """Bumped on every mutation; invalidates cached combined rows."""
        return self._version

    def __contains__(self, key: str) -> bool:
        return key in self._row_of

    def keys(self) -> Iterable[str]:
        return self._row_of.keys()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def ensure_slots(self, num_slots: int) -> None:
        """Grow the slot space (never shrinks; widens rows as needed)."""
        if num_slots <= self._num_slots:
            return
        self._num_slots = int(num_slots)
        new_words = max(1, (self._num_slots + 63) // 64)
        if new_words > self._words:
            if HAVE_NUMPY:
                widened = np.zeros(
                    (self._rows.shape[0], new_words), dtype=np.uint64
                )
                widened[:, : self._words] = self._rows
                self._rows = widened
            self._words = new_words

    def add_row(self, key: str) -> int:
        """Allocate an all-zero row for ``key`` (idempotent)."""
        row = self._row_of.get(key)
        if row is not None:
            return row
        if HAVE_NUMPY:
            row = self._used_rows
            if row >= self._rows.shape[0]:
                capacity = max(8, self._rows.shape[0] * 2, row + 1)
                grown = np.zeros((capacity, self._words), dtype=np.uint64)
                grown[: self._rows.shape[0]] = self._rows
                self._rows = grown
            self._used_rows += 1
        else:
            row = len(self._int_rows)
            self._int_rows.append(0)
        self._row_of[key] = row
        self._version += 1
        return row

    def drop_row(self, key: str) -> None:
        """Forget ``key`` (its physical row is zeroed and abandoned)."""
        row = self._row_of.pop(key, None)
        if row is None:
            return
        if HAVE_NUMPY:
            self._rows[row, :] = 0
        else:
            self._int_rows[row] = 0
        self._version += 1

    def set(self, key: str, slot: int) -> None:
        """Set bit ``slot`` in ``key``'s row, allocating it if absent."""
        if slot >= self._num_slots:
            self.ensure_slots(slot + 1)
        row = self._row_of.get(key)
        if row is None:
            row = self.add_row(key)
        if HAVE_NUMPY:
            self._rows[row, slot >> 6] |= np.uint64(1 << (slot & 63))
        else:
            self._int_rows[row] |= 1 << slot
        self._version += 1

    def clear(self, key: str, slot: int) -> None:
        """Clear bit ``slot`` in ``key``'s row; no-op for absent keys.

        An emptied row is kept: all-zero means "this key occurs in no
        slot", which prunes every probe — dropping the row would instead
        make the key's absence read as a pass for callers that treat
        missing keys conservatively.
        """
        row = self._row_of.get(key)
        if row is None:
            return
        if 0 <= slot < self._num_slots:
            if HAVE_NUMPY:
                self._rows[row, slot >> 6] &= ~np.uint64(1 << (slot & 63))
            else:
                self._int_rows[row] &= ~(1 << slot)
        self._version += 1

    def bulk_set(self, key: str, slots: Iterable[int]) -> None:
        """Set many bits in one row (build-time path, one version bump)."""
        slots = list(slots)
        if not slots:
            self.add_row(key)
            return
        top = max(slots)
        if top >= self._num_slots:
            self.ensure_slots(top + 1)
        row = self.add_row(key)
        if HAVE_NUMPY:
            idx = np.asarray(slots, dtype=np.int64)
            words = idx >> 6
            masks = np.left_shift(
                np.uint64(1), (idx & 63).astype(np.uint64)
            )
            np.bitwise_or.at(self._rows[row], words, masks)
        else:
            acc = self._int_rows[row]
            for slot in slots:
                acc |= 1 << slot
            self._int_rows[row] = acc
        self._version += 1

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def combined(self, keys: Sequence[str]):
        """AND of the given keys' rows; ``None`` means "always pass".

        Every key must be present (callers apply their own policy for
        absent keys first).  The result is cached per distinct key set
        until the next mutation.
        """
        if not keys:
            return None
        rows = sorted(self._row_of[k] for k in set(keys))
        cache_key = tuple(rows)
        version = self._version
        hit = self._combined_cache.get(cache_key)
        if hit is not None and hit[0] == version:
            return hit[1]
        if HAVE_NUMPY:
            if len(rows) == 1:
                combined = self._rows[rows[0]]
            else:
                combined = np.bitwise_and.reduce(
                    self._rows[np.asarray(rows, dtype=np.intp)], axis=0
                )
        else:
            combined = self._int_rows[rows[0]]
            for r in rows[1:]:
                combined &= self._int_rows[r]
        with self._cache_lock:
            if len(self._combined_cache) >= _COMBINED_CACHE_CAP:
                self._combined_cache.clear()
            self._combined_cache[cache_key] = (version, combined)
        return combined

    def probe(self, combined, slot: int) -> bool:
        """Bit ``slot`` of a combined row (``None`` passes everything)."""
        if combined is None:
            return True
        if slot < 0 or slot >= self._num_slots:
            return False
        if HAVE_NUMPY:
            return bool(
                (int(combined[slot >> 6]) >> (slot & 63)) & 1
            )
        return bool((combined >> slot) & 1)

    def probe_many(self, combined, slots: Sequence[int]) -> List[bool]:
        """Batched :meth:`probe` over many slots (vectorised gather)."""
        if combined is None:
            return [True] * len(slots)
        if HAVE_NUMPY and len(slots):
            idx = np.asarray(slots, dtype=np.int64)
            words = combined[idx >> 6]
            shifts = (idx & 63).astype(np.uint64)
            bits = (words >> shifts) & np.uint64(1)
            return bits.astype(bool).tolist()
        return [self.probe(combined, s) for s in slots]

    def probe_range(self, combined, start: int, count: int) -> List[int]:
        """Indices ``i in [0, count)`` whose slot ``start + i`` is set."""
        if combined is None:
            return list(range(count))
        if HAVE_NUMPY and count:
            idx = np.arange(start, start + count, dtype=np.int64)
            words = combined[idx >> 6]
            shifts = (idx & 63).astype(np.uint64)
            bits = (words >> shifts) & np.uint64(1)
            return np.flatnonzero(bits).tolist()
        if not HAVE_NUMPY and count:
            window = (combined >> start) & ((1 << count) - 1)
            out: List[int] = []
            while window:
                low = window & -window
                out.append(low.bit_length() - 1)
                window ^= low
            return out
        return []

    def to_bigint(self, combined) -> Optional[int]:
        """A combined row as one arbitrary-precision int (or ``None``).

        Scalar probes on a Python int (``(bits >> slot) & 1``) beat
        numpy scalar indexing, which pays per-element boxing; callers
        that probe edge-at-a-time (the INE load path) convert once per
        cached term set and shift thereafter.
        """
        if combined is None:
            return None
        if isinstance(combined, int):
            return combined
        return int.from_bytes(
            combined.astype("<u8", copy=False).tobytes(), "little"
        )

    def slots_of(self, key: str) -> FrozenSet[int]:
        """The set bits of one key's row (size accounting / edges_of)."""
        row = self._row_of.get(key)
        if row is None:
            return frozenset()
        out: List[int] = []
        if HAVE_NUMPY:
            words = self._rows[row].tolist()
        else:
            value = self._int_rows[row]
            words = []
            while value:
                words.append(value & 0xFFFFFFFFFFFFFFFF)
                value >>= 64
        for wi, word in enumerate(words):
            base = wi << 6
            while word:
                low = word & -word
                out.append(base + low.bit_length() - 1)
                word ^= low
        return frozenset(out)

    def size_bytes(self) -> int:
        """Packed size: rows × words × 8 bytes."""
        return self.num_rows * self.num_words * 8


class SignatureFile:
    """Edge signatures for every (sufficiently frequent) keyword."""

    def __init__(
        self,
        store: ObjectStore,
        inverted: Optional[InvertedFileIndex] = None,
        min_postings_pages: int = 1,
        kd_partition: Optional[KDTreePartition] = None,
    ) -> None:
        """Build signatures from the object store.

        Parameters
        ----------
        store:
            Object store the signatures summarise.
        inverted:
            The underlying inverted file; used to apply the "skip
            keywords whose inverted file fits in one page" rule.  When
            ``None`` every keyword gets a signature.
        min_postings_pages:
            Minimum number of postings pages for a keyword to receive a
            signature.  The paper skips keywords whose inverted file
            fits in one page (``2``); that threshold is scale-dependent
            — at this reproduction's ~1/100 data scale a mid-frequency
            keyword rarely exceeds one 4 KiB page, so the default signs
            every keyword (``1``) and the paper rule is opt-in.
        kd_partition:
            KD-tree over edge centres used for size accounting; when
            ``None`` sizes fall back to packed-bitmap accounting.
        """
        self._store = store
        self._kd = kd_partition
        self._matrix = PackedBitMatrix(store.network.num_edges)
        skipped: Set[str] = set()
        staged: Dict[str, Set[int]] = {}
        for edge_id in store.edges_with_objects():
            for obj in store.objects_on_edge(edge_id):
                for term in obj.keywords:
                    staged.setdefault(term, set()).add(edge_id)
        for term, edges in staged.items():
            if (
                inverted is not None
                and inverted.postings_pages_of(term) < min_postings_pages
            ):
                skipped.add(term)
                continue
            self._matrix.bulk_set(term, edges)
        self._skipped = frozenset(skipped)
        #: term-set → (version, combined row, bigint view); the INE
        #: load path probes edge-at-a-time under one frozen term set,
        #: so the per-call cost must be a dict hit plus one int shift.
        self._query_memo: Dict[FrozenSet[str], Tuple] = {}

    # ------------------------------------------------------------------
    @property
    def num_signed_terms(self) -> int:
        return self._matrix.num_rows

    @property
    def skipped_terms(self) -> FrozenSet[str]:
        """Keywords too rare to receive a signature."""
        return self._skipped

    @property
    def matrix(self) -> PackedBitMatrix:
        """The packed row storage (exposed for batched callers)."""
        return self._matrix

    def has_signature(self, term: str) -> bool:
        return term in self._matrix

    def bit(self, edge_id: int, term: str) -> bool:
        """``I(e, t)``; keywords without a signature report ``True``."""
        if term not in self._matrix:
            return True
        return self._matrix.probe(self._matrix.combined((term,)), edge_id)

    def combined_row(self, terms: Iterable[str]):
        """AND of the signed query terms' rows, ``None`` = always pass.

        Unsigned (skipped or never-seen) terms are excluded — they
        conservatively pass, so they cannot tighten the AND.
        """
        matrix = self._matrix
        signed = [t for t in terms if t in matrix]
        return matrix.combined(signed)

    def _memoised_row(self, terms: Iterable[str]) -> Tuple:
        """``(combined, bigint)`` for a term set, memoised per version.

        Keyed by the frozen term set so the per-edge ``test`` calls a
        query issues cost one dict hit; invalidated by the matrix
        version like the matrix's own combined-row cache.
        """
        key = (
            terms if isinstance(terms, frozenset) else frozenset(terms)
        )
        matrix = self._matrix
        version = matrix.version
        hit = self._query_memo.get(key)
        if hit is not None and hit[0] == version:
            return hit[1], hit[2]
        combined = self.combined_row(key)
        bits = matrix.to_bigint(combined)
        if len(self._query_memo) >= 64:
            self._query_memo.clear()
        self._query_memo[key] = (version, combined, bits)
        return combined, bits

    def test(self, edge_id: int, terms: Iterable[str]) -> bool:
        """AND-semantics signature test: ``False`` means *prune the edge*."""
        _combined, bits = self._memoised_row(terms)
        if bits is None:
            return True
        if edge_id < 0:
            return False
        return bool((bits >> edge_id) & 1)

    def test_many(
        self, edge_ids: Sequence[int], terms: Iterable[str]
    ) -> List[bool]:
        """Batched :meth:`test` over many edges with one combined AND."""
        combined, _bits = self._memoised_row(terms)
        return self._matrix.probe_many(combined, edge_ids)

    def edges_of(self, term: str) -> FrozenSet[int]:
        return self._matrix.slots_of(term)

    def set_bit(self, edge_id: int, term: str) -> None:
        """Set ``I(e, t) = 1`` (dynamic maintenance).

        An unsigned keyword stays unsigned: its bit already reports
        ``True`` conservatively, so no update is needed.
        """
        if term in self._skipped:
            return
        self._matrix.set(term, edge_id)

    def clear_bit(self, edge_id: int, term: str) -> None:
        """Set ``I(e, t) = 0`` after the last ``t``-object left ``e``.

        The caller must verify no object with ``t`` remains on the edge
        — a prematurely cleared bit causes false *misses*, which break
        correctness (a stale 1-bit only costs a wasted probe).  Unsigned
        keywords stay unsigned (they conservatively report ``True``).
        An emptied row is kept: it means "this term occurs on no edge",
        which prunes every probe — dropping it would instead make the
        term report True everywhere.
        """
        if term in self._skipped:
            return
        if term in self._matrix:
            self._matrix.clear(term, edge_id)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Compacted signature size across all signed keywords."""
        if self._kd is not None:
            return sum(
                self._kd.compact_size_bytes(self._matrix.slots_of(term))
                for term in self._matrix.keys()
            )
        # Raw fallback: the actual packed representation — one
        # ceil(num_edges / 64)-word uint64 row per signed keyword.
        return self._matrix.size_bytes()
