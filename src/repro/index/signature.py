"""Per-keyword edge signatures (paper §3.1).

``I(e, t) = 1`` iff at least one object with keyword ``t`` lies on edge
``e``.  An edge can be skipped — zero I/O — when any query keyword has
``I(e, t) = 0``, exploiting the AND semantics of the boolean query.

Following the paper:

* no signature is built for a keyword whose inverted file fits into one
  data page (such keywords cannot prune meaningfully and would bloat the
  signature file);
* signature size is accounted by compacting each keyword's bitmap
  against a KD-tree over edge centres, collapsing subtrees whose leaves
  share the same bit.

Signatures are memory-resident at query time ("can be easily fit into
the main memory"), so the test itself costs no I/O.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set

from ..network.objects import ObjectStore
from ..spatial.kdtree import KDTreePartition
from .inverted_file import InvertedFileIndex

__all__ = ["SignatureFile"]


class SignatureFile:
    """Edge signatures for every (sufficiently frequent) keyword."""

    def __init__(
        self,
        store: ObjectStore,
        inverted: Optional[InvertedFileIndex] = None,
        min_postings_pages: int = 1,
        kd_partition: Optional[KDTreePartition] = None,
    ) -> None:
        """Build signatures from the object store.

        Parameters
        ----------
        store:
            Object store the signatures summarise.
        inverted:
            The underlying inverted file; used to apply the "skip
            keywords whose inverted file fits in one page" rule.  When
            ``None`` every keyword gets a signature.
        min_postings_pages:
            Minimum number of postings pages for a keyword to receive a
            signature.  The paper skips keywords whose inverted file
            fits in one page (``2``); that threshold is scale-dependent
            — at this reproduction's ~1/100 data scale a mid-frequency
            keyword rarely exceeds one 4 KiB page, so the default signs
            every keyword (``1``) and the paper rule is opt-in.
        kd_partition:
            KD-tree over edge centres used for size accounting; when
            ``None`` sizes fall back to raw-bitmap accounting.
        """
        self._store = store
        self._kd = kd_partition
        self._bits: Dict[str, Set[int]] = {}
        skipped: Set[str] = set()
        staged: Dict[str, Set[int]] = {}
        for edge_id in store.edges_with_objects():
            for obj in store.objects_on_edge(edge_id):
                for term in obj.keywords:
                    staged.setdefault(term, set()).add(edge_id)
        for term, edges in staged.items():
            if (
                inverted is not None
                and inverted.postings_pages_of(term) < min_postings_pages
            ):
                skipped.add(term)
                continue
            self._bits[term] = edges
        self._skipped = frozenset(skipped)
        #: Lifetime counts of AND-semantics tests run and tests that
        #: pruned their edge; sampled as deltas by the tracing layer's
        #: per-query ``signature.filter`` summary.
        self.tests_run = 0
        self.tests_pruned = 0

    # ------------------------------------------------------------------
    @property
    def num_signed_terms(self) -> int:
        return len(self._bits)

    @property
    def skipped_terms(self) -> FrozenSet[str]:
        """Keywords too rare to receive a signature."""
        return self._skipped

    def has_signature(self, term: str) -> bool:
        return term in self._bits

    def bit(self, edge_id: int, term: str) -> bool:
        """``I(e, t)``; keywords without a signature report ``True``."""
        edges = self._bits.get(term)
        if edges is None:
            return True
        return edge_id in edges

    def test(self, edge_id: int, terms: Iterable[str]) -> bool:
        """AND-semantics signature test: ``False`` means *prune the edge*."""
        self.tests_run += 1
        passed = all(self.bit(edge_id, t) for t in terms)
        if not passed:
            self.tests_pruned += 1
        return passed

    def edges_of(self, term: str) -> FrozenSet[str]:
        return frozenset(self._bits.get(term, frozenset()))

    def set_bit(self, edge_id: int, term: str) -> None:
        """Set ``I(e, t) = 1`` (dynamic maintenance).

        An unsigned keyword stays unsigned: its bit already reports
        ``True`` conservatively, so no update is needed.
        """
        if term in self._skipped:
            return
        self._bits.setdefault(term, set()).add(edge_id)

    def clear_bit(self, edge_id: int, term: str) -> None:
        """Set ``I(e, t) = 0`` after the last ``t``-object left ``e``.

        The caller must verify no object with ``t`` remains on the edge
        — a prematurely cleared bit causes false *misses*, which break
        correctness (a stale 1-bit only costs a wasted probe).  Unsigned
        keywords stay unsigned (they conservatively report ``True``).
        """
        if term in self._skipped:
            return
        edges = self._bits.get(term)
        if edges is not None:
            # An emptied set is kept: it means "this term occurs on no
            # edge", which prunes every probe — dropping the entry would
            # instead make the term report True everywhere.
            edges.discard(edge_id)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Compacted signature size across all signed keywords."""
        if self._kd is not None:
            return sum(
                self._kd.compact_size_bytes(edges) for edges in self._bits.values()
            )
        num_edges = self._store.network.num_edges
        return len(self._bits) * ((num_edges + 7) // 8)
