"""Road-network substrate: graph model, CCAM layout, objects, distances."""

from .ccam import CCAMStore
from .distance import (
    AdjacencyProvider,
    PairwiseDistanceComputer,
    network_distance,
    position_distance_from_node_map,
    seed_distances,
    single_source_distances,
)
from .graph import Edge, NetworkPosition, Node, RoadNetwork
from .landmarks import LandmarkIndex
from .objects import ObjectStore, SpatioTextualObject, build_edge_rtree, snap_point_to_edge

__all__ = [
    "CCAMStore",
    "AdjacencyProvider",
    "PairwiseDistanceComputer",
    "network_distance",
    "position_distance_from_node_map",
    "seed_distances",
    "single_source_distances",
    "LandmarkIndex",
    "Edge",
    "NetworkPosition",
    "Node",
    "RoadNetwork",
    "ObjectStore",
    "SpatioTextualObject",
    "build_edge_rtree",
    "snap_point_to_edge",
]
