"""CCAM disk layout of the road network (paper §2.2).

The connectivity-clustered access method stores node adjacency lists in
disk pages so that topologically close nodes share pages: nodes are
ordered by the Z-ordering of their coordinates and packed greedily into
pages.  Every adjacency access during query processing is a buffered
page read charged to the I/O model — CCAM's whole point is that network
expansion then enjoys access locality and a high buffer hit rate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import GraphError
from ..spatial.zorder import ZOrderCurve
from ..storage.pagefile import PAGE_SIZE, DiskManager, PageFile
from .graph import RoadNetwork

__all__ = ["CCAMStore"]

_NODE_HEADER_BYTES = 8
_ADJ_ENTRY_BYTES = 20  # edge id, other node id, length, weight, object pointer


class CCAMStore:
    """Disk-resident adjacency lists clustered by Z-order.

    Implements the ``neighbors(node_id)`` adjacency-provider protocol
    used by Dijkstra and the INE expansion; unlike
    :meth:`repro.network.graph.RoadNetwork.neighbors` each call is
    charged as a (buffered) page read.
    """

    def __init__(
        self,
        network: RoadNetwork,
        disk: DiskManager,
        curve: ZOrderCurve = None,
        file_name: str = "ccam",
    ) -> None:
        self._network = network
        self._curve = curve or ZOrderCurve()
        self._file: PageFile = disk.create_file(file_name, category="network")
        self._node_page: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        """Pack adjacency lists into pages in Z-order of the nodes."""
        order = sorted(
            self._network.nodes(),
            key=lambda n: self._curve.encode_point(n.point),
        )
        page_payload: Dict[int, List[Tuple[int, int, float]]] = {}
        page_bytes = 0
        pending_nodes: List[int] = []

        def flush() -> None:
            nonlocal page_payload, page_bytes, pending_nodes
            if not page_payload:
                return
            page_no = self._file.allocate(page_payload, size_bytes=page_bytes)
            for node_id in pending_nodes:
                self._node_page[node_id] = page_no
            page_payload = {}
            page_bytes = 0
            pending_nodes = []

        for node in order:
            adj = self._network.neighbors(node.node_id)
            entry_bytes = _NODE_HEADER_BYTES + len(adj) * _ADJ_ENTRY_BYTES
            if page_bytes + entry_bytes > PAGE_SIZE and page_payload:
                flush()
            page_payload[node.node_id] = list(adj)
            page_bytes += entry_bytes
            pending_nodes.append(node.node_id)
        flush()

    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return self._file.num_pages

    @property
    def size_bytes(self) -> int:
        return self._file.size_bytes

    @property
    def network(self) -> RoadNetwork:
        return self._network

    def neighbors(self, node_id: int) -> Sequence[Tuple[int, int, float]]:
        """Adjacency list ``(edge_id, other_node, weight)`` — charged I/O."""
        try:
            page_no = self._node_page[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None
        payload = self._file.read(page_no)
        return payload[node_id]

    def page_of(self, node_id: int) -> int:
        """Page number holding a node's adjacency list (for testing)."""
        return self._node_page[node_id]

    def refresh_edge(self, edge_id: int) -> None:
        """Re-copy both end-nodes' adjacency lists after an edge update.

        CCAM pages hold *copies* of the in-memory adjacency lists, so a
        :meth:`RoadNetwork.update_edge_weight` leaves them stale until
        this runs.  Each affected page is rewritten in place (charged as
        a write); page layout is untouched because an adjacency entry's
        size does not depend on its weight value.
        """
        edge = self._network.edge(edge_id)
        for node_id in {edge.n1, edge.n2}:
            page_no = self._node_page[node_id]
            payload = self._file.read_unbuffered(page_no)
            payload[node_id] = list(self._network.neighbors(node_id))
            self._file.rewrite(page_no)
