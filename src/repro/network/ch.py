"""Contraction-Hierarchies (CH) distance oracle.

The paper calls the diversified search's pairwise ``δ(o_i, o_j)``
evaluations "cost expensive" (§4.1): every distinct candidate source
pays one bounded Dijkstra that settles thousands of nodes.  A
Contraction Hierarchy answers the same *exact* distances by settling
tens of nodes instead:

* **Offline contraction** — nodes are contracted one by one in
  importance order (edge-difference + deleted-neighbours heuristic
  with lazy priority updates).  Contracting ``v`` inserts a *shortcut*
  ``(u, w)`` of weight ``δ(u, v) + δ(v, w)`` for every neighbour pair
  whose shortest path would otherwise be severed — unless a bounded
  *witness search* in the remaining graph (excluding ``v``) proves a
  path no longer than the shortcut already exists.  The search reuses
  the shared node-source Dijkstra kernel
  (:func:`repro.network.distance.node_source_distances`).

* **Upward adjacency arrays** — at the moment ``v`` is contracted,
  every remaining neighbour outranks it, so its adjacency list *is*
  its upward edge list.  The full hierarchy is the union of original
  edges and shortcuts, each stored once at its lower-ranked endpoint.

* **Query** — ``δ(a, b)`` is a bidirectional Dijkstra restricted to
  upward edges from both sides; the CH property guarantees the
  shortest path distance is ``min_x d↑(a, x) + d↑(b, x)`` over nodes
  settled by both searches.  Network *positions* seed each side with
  their edge's two end-nodes (offset / weight − offset), exactly like
  :func:`repro.network.distance.seed_distances`; the paper's same-edge
  rule short-circuits shared-edge pairs before any search.

* **Many-to-many** — the full candidate×candidate matrix (what SEQ and
  the greedy picker consume) runs one upward search per position and
  joins them through *buckets*: every settled node remembers which
  positions reached it at what cost, and each bucket's pair
  combinations lower-bound-merge into the matrix.  ``n`` searches
  replace ``n·(n−1)/2`` point queries.

Correctness does not depend on the witness-search settle budget: an
exhausted budget merely inserts a redundant shortcut (whose weight is
the length of a real path), never a wrong one.  Distances beyond
``cutoff`` report ``inf``, matching the bounded-Dijkstra backend's
contract bit for bit.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .distance import INF, BackendCounters, node_source_distances, seed_distances
from .graph import NetworkPosition, RoadNetwork

__all__ = ["ContractionHierarchy"]


class _DictAdjacency:
    """Adjacency-provider view of the mutable contraction-time graph.

    Lets the witness searches reuse the shared node-source Dijkstra
    kernel; the fake edge id ``-1`` is never read by it.
    """

    __slots__ = ("_adj",)

    def __init__(self, adj: Dict[int, Dict[int, float]]) -> None:
        self._adj = adj

    def neighbors(self, node_id: int) -> List[Tuple[int, int, float]]:
        return [
            (-1, other, weight)
            for other, weight in self._adj.get(node_id, {}).items()
        ]


class ContractionHierarchy:
    """An exact point-to-point / many-to-many network-distance oracle.

    Immutable once constructed, so one instance may be shared by every
    query of a database across any number of threads.  Implements the
    :class:`repro.network.distance.DistanceBackend` protocol; per-call
    work is charged to the caller's
    :class:`~repro.network.distance.BackendCounters`.

    ``max_witness_settled`` caps each witness search's settled-node
    count.  A smaller budget builds faster but inserts more (still
    correct) shortcuts; the default is generous enough that road-like
    graphs stay near-minimal.
    """

    name = "ch"

    def __init__(
        self,
        network: RoadNetwork,
        max_witness_settled: int = 50,
    ) -> None:
        if network.num_nodes == 0:
            raise GraphError(
                "cannot build a contraction hierarchy on an empty network"
            )
        if max_witness_settled < 1:
            raise GraphError("max_witness_settled must be >= 1")
        self._network = network
        self._witness_settled = max_witness_settled
        #: rank[v] = contraction order (0 = contracted first / least
        #: important).  Queries never read it directly — the upward
        #: lists already encode it — but it is invaluable in tests.
        self.rank: Dict[int, int] = {}
        self._up: Dict[int, List[Tuple[int, float]]] = {}
        self.shortcuts_added = 0
        self.num_nodes = network.num_nodes
        start = time.perf_counter()
        self._contract_all()
        self.preprocess_seconds = time.perf_counter() - start
        self.upward_edges = sum(len(edges) for edges in self._up.values())

    # ------------------------------------------------------------------
    # Offline contraction
    # ------------------------------------------------------------------
    def _required_shortcuts(
        self,
        adj: Dict[int, Dict[int, float]],
        provider: _DictAdjacency,
        v: int,
    ) -> List[Tuple[int, int, float]]:
        """Shortcuts contracting ``v`` would need, after witness search.

        One multi-target witness search per neighbour ``u`` covers
        every later neighbour ``w`` at once (cutoff = the longest
        candidate shortcut through ``v``).  An existing ``(u, w)`` edge
        no longer than the shortcut witnesses it automatically — the
        search runs in the graph that contains it.
        """
        neighbors = sorted(adj[v].items())
        needed: List[Tuple[int, int, float]] = []
        for i, (u, du) in enumerate(neighbors):
            targets = {w: du + dw for w, dw in neighbors[i + 1:]}
            if not targets:
                continue
            witness = node_source_distances(
                provider,
                u,
                cutoff=max(targets.values()),
                ignore=v,
                targets=targets,
                max_settled=self._witness_settled,
            )
            for w, via in targets.items():
                if witness.get(w, INF) > via:
                    needed.append((u, w, via))
        return needed

    def _contract_all(self) -> None:
        # Working graph: only *uncontracted* nodes, min weight per pair
        # (original edges first, shortcuts merged in as we go).
        adj: Dict[int, Dict[int, float]] = {
            node.node_id: {} for node in self._network.nodes()
        }
        for edge in self._network.edges():
            for a, b in ((edge.n1, edge.n2), (edge.n2, edge.n1)):
                cur = adj[a].get(b)
                if cur is None or edge.weight < cur:
                    adj[a][b] = edge.weight
        provider = _DictAdjacency(adj)
        deleted: Dict[int, int] = {node_id: 0 for node_id in adj}

        def priority(v: int) -> float:
            shortcuts = len(self._required_shortcuts(adj, provider, v))
            return shortcuts - len(adj[v]) + deleted[v]

        heap: List[Tuple[float, int]] = [(priority(v), v) for v in adj]
        heapq.heapify(heap)
        order = 0
        while heap:
            _, v = heapq.heappop(heap)
            if v in self.rank:
                continue
            # Lazy update: neighbours contracted since this entry was
            # pushed may have changed v's cost; recompute and re-queue
            # unless v still (weakly) beats the next candidate.
            current = priority(v)
            if heap and current > heap[0][0]:
                heapq.heappush(heap, (current, v))
                continue
            for u, w, via in self._required_shortcuts(adj, provider, v):
                existing = adj[u].get(w)
                if existing is None or via < existing:
                    adj[u][w] = via
                    adj[w][u] = via
                    if existing is None:
                        self.shortcuts_added += 1
            # v's remaining neighbours all outrank it: its adjacency at
            # contraction time is exactly its upward edge list.
            self._up[v] = sorted(adj[v].items())
            for u in adj[v]:
                del adj[u][v]
                deleted[u] += 1
            del adj[v]
            self.rank[v] = order
            order += 1

    # ------------------------------------------------------------------
    # Query-time upward searches
    # ------------------------------------------------------------------
    def _upward_search(
        self, seeds: Dict[int, float], cutoff: float = INF
    ) -> Dict[int, float]:
        """Dijkstra over upward edges only, from (node → cost) seeds."""
        dist: Dict[int, float] = {}
        best: Dict[int, float] = {}
        for node, d in seeds.items():
            if d <= cutoff and d < best.get(node, INF):
                best[node] = d
        heap = [(d, node) for node, d in best.items()]
        heapq.heapify(heap)
        up = self._up
        while heap:
            d, node = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            for other, weight in up[node]:
                nd = d + weight
                if nd <= cutoff and other not in dist and nd < best.get(other, INF):
                    best[other] = nd
                    heapq.heappush(heap, (nd, other))
        return dist

    @staticmethod
    def _join(
        forward: Dict[int, float], backward: Dict[int, float]
    ) -> float:
        """Minimum meeting cost of two upward search spaces."""
        if len(backward) < len(forward):
            forward, backward = backward, forward
        best = INF
        for node, df in forward.items():
            db = backward.get(node)
            if db is not None and df + db < best:
                best = df + db
        return best

    def node_distance(
        self,
        a: int,
        b: int,
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> float:
        """Exact node-to-node distance; ``inf`` beyond ``cutoff``."""
        if a == b:
            return 0.0
        forward = self._upward_search({a: 0.0}, cutoff)
        backward = self._upward_search({b: 0.0}, cutoff)
        if counters is not None:
            counters.queries += 1
            counters.settled_nodes += len(forward) + len(backward)
        d = self._join(forward, backward)
        return d if d <= cutoff else INF

    def position_distance(
        self,
        a: NetworkPosition,
        b: NetworkPosition,
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> float:
        """Exact ``δ(a, b)`` between network positions (Equation 1).

        The same-edge rule answers shared-edge pairs directly; other
        pairs seed each side's upward search with the position's two
        edge end-nodes, so the result equals the Dijkstra backend's on
        every input.
        """
        if a.edge_id == b.edge_id:
            return abs(a.offset - b.offset)
        forward = self._upward_search(seed_distances(self._network, a), cutoff)
        backward = self._upward_search(seed_distances(self._network, b), cutoff)
        if counters is not None:
            counters.queries += 1
            counters.settled_nodes += len(forward) + len(backward)
        d = self._join(forward, backward)
        return d if d <= cutoff else INF

    def position_matrix(
        self,
        positions: Sequence[NetworkPosition],
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> Dict[Tuple[int, int], float]:
        """The full pairwise matrix via the bucket many-to-many kernel.

        One upward search per position; every settled node buckets
        ``(position, cost)`` entries, and each bucket's pair
        combinations merge into the matrix.  Keys are index pairs
        ``(i, j)`` with ``i < j``; values follow the same same-edge /
        cutoff contract as :meth:`position_distance`.
        """
        pos_list = list(positions)
        n = len(pos_list)
        buckets: Dict[int, List[Tuple[int, float]]] = {}
        for j, pos in enumerate(pos_list):
            settled = self._upward_search(
                seed_distances(self._network, pos), cutoff
            )
            if counters is not None:
                counters.settled_nodes += len(settled)
            for node, d in settled.items():
                buckets.setdefault(node, []).append((j, d))
        best: Dict[Tuple[int, int], float] = {}
        bucket_hits = 0
        for entries in buckets.values():
            if len(entries) < 2:
                continue
            for x in range(len(entries)):
                i, di = entries[x]
                for y in range(x + 1, len(entries)):
                    j, dj = entries[y]
                    bucket_hits += 1
                    key = (i, j) if i < j else (j, i)
                    total = di + dj
                    cur = best.get(key)
                    if cur is None or total < cur:
                        best[key] = total
        out: Dict[Tuple[int, int], float] = {}
        for i in range(n):
            pi = pos_list[i]
            for j in range(i + 1, n):
                pj = pos_list[j]
                if pi.edge_id == pj.edge_id:
                    out[(i, j)] = abs(pi.offset - pj.offset)
                else:
                    d = best.get((i, j), INF)
                    out[(i, j)] = d if d <= cutoff else INF
        if counters is not None:
            counters.queries += n
            counters.bucket_hits += bucket_hits
            counters.matrix_cells += len(out)
        return out

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """A JSON-able build summary for metrics records and gauges."""
        return {
            "nodes": self.num_nodes,
            "shortcuts_added": self.shortcuts_added,
            "upward_edges": self.upward_edges,
            "preprocess_seconds": self.preprocess_seconds,
            "max_witness_settled": self._witness_settled,
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"ContractionHierarchy(nodes={self.num_nodes}, "
            f"shortcuts={self.shortcuts_added}, "
            f"upward_edges={self.upward_edges})"
        )
