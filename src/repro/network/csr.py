"""CSR (compressed-sparse-row) array representation of a road network.

:class:`~repro.network.graph.RoadNetwork` stores adjacency as Python
dicts of tuples — ideal for incremental construction and dynamic
updates, hostile to tight traversal loops.  :class:`CSRGraph` is the
array-native view: three contiguous numpy arrays (``indptr``,
``indices``, ``weights``) plus a node-id ↔ row-index mapping, built
once from a frozen network.

Layout (n nodes, m undirected edges → 2m directed entries)::

    indptr   int64[n + 1]   row r's entries live in [indptr[r], indptr[r+1])
    indices  int64[2m]      target *row* of each entry
    weights  float64[2m]    traversal cost of each entry
    edge_ids int64[2m]      originating edge id (round-trip validation)

Rows are assigned in ascending node-id order, so ordering by row index
is ordering by node id — heap ties in the array Dijkstra break exactly
like the dict kernel's ``(distance, node_id)`` ties, which keeps the
two kernels' settle order (and therefore every downstream answer,
including landmark selection) identical.

A ``CSRGraph`` is also an
:class:`~repro.network.distance.AdjacencyProvider` (it implements
``neighbors``), so it drops into any traversal entry point; the shared
seam in :mod:`repro.network.distance` dispatches to the array kernel
when it sees one.  Instances are immutable snapshots: an edge reweight
on the source network silently invalidates them, which is why
:meth:`repro.core.database.Database.csr_graph` drops its cached
instance on every reweight (same lazy-rebuild policy as the CH and
hub-label oracles).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import GraphError
from ..nplib import np, require_numpy
from .graph import RoadNetwork

__all__ = ["CSRGraph"]

INF = math.inf


class CSRGraph:
    """Immutable flat-array snapshot of a :class:`RoadNetwork`.

    Build with :meth:`from_network`.  ``store`` optionally folds the
    object store in: per-entry arrays of object ids, their edge ids and
    on-edge offsets (in weight units), so array consumers can reason
    about object placement without touching Python objects — and so
    the round-trip validator can prove offsets survived the trip.
    """

    def __init__(
        self,
        node_ids,
        indptr,
        indices,
        weights,
        edge_ids,
        object_ids=None,
        object_edge_ids=None,
        object_offsets=None,
    ) -> None:
        require_numpy("the CSR graph representation")
        self.node_ids = node_ids
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.edge_ids = edge_ids
        #: row index of every node id (inverse of ``node_ids``)
        self.row_of: Dict[int, int] = {
            int(nid): r for r, nid in enumerate(node_ids)
        }
        #: node id of each adjacency entry's target (``node_ids[indices]``)
        self.indices_node_ids = node_ids[indices]
        self.object_ids = object_ids
        self.object_edge_ids = object_edge_ids
        self.object_offsets = object_offsets
        self._traversal_lists: Optional[Tuple] = None

    # ------------------------------------------------------------------
    # Construction & validation
    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls, network: RoadNetwork, store=None
    ) -> "CSRGraph":
        """Snapshot ``network`` (and optionally ``store``) into arrays."""
        require_numpy("the CSR graph representation")
        node_ids_list = sorted(n.node_id for n in network.nodes())
        row_of = {nid: r for r, nid in enumerate(node_ids_list)}
        n = len(node_ids_list)
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices: List[int] = []
        weights: List[float] = []
        edge_ids: List[int] = []
        for r, nid in enumerate(node_ids_list):
            for edge_id, other, weight in network.neighbors(nid):
                indices.append(row_of[other])
                weights.append(weight)
                edge_ids.append(edge_id)
            indptr[r + 1] = len(indices)
        obj_ids = obj_edges = obj_offsets = None
        if store is not None:
            objs = sorted(store, key=lambda o: o.object_id)
            obj_ids = np.fromiter(
                (o.object_id for o in objs), np.int64, len(objs)
            )
            obj_edges = np.fromiter(
                (o.position.edge_id for o in objs), np.int64, len(objs)
            )
            obj_offsets = np.fromiter(
                (o.position.offset for o in objs), np.float64, len(objs)
            )
        return cls(
            np.asarray(node_ids_list, dtype=np.int64),
            indptr,
            np.asarray(indices, dtype=np.int64),
            np.asarray(weights, dtype=np.float64),
            np.asarray(edge_ids, dtype=np.int64),
            obj_ids,
            obj_edges,
            obj_offsets,
        )

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_entries(self) -> int:
        return len(self.indices)

    def traversal_lists(self) -> Tuple:
        """Python-list views of the entry arrays, materialised once.

        ``(indptr, indices, weights, edge_ids, indices_node_ids,
        node_ids)`` as plain lists: scalar indexing into numpy arrays
        pays per-element boxing that a settle-loop visiting two or
        three entries per node never amortises, while contiguous
        Python lists keep the CSR layout (row-ranged entries) at
        native list-index speed.  The graph is an immutable snapshot,
        so one conversion serves every query against it.
        """
        if self._traversal_lists is None:
            self._traversal_lists = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.weights.tolist(),
                self.edge_ids.tolist(),
                self.indices_node_ids.tolist(),
                self.node_ids.tolist(),
            )
        return self._traversal_lists

    def neighbors(self, node_id: int) -> List[Tuple[int, int, float]]:
        """AdjacencyProvider protocol: ``(edge_id, other, weight)``."""
        r = self.row_of[node_id]
        s, e = int(self.indptr[r]), int(self.indptr[r + 1])
        return list(zip(
            self.edge_ids[s:e].tolist(),
            self.indices_node_ids[s:e].tolist(),
            self.weights[s:e].tolist(),
        ))

    def validate_roundtrip(self, network: RoadNetwork, store=None) -> None:
        """Prove this CSR is a faithful snapshot of ``network``.

        Checks the node mapping is a bijection onto the network's node
        set, that every adjacency entry round-trips (same edge id,
        target and weight, both directions), that structural defects a
        :class:`RoadNetwork` cannot legally contain (self-loops,
        parallel edges) did not sneak in, and — with ``store`` — that
        on-edge object offsets agree entry for entry.  Raises
        :class:`~repro.errors.GraphError` on the first mismatch.
        """
        net_nodes = sorted(n.node_id for n in network.nodes())
        if self.node_ids.tolist() != net_nodes:
            raise GraphError("CSR node mapping does not match the network")
        if int(self.indptr[-1]) != len(self.indices):
            raise GraphError("CSR indptr does not cover the entry arrays")
        for r, nid in enumerate(net_nodes):
            s, e = int(self.indptr[r]), int(self.indptr[r + 1])
            entries = sorted(zip(
                self.edge_ids[s:e].tolist(),
                self.indices_node_ids[s:e].tolist(),
                self.weights[s:e].tolist(),
            ))
            expected = sorted(network.neighbors(nid))
            if len(entries) != len(expected):
                raise GraphError(f"CSR degree mismatch at node {nid}")
            seen_targets = set()
            for (eid, other, w), (x_eid, x_other, x_w) in zip(
                entries, expected
            ):
                if eid != x_eid or other != x_other:
                    raise GraphError(
                        f"CSR adjacency mismatch at node {nid}: "
                        f"({eid}, {other}) != ({x_eid}, {x_other})"
                    )
                if abs(w - x_w) > 1e-9:
                    raise GraphError(
                        f"CSR weight drift on edge {eid}: {w} != {x_w}"
                    )
                if other == nid:
                    raise GraphError(
                        f"CSR self-loop entry at node {nid} (edge {eid})"
                    )
                if other in seen_targets:
                    raise GraphError(
                        f"CSR parallel edges {nid} → {other}"
                    )
                seen_targets.add(other)
        if store is not None:
            if (
                self.object_ids is None
                or self.object_edge_ids is None
                or self.object_offsets is None
            ):
                raise GraphError("CSR was built without object arrays")
            objs = sorted(store, key=lambda o: o.object_id)
            if self.object_ids.tolist() != [o.object_id for o in objs]:
                raise GraphError("CSR object-id mapping mismatch")
            for i, obj in enumerate(objs):
                if int(self.object_edge_ids[i]) != obj.position.edge_id:
                    raise GraphError(
                        f"CSR object {obj.object_id} edge mismatch"
                    )
                if abs(
                    float(self.object_offsets[i]) - obj.position.offset
                ) > 1e-9:
                    raise GraphError(
                        f"CSR object {obj.object_id} offset drift"
                    )

    # ------------------------------------------------------------------
    # Array-heap Dijkstra
    # ------------------------------------------------------------------
    def seeded_distances(
        self,
        seeds: Dict[int, float],
        cutoff: float = INF,
        *,
        ignore: Optional[int] = None,
        targets: Optional[Iterable[int]] = None,
        max_settled: Optional[int] = None,
    ) -> Dict[int, float]:
        """Bounded Dijkstra from ``(node_id → cost)`` seeds, over arrays.

        The array kernel behind the shared traversal seam
        (:mod:`repro.network.distance`): same contract as the dict
        kernel — only *settled* nodes appear in the result, seeds above
        ``cutoff`` never enter, ``ignore`` skips one node entirely,
        ``targets`` stops once all settled, ``max_settled`` caps the
        search.  The returned dict lists nodes in settle order, exactly
        like the dict kernel, so consumers that iterate it (landmark
        selection) see identical tie-breaking.
        """
        indptr, indices, weights = self.indptr, self.indices, self.weights
        row_of = self.row_of
        n = self.num_nodes
        best = np.full(n, INF)
        settled = np.zeros(n, dtype=bool)
        ignore_row = -1 if ignore is None else row_of.get(ignore, -1)
        heap: List[Tuple[float, int]] = []
        for node_id, d in seeds.items():
            r = row_of[node_id]
            if d <= cutoff and d < best[r]:
                best[r] = d
        for r in np.flatnonzero(np.isfinite(best)).tolist():
            heapq.heappush(heap, (float(best[r]), r))
        remaining = (
            {row_of[t] for t in targets if t in row_of}
            if targets is not None else None
        )
        order: List[Tuple[int, float]] = []
        while heap:
            d, r = heapq.heappop(heap)
            if settled[r]:
                continue
            settled[r] = True
            order.append((r, d))
            if remaining is not None:
                remaining.discard(r)
                if not remaining:
                    break
            if max_settled is not None and len(order) >= max_settled:
                break
            s, e = indptr[r], indptr[r + 1]
            nbr = indices[s:e]
            nd = d + weights[s:e]
            mask = (nd <= cutoff) & ~settled[nbr] & (nd < best[nbr])
            if ignore_row >= 0:
                mask &= nbr != ignore_row
            for other, ndv in zip(nbr[mask].tolist(), nd[mask].tolist()):
                best[other] = ndv
                heapq.heappush(heap, (ndv, other))
        node_ids = self.node_ids
        return {int(node_ids[r]): d for r, d in order}

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"CSRGraph(nodes={self.num_nodes}, "
            f"entries={self.num_entries})"
        )
