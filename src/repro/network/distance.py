"""Network distance computation (paper §2.1, Equation 1).

Distances are the cost of the least costly path.  All traversals go
through an *adjacency provider* — either the in-memory
:class:`~repro.network.graph.RoadNetwork` (uncharged; builders, tests)
or the disk-resident :class:`~repro.network.ccam.CCAMStore` (every
adjacency access charged to the I/O model, as in the paper's
experiments).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Optional, Protocol, Sequence, Tuple

from .graph import NetworkPosition, RoadNetwork

__all__ = [
    "AdjacencyProvider",
    "seed_distances",
    "single_source_distances",
    "position_distance_from_node_map",
    "network_distance",
    "PairwiseDistanceComputer",
]

INF = math.inf


class AdjacencyProvider(Protocol):
    """Anything that can enumerate ``(edge_id, other_node, weight)``."""

    def neighbors(self, node_id: int) -> Sequence[Tuple[int, int, float]]:
        ...


def seed_distances(
    network: RoadNetwork, pos: NetworkPosition
) -> Dict[int, float]:
    """Distances from a network position to its edge's two end-nodes."""
    edge = network.edge(pos.edge_id)
    return {edge.n1: pos.offset, edge.n2: edge.weight - pos.offset}


def single_source_distances(
    provider: AdjacencyProvider,
    network: RoadNetwork,
    source: NetworkPosition,
    cutoff: float = INF,
) -> Dict[int, float]:
    """Bounded Dijkstra from a network position.

    Returns the distance of every node within ``cutoff`` of ``source``.
    """
    dist: Dict[int, float] = {}
    heap: list = []
    for node_id, d in seed_distances(network, source).items():
        if d <= cutoff:
            heapq.heappush(heap, (d, node_id))
    while heap:
        d, node_id = heapq.heappop(heap)
        if node_id in dist:
            continue
        dist[node_id] = d
        for _edge_id, other, weight in provider.neighbors(node_id):
            nd = d + weight
            if nd <= cutoff and other not in dist:
                heapq.heappush(heap, (nd, other))
    return dist


def position_distance_from_node_map(
    network: RoadNetwork,
    node_dist: Dict[int, float],
    target: NetworkPosition,
    source: Optional[NetworkPosition] = None,
) -> float:
    """Evaluate Equation 1 given a map of node distances.

    ``δ(q, p) = min(δ(q, n1) + w(n1, p), δ(q, n2) + w(n2, p))`` for a
    target ``p`` on edge ``(n1, n2)``.  When ``source`` lies on the same
    edge the along-edge distance ``w(q, p)`` is used (paper's same-edge
    rule) if it beats the endpoint paths.
    """
    edge = network.edge(target.edge_id)
    best = INF
    d1 = node_dist.get(edge.n1)
    if d1 is not None:
        best = min(best, d1 + target.offset)
    d2 = node_dist.get(edge.n2)
    if d2 is not None:
        best = min(best, d2 + (edge.weight - target.offset))
    if source is not None and source.edge_id == target.edge_id:
        best = min(best, abs(source.offset - target.offset))
    return best


def network_distance(
    provider: AdjacencyProvider,
    network: RoadNetwork,
    a: NetworkPosition,
    b: NetworkPosition,
    cutoff: float = INF,
) -> float:
    """Network distance ``δ(a, b)``; ``inf`` when beyond ``cutoff``.

    Runs a Dijkstra from ``a`` with early termination at ``b``'s edge
    end-nodes.  On a shared edge the along-edge distance short-circuits
    the search (paper: ``δ(q, p) = w(q, p)`` if both lie on one edge).
    """
    if a.edge_id == b.edge_id:
        return abs(a.offset - b.offset)
    edge_b = network.edge(b.edge_id)
    targets = {edge_b.n1, edge_b.n2}
    target_dist: Dict[int, float] = {}

    dist: Dict[int, float] = {}
    heap: list = []
    for node_id, d in seed_distances(network, a).items():
        heapq.heappush(heap, (d, node_id))
    best = INF
    while heap:
        d, node_id = heapq.heappop(heap)
        if node_id in dist:
            continue
        if d > cutoff or d >= best:
            break
        dist[node_id] = d
        if node_id in targets:
            target_dist[node_id] = d
            via = d + (
                b.offset if node_id == edge_b.n1 else edge_b.weight - b.offset
            )
            best = min(best, via)
            if len(target_dist) == len(targets):
                break
        for _edge_id, other, weight in provider.neighbors(node_id):
            nd = d + weight
            if nd <= cutoff and nd < best and other not in dist:
                heapq.heappush(heap, (nd, other))
    return best if best <= cutoff else INF


class PairwiseDistanceComputer:
    """Caches single-source node-distance maps for pairwise queries.

    Diversified search needs many ``δ(o_i, o_j)`` evaluations over the
    same small set of candidates (paper §4.1 calls this "cost
    expensive").  Each distinct source runs one bounded Dijkstra whose
    node map is cached; subsequent pairs against that source are O(1).
    """

    def __init__(
        self,
        provider: AdjacencyProvider,
        network: RoadNetwork,
        cutoff: float = INF,
    ) -> None:
        self._provider = provider
        self._network = network
        self._cutoff = cutoff
        self._maps: Dict[Tuple[int, float], Dict[int, float]] = {}
        self.dijkstra_runs = 0

    def _map_for(self, pos: NetworkPosition) -> Dict[int, float]:
        key = (pos.edge_id, pos.offset)
        node_map = self._maps.get(key)
        if node_map is None:
            node_map = single_source_distances(
                self._provider, self._network, pos, cutoff=self._cutoff
            )
            self._maps[key] = node_map
            self.dijkstra_runs += 1
        return node_map

    def distance(self, a: NetworkPosition, b: NetworkPosition) -> float:
        """``δ(a, b)``, or ``inf`` when it exceeds the cutoff."""
        if a.edge_id == b.edge_id:
            return abs(a.offset - b.offset)
        node_map = self._map_for(a)
        d = position_distance_from_node_map(self._network, node_map, b, source=a)
        return d if d <= self._cutoff else INF

    def pairwise(
        self, positions: Iterable[NetworkPosition]
    ) -> Dict[Tuple[int, int], float]:
        """All pairwise distances among ``positions`` (by index)."""
        pos_list = list(positions)
        out: Dict[Tuple[int, int], float] = {}
        for i in range(len(pos_list)):
            for j in range(i + 1, len(pos_list)):
                out[(i, j)] = self.distance(pos_list[i], pos_list[j])
        return out
