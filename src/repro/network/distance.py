"""Network distance computation (paper §2.1, Equation 1).

Distances are the cost of the least costly path.  All traversals go
through an *adjacency provider* — either the in-memory
:class:`~repro.network.graph.RoadNetwork` (uncharged; builders, tests)
or the disk-resident :class:`~repro.network.ccam.CCAMStore` (every
adjacency access charged to the I/O model, as in the paper's
experiments).
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from ..obs.tracing import NULL_TRACER
from .csr import CSRGraph
from .graph import NetworkPosition, RoadNetwork

__all__ = [
    "AdjacencyProvider",
    "DistanceBackend",
    "BackendCounters",
    "DISTANCE_BACKENDS",
    "seed_distances",
    "seeded_distances",
    "node_source_distances",
    "single_source_distances",
    "position_distance_from_node_map",
    "network_distance",
    "DistanceCache",
    "PairwiseDistanceComputer",
]

INF = math.inf

#: Backend names accepted wherever a distance backend is selected
#: (``Database``, the CLI's ``--distance-backend``).  ``dijkstra`` is
#: the default bounded-Dijkstra path; ``ch`` is the
#: Contraction-Hierarchies oracle (:mod:`repro.network.ch`); ``hub``
#: is the 2-hop hub-label oracle built on the CH ordering
#: (:mod:`repro.network.hub_labels`, requires numpy).
DISTANCE_BACKENDS = ("dijkstra", "ch", "hub")


class AdjacencyProvider(Protocol):
    """Anything that can enumerate ``(edge_id, other_node, weight)``."""

    def neighbors(self, node_id: int) -> Sequence[Tuple[int, int, float]]:
        ...


class BackendCounters:
    """Per-owner counters a :class:`DistanceBackend` increments.

    A backend oracle (e.g. one Contraction Hierarchy) is shared by
    every query of a database, so it cannot keep per-query counters
    itself.  Callers own one of these and pass it into each call; the
    owner's numbers are then true per-query deltas even when other
    threads hammer the same oracle.
    """

    __slots__ = ("queries", "settled_nodes", "bucket_hits", "matrix_cells")

    def __init__(self) -> None:
        self.queries = 0
        self.settled_nodes = 0
        self.bucket_hits = 0
        self.matrix_cells = 0

    def snapshot(self) -> Tuple[int, int, int, int]:
        return (
            self.queries, self.settled_nodes,
            self.bucket_hits, self.matrix_cells,
        )


class DistanceBackend(Protocol):
    """A pluggable exact network-distance oracle.

    Implementations answer the same questions the bounded-Dijkstra
    path answers — exact ``δ(a, b)`` between network positions (with
    the paper's same-edge rule and a cutoff that maps to ``inf``) and
    the full pairwise matrix over a candidate set — but may do so with
    entirely different machinery (see
    :class:`repro.network.ch.ContractionHierarchy`).  ``counters`` is
    an optional :class:`BackendCounters` the call charges its work to.
    """

    name: str

    def position_distance(
        self,
        a: NetworkPosition,
        b: NetworkPosition,
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> float:
        ...

    def position_matrix(
        self,
        positions: Sequence[NetworkPosition],
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> Dict[Tuple[int, int], float]:
        ...


def seed_distances(
    network: RoadNetwork, pos: NetworkPosition
) -> Dict[int, float]:
    """Distances from a network position to its edge's two end-nodes.

    On a self-loop edge (``n1 == n2``) both ways around the loop reach
    the same node; the distance is the cheaper of the two, not whichever
    dict entry happened to be written last.
    """
    edge = network.edge(pos.edge_id)
    if edge.n1 == edge.n2:
        return {edge.n1: min(pos.offset, edge.weight - pos.offset)}
    return {edge.n1: pos.offset, edge.n2: edge.weight - pos.offset}


def seeded_distances(
    provider: AdjacencyProvider,
    seeds: Dict[int, float],
    cutoff: float = INF,
    *,
    ignore: Optional[int] = None,
    targets: Optional[Iterable[int]] = None,
    max_settled: Optional[int] = None,
) -> Dict[int, float]:
    """The shared traversal seam: bounded Dijkstra from (node → cost)
    seeds, through *either* graph representation.

    A :class:`~repro.network.csr.CSRGraph` provider dispatches to its
    array-heap kernel; every other :class:`AdjacencyProvider` runs the
    dict kernel below.  Both kernels settle the same nodes in the same
    order (rows are assigned in node-id order, so heap ties break
    identically) and honour the same contract: only settled nodes
    appear in the result, seeds above ``cutoff`` never enter,
    ``ignore`` skips one node, ``targets`` stops once all settled,
    ``max_settled`` caps the search.
    """
    if isinstance(provider, CSRGraph):
        return provider.seeded_distances(
            seeds, cutoff,
            ignore=ignore, targets=targets, max_settled=max_settled,
        )
    dist: Dict[int, float] = {}
    best: Dict[int, float] = {}
    for node_id, d in seeds.items():
        if d <= cutoff and d < best.get(node_id, INF):
            best[node_id] = d
    heap: list = [(d, node_id) for node_id, d in best.items()]
    heapq.heapify(heap)
    remaining = set(targets) if targets is not None else None
    while heap:
        d, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        if max_settled is not None and len(dist) >= max_settled:
            break
        for _edge_id, other, weight in provider.neighbors(node):
            if other == ignore or other in dist:
                continue
            nd = d + weight
            if nd <= cutoff and nd < best.get(other, INF):
                best[other] = nd
                heapq.heappush(heap, (nd, other))
    return dist


def node_source_distances(
    provider: AdjacencyProvider,
    source_node: int,
    cutoff: float = INF,
    *,
    ignore: Optional[int] = None,
    targets: Optional[Iterable[int]] = None,
    max_settled: Optional[int] = None,
) -> Dict[int, float]:
    """Bounded Dijkstra from a *node* through an adjacency provider.

    A thin wrapper over the shared seam (:func:`seeded_distances`):
    landmark pre-computation runs it to exhaustion,
    Contraction-Hierarchies preprocessing runs it as a *witness search*
    (``ignore`` skips the node being contracted, ``targets`` stops once
    every target settled, ``max_settled`` caps the search).
    """
    return seeded_distances(
        provider, {source_node: 0.0}, cutoff,
        ignore=ignore, targets=targets, max_settled=max_settled,
    )


def single_source_distances(
    provider: AdjacencyProvider,
    network: RoadNetwork,
    source: NetworkPosition,
    cutoff: float = INF,
) -> Dict[int, float]:
    """Bounded Dijkstra from a network position.

    Returns the distance of every node within ``cutoff`` of ``source``.
    Seeds the edge's two end-nodes and funnels through the shared seam,
    so the same call works on a ``RoadNetwork``, a ``CCAMStore`` or a
    ``CSRGraph`` provider.
    """
    return seeded_distances(
        provider, seed_distances(network, source), cutoff
    )


def position_distance_from_node_map(
    network: RoadNetwork,
    node_dist: Dict[int, float],
    target: NetworkPosition,
    source: Optional[NetworkPosition] = None,
) -> float:
    """Evaluate Equation 1 given a map of node distances.

    ``δ(q, p) = min(δ(q, n1) + w(n1, p), δ(q, n2) + w(n2, p))`` for a
    target ``p`` on edge ``(n1, n2)``.  When ``source`` lies on the same
    edge the along-edge distance ``w(q, p)`` is used (paper's same-edge
    rule) if it beats the endpoint paths.
    """
    edge = network.edge(target.edge_id)
    best = INF
    d1 = node_dist.get(edge.n1)
    if d1 is not None:
        best = min(best, d1 + target.offset)
    d2 = node_dist.get(edge.n2)
    if d2 is not None:
        best = min(best, d2 + (edge.weight - target.offset))
    if source is not None and source.edge_id == target.edge_id:
        best = min(best, abs(source.offset - target.offset))
    return best


def network_distance(
    provider: AdjacencyProvider,
    network: RoadNetwork,
    a: NetworkPosition,
    b: NetworkPosition,
    cutoff: float = INF,
    backend: Optional[DistanceBackend] = None,
) -> float:
    """Network distance ``δ(a, b)``; ``inf`` when beyond ``cutoff``.

    With ``backend=None`` runs a Dijkstra from ``a`` with early
    termination at ``b``'s edge end-nodes; a :class:`DistanceBackend`
    (e.g. a Contraction-Hierarchies oracle) answers instead when
    supplied.  On a shared edge the along-edge distance short-circuits
    either path (paper: ``δ(q, p) = w(q, p)`` if both lie on one edge).
    """
    if a.edge_id == b.edge_id:
        # Same-edge rule, applied before the backend dispatch so every
        # backend answers shared-edge pairs identically.
        return abs(a.offset - b.offset)
    if backend is not None:
        return backend.position_distance(a, b, cutoff=cutoff)
    edge_b = network.edge(b.edge_id)
    targets = {edge_b.n1, edge_b.n2}
    target_dist: Dict[int, float] = {}

    dist: Dict[int, float] = {}
    best_known: Dict[int, float] = {}
    heap: list = []
    for node_id, d in seed_distances(network, a).items():
        if d <= cutoff and d < best_known.get(node_id, INF):
            best_known[node_id] = d
    for node_id, d in best_known.items():
        heapq.heappush(heap, (d, node_id))
    best = INF
    while heap:
        d, node_id = heapq.heappop(heap)
        if node_id in dist:
            continue
        if d > cutoff or d >= best:
            break
        dist[node_id] = d
        if node_id in targets:
            target_dist[node_id] = d
            via = d + (
                b.offset if node_id == edge_b.n1 else edge_b.weight - b.offset
            )
            best = min(best, via)
            if len(target_dist) == len(targets):
                break
        for _edge_id, other, weight in provider.neighbors(node_id):
            nd = d + weight
            if (
                nd <= cutoff and nd < best and other not in dist
                and nd < best_known.get(other, INF)
            ):
                best_known[other] = nd
                heapq.heappush(heap, (nd, other))
    return best if best <= cutoff else INF


#: Cache key of one single-source node map.  The cutoff is part of the
#: key: a map computed under a smaller cutoff is *truncated* and must
#: never answer for a query with a larger one (it would report ``inf``
#: for nodes that are actually reachable).
CacheKey = Tuple[int, float, float]


class DistanceCache:
    """Bounded LRU cache of single-source node-distance maps.

    Capacity is counted in *node-map entries* — the total number of
    ``(node, distance)`` pairs across every cached map — because maps
    from dense regions dwarf maps from sparse ones; bounding the map
    count alone would make memory use workload-dependent.

    ``max_entries=None`` disables the bound (the per-query private
    cache of :class:`PairwiseDistanceComputer`, matching the historic
    behaviour).  A bounded instance can be shared across queries of a
    workload (see :meth:`repro.core.database.Database.use_shared_distance_cache`);
    sharing is safe because keys embed ``(edge_id, offset, cutoff)``,
    so queries with different ``delta_max`` never read each other's
    truncated maps.

    Concurrency contract: one instance may be shared by queries running
    on **multiple threads** (``QueryEngine.execute_many``).  Every
    operation that touches the LRU ``OrderedDict`` or the
    hit/miss/eviction counters runs under one internal lock, so reads
    can never observe a half-applied eviction and counter increments
    are never lost.  Cached node maps themselves are treated as
    immutable once ``put``: callers must never mutate a map obtained
    from :meth:`get`.  ``hits``/``misses``/``evictions`` are *lifetime*
    totals; per-query deltas are counted by each (per-query)
    :class:`PairwiseDistanceComputer`, never by diffing these shared
    counters, so concurrent queries cannot contaminate each other's
    stats.

    **Epoch versioning.**  Edge-weight updates change every node map
    that crosses the updated edge; :meth:`invalidate` drops all cached
    maps and advances the cache's epoch to the database's new
    ``data_version``.  Readers and writers pass the epoch their query
    is *pinned to* (``ExecutionContext.epoch``): a :meth:`get` from an
    epoch older than the cache's is a miss, and a :meth:`put` from an
    older epoch is silently discarded (counted in ``stale_puts``) — an
    in-flight query that computed its map against pre-update weights
    must never repollute the invalidated cache.  Both checks run under
    the same lock as the map access, so a concurrent
    ``invalidate``/``get``/``put`` interleaving can never serve a
    pre-update map to a post-update reader.  ``epoch=None`` (private
    per-query caches; static databases) disables the gating.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self._maps: "OrderedDict[CacheKey, Dict[int, float]]" = OrderedDict()
        self._entries = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Epoch of the cached contents: the ``data_version`` of the
        #: most recent :meth:`invalidate`.  Maps inside are valid for
        #: every epoch >= this value (only invalidation advances it).
        self.epoch = 0
        #: Writes rejected because the writer's epoch pre-dated the
        #: last invalidation.
        self.stale_puts = 0
        #: Times :meth:`invalidate` actually cleared the cache.
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._maps)

    @property
    def entries(self) -> int:
        """Total ``(node, distance)`` pairs currently cached."""
        with self._lock:
            return self._entries

    def get(self, *keys: CacheKey, epoch: Optional[int] = None):
        """First cached map among ``keys`` as ``(key, node_map)``.

        Probing several keys (the two endpoints of a symmetric pair)
        counts as *one* lookup: one hit when any key is cached, one
        miss when none is.  A reader pinned to an ``epoch`` older than
        the cache's contents always misses (it must not observe maps
        computed against newer edge weights).
        """
        with self._lock:
            if epoch is not None and epoch < self.epoch:
                self.misses += 1
                return None
            for key in keys:
                node_map = self._maps.get(key)
                if node_map is not None:
                    self._maps.move_to_end(key)
                    self.hits += 1
                    return key, node_map
            self.misses += 1
            return None

    def put(
        self,
        key: CacheKey,
        node_map: Dict[int, float],
        epoch: Optional[int] = None,
    ) -> int:
        """Insert a map; returns how many LRU maps were evicted.

        A writer pinned to an ``epoch`` older than the cache's is
        rejected (counted in ``stale_puts``): its map was computed
        against edge weights an :meth:`invalidate` has since retired.
        """
        evicted_count = 0
        with self._lock:
            if epoch is not None and epoch < self.epoch:
                self.stale_puts += 1
                return 0
            old = self._maps.pop(key, None)
            if old is not None:
                self._entries -= len(old)
            self._maps[key] = node_map
            self._entries += len(node_map)
            if self.max_entries is not None:
                # Evict LRU maps until within budget; the newly inserted
                # map always stays (an oversized map would otherwise make
                # every future put a no-op).
                while self._entries > self.max_entries and len(self._maps) > 1:
                    _, evicted = self._maps.popitem(last=False)
                    self._entries -= len(evicted)
                    self.evictions += 1
                    evicted_count += 1
        return evicted_count

    def clear(self) -> None:
        """Drop every cached map; counters keep their lifetime values."""
        with self._lock:
            self._maps.clear()
            self._entries = 0

    def invalidate(self, epoch: int) -> bool:
        """Drop everything and advance the cache to ``epoch``.

        Called when a distance-changing update commits.  Monotonic: an
        ``epoch`` at or below the cache's current one is a no-op (a
        late-arriving invalidation for an already-superseded version
        must not resurrect staleness).  Returns whether the cache was
        actually cleared.
        """
        with self._lock:
            if epoch <= self.epoch:
                return False
            self._maps.clear()
            self._entries = 0
            self.epoch = epoch
            self.invalidations += 1
            return True

    def counters_snapshot(self) -> Tuple[int, int, int]:
        with self._lock:
            return (self.hits, self.misses, self.evictions)

    def stats(self) -> Dict[str, Optional[int]]:
        """A JSON-able view for metric records and reports."""
        with self._lock:
            return {
                "maps": len(self._maps),
                "entries": self._entries,
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "epoch": self.epoch,
                "stale_puts": self.stale_puts,
                "invalidations": self.invalidations,
            }


class PairwiseDistanceComputer:
    """Evaluates pairwise distances through a :class:`DistanceCache`.

    Diversified search needs many ``δ(o_i, o_j)`` evaluations over the
    same small set of candidates (paper §4.1 calls this "cost
    expensive").  Each distinct source runs one bounded Dijkstra whose
    node map is cached; subsequent pairs against that source are O(1).
    Distances are symmetric, so a pair is answered from *either*
    endpoint's cached map before any new Dijkstra runs.

    ``cache`` may be shared across computers (and therefore queries);
    when omitted a private unbounded cache reproduces the historic
    per-query behaviour.  ``dijkstra_runs``/``dijkstra_seconds`` and
    the ``cache_hits``/``cache_misses``/``cache_evictions`` counters
    are lifetime totals of *this computer* — counted locally, not read
    off the (possibly shared) cache, so a computer owned by one query
    reports that query's deltas even while other threads hammer the
    same cache.  Callers that share a computer across queries must
    snapshot and report deltas.  A computer itself is **not**
    thread-safe; create one per query.

    ``backend`` plugs in a :class:`DistanceBackend` oracle (e.g. a
    Contraction Hierarchy): every cross-edge pair is then answered by
    the oracle instead of the cached-Dijkstra path, with the oracle's
    work charged to this computer's own :class:`BackendCounters` and
    ``backend_seconds``.  :meth:`prefetch` bulk-resolves a candidate
    set through the oracle's many-to-many kernel; prefetched pairs are
    served as cache hits.  The oracle itself may be shared across
    queries and threads (it is immutable after construction).
    """

    def __init__(
        self,
        provider: AdjacencyProvider,
        network: RoadNetwork,
        cutoff: float = INF,
        cache: Optional[DistanceCache] = None,
        tracer=NULL_TRACER,
        backend: Optional[DistanceBackend] = None,
        epoch: Optional[int] = None,
    ) -> None:
        self._provider = provider
        self._network = network
        self._cutoff = cutoff
        self._cache = cache if cache is not None else DistanceCache()
        self._backend = backend
        #: Data epoch this computer's query is pinned to; gates every
        #: shared-cache access (see ``DistanceCache`` epoch versioning).
        #: ``None`` on static databases and private caches.
        self._epoch = epoch
        #: Pair distances bulk-resolved by :meth:`prefetch`, keyed by
        #: the two positions' ``(edge_id, offset)`` pairs, sorted.
        self._pair_cache: Dict[Tuple, float] = {}
        #: Tracer for cache-hit events and per-Dijkstra spans; the
        #: disabled NULL_TRACER costs one attribute read per distance.
        self.tracer = tracer
        self.dijkstra_runs = 0
        self.dijkstra_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: Oracle-side work of *this* computer (per-query deltas even
        #: on a shared oracle); zero on the Dijkstra backend.
        self.backend_counters = BackendCounters()
        self.backend_seconds = 0.0

    @property
    def cache(self) -> DistanceCache:
        return self._cache

    @property
    def cutoff(self) -> float:
        return self._cutoff

    @property
    def backend(self) -> Optional[DistanceBackend]:
        return self._backend

    @property
    def backend_name(self) -> str:
        """The distance backend answering this computer's pairs."""
        return self._backend.name if self._backend is not None else "dijkstra"

    @property
    def pairwise_seconds(self) -> float:
        """Total pairwise-evaluation seconds, whichever backend ran."""
        return self.dijkstra_seconds + self.backend_seconds

    def _key(self, pos: NetworkPosition) -> CacheKey:
        return (pos.edge_id, pos.offset, self._cutoff)

    def _run_dijkstra(self, pos: NetworkPosition) -> Dict[int, float]:
        start = time.perf_counter()
        node_map = single_source_distances(
            self._provider, self._network, pos, cutoff=self._cutoff
        )
        elapsed = time.perf_counter() - start
        self.dijkstra_seconds += elapsed
        self.dijkstra_runs += 1
        if self.tracer.enabled:
            self.tracer.add_span(
                "pairwise.dijkstra", elapsed, start=start,
                source_edge=pos.edge_id, map_nodes=len(node_map),
                cutoff=self._cutoff,
            )
        self.cache_evictions += self._cache.put(
            self._key(pos), node_map, epoch=self._epoch
        )
        return node_map

    def _pair_key(self, a: NetworkPosition, b: NetworkPosition) -> Tuple:
        ka, kb = (a.edge_id, a.offset), (b.edge_id, b.offset)
        return (ka, kb) if ka <= kb else (kb, ka)

    def _backend_distance(self, a: NetworkPosition, b: NetworkPosition) -> float:
        # A miss is only charged when the prefetched pair cache was
        # actually probed; without a prefetch there is no cache to miss,
        # and charging one per point query deflates the hit-rate SLO.
        if self._pair_cache:
            d = self._pair_cache.get(self._pair_key(a, b))
            if d is not None:
                self.cache_hits += 1
                return d
            self.cache_misses += 1
        before_settled = self.backend_counters.settled_nodes
        start = time.perf_counter()
        d = self._backend.position_distance(
            a, b, cutoff=self._cutoff, counters=self.backend_counters
        )
        elapsed = time.perf_counter() - start
        self.backend_seconds += elapsed
        if self.tracer.enabled:
            # Span named after the backend ("ch.query" / "hub.query"),
            # so EXPLAIN narrates each oracle with its own vocabulary.
            self.tracer.add_span(
                f"{self._backend.name}.query", elapsed, start=start,
                source_edge=a.edge_id, target_edge=b.edge_id,
                cutoff=self._cutoff,
                entries_scanned=(
                    self.backend_counters.settled_nodes - before_settled
                ),
            )
        return d

    def prefetch(self, positions: Iterable[NetworkPosition]) -> int:
        """Bulk-resolve all pairwise distances of ``positions``.

        Runs the backend oracle's bucket-based many-to-many kernel once
        and stores the matrix; later :meth:`distance` calls over these
        positions are O(1) lookups (counted as cache hits).  A no-op
        returning 0 on the Dijkstra backend, whose per-source node-map
        cache already amortises the matrix.
        """
        if self._backend is None:
            return 0
        pos_list = list(positions)
        if len(pos_list) < 2:
            return 0
        before_settled = self.backend_counters.settled_nodes
        before_hits = self.backend_counters.bucket_hits
        start = time.perf_counter()
        matrix = self._backend.position_matrix(
            pos_list, cutoff=self._cutoff, counters=self.backend_counters
        )
        for (i, j), d in matrix.items():
            self._pair_cache[self._pair_key(pos_list[i], pos_list[j])] = d
        elapsed = time.perf_counter() - start
        self.backend_seconds += elapsed
        if self.tracer.enabled:
            self.tracer.add_span(
                f"{self._backend.name}.many_to_many", elapsed, start=start,
                positions=len(pos_list), pairs=len(matrix),
                cutoff=self._cutoff,
                entries_scanned=(
                    self.backend_counters.settled_nodes - before_settled
                ),
                kernel_hits=(
                    self.backend_counters.bucket_hits - before_hits
                ),
            )
        return len(matrix)

    def pairwise_matrix(self, positions: Iterable[NetworkPosition]):
        """The full symmetric pairwise matrix as a numpy array.

        Served straight from the backend's array kernel (currently the
        hub-label join) with no per-pair Python — the array greedy
        consumes the result as-is.  Returns ``None`` when the backend
        has no array kernel; callers fall back to :meth:`pairwise`.
        """
        array_kernel = getattr(self._backend, "position_matrix_array", None)
        if array_kernel is None:
            return None
        pos_list = list(positions)
        if len(pos_list) < 2:
            return array_kernel(pos_list)
        before_settled = self.backend_counters.settled_nodes
        before_hits = self.backend_counters.bucket_hits
        start = time.perf_counter()
        matrix = array_kernel(
            pos_list, cutoff=self._cutoff, counters=self.backend_counters
        )
        elapsed = time.perf_counter() - start
        self.backend_seconds += elapsed
        if self.tracer.enabled:
            self.tracer.add_span(
                f"{self._backend.name}.many_to_many", elapsed, start=start,
                positions=len(pos_list),
                pairs=len(pos_list) * (len(pos_list) - 1) // 2,
                cutoff=self._cutoff,
                entries_scanned=(
                    self.backend_counters.settled_nodes - before_settled
                ),
                kernel_hits=(
                    self.backend_counters.bucket_hits - before_hits
                ),
            )
        return matrix

    def _all_pairs_prefetched(self, pos_list: List[NetworkPosition]) -> bool:
        """True when a prior :meth:`prefetch` already resolved every
        cross-edge pair of ``pos_list``, so the many-to-many kernel
        need not run again (the SEQ path prefetches the candidate pool
        once and then asks for the same matrix during greedy)."""
        if self._backend is None or not self._pair_cache:
            return False
        cache = self._pair_cache
        for i, a in enumerate(pos_list):
            for b in pos_list[i + 1 :]:
                if a.edge_id == b.edge_id:
                    continue
                if self._pair_key(a, b) not in cache:
                    return False
        return True

    def distance(self, a: NetworkPosition, b: NetworkPosition) -> float:
        """``δ(a, b)``, or ``inf`` when it exceeds the cutoff."""
        if a.edge_id == b.edge_id:
            return abs(a.offset - b.offset)
        if self._backend is not None:
            # Clamp exactly like the Dijkstra path below: a caller must
            # see the same inf-beyond-cutoff contract on every backend.
            d = self._backend_distance(a, b)
            return d if d <= self._cutoff else INF
        key_a = self._key(a)
        found = self._cache.get(key_a, self._key(b), epoch=self._epoch)
        if found is not None:
            self.cache_hits += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "pairwise.cache_hit", source_edge=found[0][0]
                )
        else:
            self.cache_misses += 1
        if found is None:
            node_map, source, target = self._run_dijkstra(a), a, b
        elif found[0] == key_a:
            node_map, source, target = found[1], a, b
        else:
            node_map, source, target = found[1], b, a
        d = position_distance_from_node_map(
            self._network, node_map, target, source=source
        )
        return d if d <= self._cutoff else INF

    def pairwise(
        self, positions: Iterable[NetworkPosition]
    ) -> Dict[Tuple[int, int], float]:
        """All pairwise distances among ``positions`` (by index).

        On a backend oracle the whole matrix is resolved through the
        many-to-many kernel first, so each pair costs one lookup.
        """
        pos_list = list(positions)
        if not self._all_pairs_prefetched(pos_list):
            self.prefetch(pos_list)
        out: Dict[Tuple[int, int], float] = {}
        for i in range(len(pos_list)):
            for j in range(i + 1, len(pos_list)):
                out[(i, j)] = self.distance(pos_list[i], pos_list[j])
        return out
