"""Road network model (paper §2.1).

A road network is a weighted graph ``G = (V, E, W)``: nodes are road
intersections with 2-d coordinates, edges are bidirectional road
segments with a positive *length* (geometric) and a positive *weight*
(cost — distance or travel time).  Spatio-textual objects and query
points lie on edges; their location is a :class:`NetworkPosition`, an
``(edge, offset)`` pair where the offset is measured in *weight* units
from the edge's reference node (the end-node with the smaller id).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import GraphError
from ..spatial.geometry import MBR, Point

__all__ = ["Node", "Edge", "NetworkPosition", "RoadNetwork"]


@dataclass(frozen=True)
class Node:
    """A road intersection."""

    node_id: int
    point: Point


@dataclass(frozen=True)
class Edge:
    """A bidirectional road segment between two intersections.

    ``n1`` is always the *reference node* (smaller id); object offsets
    are measured from it.  ``length`` is the geometric length of the
    segment while ``weight`` is its traversal cost — they coincide when
    the cost model is distance.
    """

    edge_id: int
    n1: int
    n2: int
    length: float
    weight: float
    p1: Point
    p2: Point

    def __post_init__(self) -> None:
        if self.n1 >= self.n2:
            raise GraphError(
                f"edge {self.edge_id}: reference node must have the smaller id "
                f"({self.n1} >= {self.n2})"
            )
        if self.length <= 0 or self.weight <= 0:
            raise GraphError(
                f"edge {self.edge_id}: length and weight must be positive"
            )

    @property
    def mbr(self) -> MBR:
        return MBR(
            min(self.p1.x, self.p2.x),
            min(self.p1.y, self.p2.y),
            max(self.p1.x, self.p2.x),
            max(self.p1.y, self.p2.y),
        )

    @property
    def center(self) -> Point:
        return Point((self.p1.x + self.p2.x) / 2.0, (self.p1.y + self.p2.y) / 2.0)

    def point_at_fraction(self, t: float) -> Point:
        """Point at fractional position ``t in [0, 1]`` from ``n1``."""
        return Point(
            self.p1.x + t * (self.p2.x - self.p1.x),
            self.p1.y + t * (self.p2.y - self.p1.y),
        )

    def weight_offset_from_length(self, length_offset: float) -> float:
        """Convert a length offset from ``n1`` into a weight offset.

        Paper footnote 1: ``w(n1, p) = w(n1, n2) * d(n1, p) / d(n1, n2)``.
        """
        return self.weight * (length_offset / self.length)


@dataclass(frozen=True)
class NetworkPosition:
    """A location on the network: an edge plus a weight-offset from ``n1``."""

    edge_id: int
    offset: float  # in weight units, 0 at the reference node n1

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise GraphError(f"negative offset {self.offset} on edge {self.edge_id}")


class RoadNetwork:
    """In-memory road network with adjacency lists.

    This is the *logical* graph.  Query processing never touches it
    directly: it goes through the CCAM disk layout
    (:class:`repro.network.ccam.CCAMStore`) so adjacency accesses are
    charged to the I/O model.  The in-memory form is used by builders,
    dataset generators and tests.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._edges: Dict[int, Edge] = {}
        self._adjacency: Dict[int, List[Tuple[int, int, float]]] = {}
        self._edge_by_nodes: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, x: float, y: float) -> Node:
        if node_id in self._nodes:
            raise GraphError(f"duplicate node id {node_id}")
        node = Node(node_id, Point(x, y))
        self._nodes[node_id] = node
        self._adjacency[node_id] = []
        return node

    def add_edge(
        self,
        node_a: int,
        node_b: int,
        weight: Optional[float] = None,
        length: Optional[float] = None,
    ) -> Edge:
        """Add a bidirectional edge between two existing nodes.

        ``length`` defaults to the Euclidean distance between the
        end-points; ``weight`` defaults to ``length`` (distance cost
        model).
        """
        if node_a == node_b:
            raise GraphError(f"self-loop at node {node_a}")
        for nid in (node_a, node_b):
            if nid not in self._nodes:
                raise GraphError(f"unknown node {nid}")
        n1, n2 = (node_a, node_b) if node_a < node_b else (node_b, node_a)
        if (n1, n2) in self._edge_by_nodes:
            raise GraphError(f"duplicate edge ({n1}, {n2})")
        p1, p2 = self._nodes[n1].point, self._nodes[n2].point
        if length is None:
            length = p1.distance_to(p2)
            if length == 0:
                raise GraphError(f"zero-length edge ({n1}, {n2})")
        if weight is None:
            weight = length
        edge = Edge(len(self._edges), n1, n2, length, weight, p1, p2)
        self._edges[edge.edge_id] = edge
        self._adjacency[n1].append((edge.edge_id, n2, weight))
        self._adjacency[n2].append((edge.edge_id, n1, weight))
        self._edge_by_nodes[(n1, n2)] = edge.edge_id
        return edge

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_edge_weight(self, edge_id: int, weight: float) -> Edge:
        """Change the traversal cost of an existing edge.

        Returns the replacement :class:`Edge`.  Only the *weight* (cost)
        changes; geometry (``length``, end-points) is immutable.  The
        caller owns downstream consistency — object offsets are in
        weight units and any derived structure (CCAM pages, distance
        caches, CH oracles) holds copies of the old weight; see
        ``Database.update_edge_weight`` for the orchestrated version.
        """
        old = self.edge(edge_id)
        if weight <= 0:
            raise GraphError(f"edge {edge_id}: weight must be positive")
        new = dataclasses.replace(old, weight=weight)
        self._edges[edge_id] = new
        for node_id in (new.n1, new.n2):
            adj = self._adjacency[node_id]
            for i, (eid, other, _) in enumerate(adj):
                if eid == edge_id:
                    adj[i] = (eid, other, weight)
        return new

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def edge(self, edge_id: int) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id}") from None

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def neighbors(self, node_id: int) -> List[Tuple[int, int, float]]:
        """Adjacency list of ``node_id`` as ``(edge_id, other, weight)``."""
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def edge_between(self, node_a: int, node_b: int) -> Optional[Edge]:
        n1, n2 = (node_a, node_b) if node_a < node_b else (node_b, node_a)
        edge_id = self._edge_by_nodes.get((n1, n2))
        return None if edge_id is None else self._edges[edge_id]

    def degree(self, node_id: int) -> int:
        return len(self.neighbors(node_id))

    # ------------------------------------------------------------------
    # Positions
    # ------------------------------------------------------------------
    def position_point(self, pos: NetworkPosition) -> Point:
        """Geometric point of a network position."""
        edge = self.edge(pos.edge_id)
        if pos.offset > edge.weight + 1e-9:
            raise GraphError(
                f"offset {pos.offset} exceeds weight {edge.weight} "
                f"of edge {pos.edge_id}"
            )
        t = min(1.0, pos.offset / edge.weight)
        return edge.point_at_fraction(t)

    def node_position(self, node_id: int) -> NetworkPosition:
        """A network position located exactly at a node."""
        adj = self.neighbors(node_id)
        if not adj:
            raise GraphError(f"node {node_id} is isolated")
        edge_id, _, _ = adj[0]
        edge = self.edge(edge_id)
        offset = 0.0 if edge.n1 == node_id else edge.weight
        return NetworkPosition(edge_id, offset)

    def validate(self) -> None:
        """Sanity-check internal consistency; raises on corruption."""
        for edge in self._edges.values():
            if edge.n1 == edge.n2:
                # Unreachable through add_edge/Edge (both reject loops);
                # guards against corruption from direct _edges injection.
                raise GraphError(f"edge {edge.edge_id} is a self-loop")
            for nid in (edge.n1, edge.n2):
                if nid not in self._nodes:
                    raise GraphError(f"edge {edge.edge_id} references unknown {nid}")
        for node_id, adj in self._adjacency.items():
            for edge_id, other, weight in adj:
                edge = self._edges.get(edge_id)
                if edge is None:
                    raise GraphError(f"adjacency references unknown edge {edge_id}")
                if node_id not in (edge.n1, edge.n2) or other not in (edge.n1, edge.n2):
                    raise GraphError(f"adjacency/edge mismatch on edge {edge_id}")
                if abs(weight - edge.weight) > 1e-9:
                    raise GraphError(f"adjacency weight mismatch on edge {edge_id}")
