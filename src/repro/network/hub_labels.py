"""2-hop hub-label distance oracle built on the CH ordering.

PR 5's Contraction Hierarchy answers ``δ(a, b)`` with two *query-time*
upward Dijkstras.  Hub labeling moves those searches offline: the
*label* of node ``v`` is its entire CH upward search space — every node
``h`` reachable from ``v`` over upward edges, with the upward-path cost
``d↑(v, h)``.  The CH correctness property (the shortest path always
has an "up then down" representative) then gives, for any two nodes::

    δ(a, b) = min over common hubs h of  d↑(a, h) + d↑(b, h)

so a point query is a sorted-array merge of two labels — no heap, no
graph — and the candidate×candidate matrix SEQ needs becomes one
batched *label-join kernel*: group every candidate label entry by hub,
expand each shared hub's group into its within-group position pairs,
and min-reduce the candidate sums per (i, j) cell with one sort +
``minimum.reduceat`` pass.  The work is ``Σ_h c_h²`` over shared hubs
— proportional to how often labels actually meet, not to the dense
``n² × hubs`` product.

Labels are stored flat: one ``(hubs, dists)`` array pair per node,
hubs encoded as CH *ranks* (sorted ascending, so two labels merge by
``intersect1d`` on pre-sorted unique arrays).  Raw CH search spaces
over-approximate the minimal label: entries whose upward distance
exceeds the true distance can never win a join, and
:meth:`HubLabelBackend._prune_path_covered` removes them at build time
(``prune_labels=False`` keeps the raw spaces for A/B comparison) —
smaller labels, faster joins, byte-identical distances.  Network positions get a
label on the fly by min-merging their edge's two end-node labels with
the seed offsets folded in — exactly the multi-seed upward search the
CH runs at query time, evaluated lazily.

Same contracts as every other backend, bit for bit where it matters:
the same-edge fiat rule short-circuits before any label work, answers
beyond ``cutoff`` report ``inf``, and the oracle is immutable — an
edge reweight drops the whole instance for lazy rebuild (see
``Database.update_edge_weight``), never patches it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..nplib import require_numpy
from .ch import ContractionHierarchy
from .distance import INF, BackendCounters, seed_distances
from .graph import NetworkPosition, RoadNetwork

__all__ = ["HubLabelBackend"]

#: Cap on the scratch arrays of the min-plus kernel, in pair cells;
#: hub groups are chunked so a block's expanded pair count stays below
#: this.
_KERNEL_CELL_BUDGET = 2_000_000

#: Position-label memo size; cleared wholesale when full (the oracle
#: itself is dropped on any edge reweight, so entries never go stale).
_LABEL_CACHE_ENTRIES = 8192


class HubLabelBackend:
    """An exact point-to-point / many-to-many hub-label oracle.

    Implements the :class:`repro.network.distance.DistanceBackend`
    protocol under the name ``"hub"``.  Immutable once constructed and
    safe to share across queries and threads.  Per-call work is charged
    to the caller's :class:`BackendCounters`: ``settled_nodes`` counts
    label entries scanned, ``bucket_hits`` counts label entries that
    participated in a join (the kernel-hit metric EXPLAIN narrates).

    ``ch`` reuses an already-built Contraction Hierarchy (the labels
    *are* its upward search spaces); when omitted one is built here.
    """

    name = "hub"

    def __init__(
        self,
        network: RoadNetwork,
        ch: Optional[ContractionHierarchy] = None,
        max_witness_settled: int = 50,
        prune_labels: bool = True,
    ) -> None:
        self._np = require_numpy("the hub-label distance backend")
        if ch is None:
            ch = ContractionHierarchy(
                network, max_witness_settled=max_witness_settled
            )
        self._network = network
        self.ch = ch
        self.num_nodes = ch.num_nodes
        self.prune_labels = prune_labels
        self._label_cache: Dict[Tuple[int, float], Tuple] = {}
        start = time.perf_counter()
        self._build_labels()
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Offline label construction
    # ------------------------------------------------------------------
    def _build_labels(self) -> None:
        np = self._np
        rank = self.ch.rank
        n = self.num_nodes
        # Row r holds the label of the node with CH rank r; ranks are a
        # permutation of 0..n-1 so the rank doubles as the row index
        # *and* as the hub encoding inside labels.
        indptr = np.zeros(n + 1, dtype=np.int64)
        hub_chunks: List = []
        dist_chunks: List = []
        total = 0
        max_label = 0
        for node, r in rank.items():
            settled = self.ch._upward_search({node: 0.0})
            hubs = np.fromiter(
                (rank[h] for h in settled), np.int64, len(settled)
            )
            dists = np.fromiter(settled.values(), np.float64, len(settled))
            order = np.argsort(hubs)
            hub_chunks.append((r, hubs[order], dists[order]))
            total += len(settled)
            max_label = max(max_label, len(settled))
        hub_chunks.sort(key=lambda t: t[0])
        for r, hubs, dists in hub_chunks:
            indptr[r + 1] = indptr[r] + len(hubs)
            dist_chunks.append(dists)
        self._indptr = indptr
        self._hubs = (
            np.concatenate([h for _, h, _ in hub_chunks])
            if hub_chunks else np.zeros(0, dtype=np.int64)
        )
        self._dists = (
            np.concatenate(dist_chunks)
            if dist_chunks else np.zeros(0, dtype=np.float64)
        )
        self.num_labels = n
        self.label_entries_unpruned = total
        self.pruned_entries = 0
        if self.prune_labels and n:
            self._prune_path_covered()
        sizes = np.diff(self._indptr)
        self.label_entries = int(sizes.sum()) if n else 0
        self.max_label_size = int(sizes.max()) if n else 0
        self.avg_label_size = self.label_entries / n if n else 0.0

    def _prune_path_covered(self) -> None:
        """Drop label entries whose upward distance is not the true
        distance — the *path-cover* prune (Abraham et al., HHL).

        The CH upward search records ``d↑(v, h)``, the cheapest
        *upward-only* path to ``h``, which can exceed the true
        ``δ(v, h)`` when the shortest v→h path dips below ``h`` in the
        hierarchy.  Such an entry can never participate in a tight
        meeting: for any target ``w``, the sum via ``h`` is
        ``d↑(v, h) + d↑(w, h) > δ(v, h) + δ(h, w) ≥ δ(v, w)``, while
        the CH up-down property guarantees some hub ``h*`` meets with
        *both* sides tight — and tight entries are never dropped here
        (their join equals the stored value, not less).  So pruning on
        the **unpruned** labels — entry ``(h, d)`` goes when
        ``join(L(v), L(h)) < d``, i.e. an already-known hub pair
        certifies a strictly cheaper v→h path — leaves every query
        minimum byte-identical, certificates included or not.

        The join always contains the ``(h, h)`` pair at exactly ``d``
        (hub ``h`` holds itself at 0), so ``joined < d`` is precisely
        "a different hub certifies cheaper", with float comparisons on
        the very sums the query kernel would form.
        """
        np = self._np
        indptr = self._indptr
        hubs = self._hubs
        dists = self._dists
        n = self.num_labels
        keep = np.ones(len(hubs), dtype=bool)
        for r in range(n):
            s, e = int(indptr[r]), int(indptr[r + 1])
            if e - s <= 1:
                continue  # only the self entry; nothing to cover it
            ha, da = hubs[s:e], dists[s:e]
            for k in range(e - s):
                h = int(ha[k])
                if h == r:
                    continue  # self entry (d = 0) is always tight
                hs, he = int(indptr[h]), int(indptr[h + 1])
                _c, ia, ib = np.intersect1d(
                    ha, hubs[hs:he], assume_unique=True,
                    return_indices=True,
                )
                joined = float((da[ia] + dists[hs:he][ib]).min())
                if joined < float(da[k]):
                    keep[s + k] = False
        dropped = int(len(keep) - int(keep.sum()))
        if not dropped:
            return
        self.pruned_entries = dropped
        # Every row keeps at least its self entry, so indptr[:-1] is
        # strictly increasing and reduceat sees one segment per node.
        kept_per_row = np.add.reduceat(keep.astype(np.int64), indptr[:-1])
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        new_indptr[1:] = np.cumsum(kept_per_row)
        self._hubs = hubs[keep]
        self._dists = dists[keep]
        self._indptr = new_indptr

    # ------------------------------------------------------------------
    # Label access
    # ------------------------------------------------------------------
    def _node_label(self, node_id: int):
        r = self.ch.rank[node_id]
        s, e = int(self._indptr[r]), int(self._indptr[r + 1])
        return self._hubs[s:e], self._dists[s:e]

    def _position_label(self, pos: NetworkPosition):
        """Label of a network position: its end-node labels min-merged
        with the seed offsets folded in (hubs stay sorted unique).

        Memoised per (edge, offset) — the oracle is immutable, and the
        same object positions recur across the matrix kernel, the
        finalisation point queries, and later queries of a workload.
        """
        key = (pos.edge_id, pos.offset)
        cached = self._label_cache.get(key)
        if cached is not None:
            return cached
        label = self._build_position_label(pos)
        if len(self._label_cache) >= _LABEL_CACHE_ENTRIES:
            self._label_cache.clear()
        self._label_cache[key] = label
        return label

    def _build_position_label(self, pos: NetworkPosition):
        np = self._np
        seeds = seed_distances(self._network, pos)
        parts = []
        for node_id, off in seeds.items():
            hubs, dists = self._node_label(node_id)
            parts.append((hubs, dists + off))
        if len(parts) == 1:
            return parts[0]
        h = np.concatenate([p[0] for p in parts])
        d = np.concatenate([p[1] for p in parts])
        order = np.argsort(h, kind="stable")
        h, d = h[order], d[order]
        first = np.empty(len(h), dtype=bool)
        first[:1] = True
        first[1:] = h[1:] != h[:-1]
        starts = np.flatnonzero(first)
        return h[starts], np.minimum.reduceat(d, starts)

    def _join(self, ha, da, hb, db) -> float:
        """Minimum meeting cost of two sorted-unique labels."""
        np = self._np
        _common, ia, ib = np.intersect1d(
            ha, hb, assume_unique=True, return_indices=True
        )
        if len(ia) == 0:
            return INF
        return float((da[ia] + db[ib]).min())

    # ------------------------------------------------------------------
    # DistanceBackend protocol
    # ------------------------------------------------------------------
    def node_distance(
        self,
        a: int,
        b: int,
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> float:
        """Exact node-to-node distance; ``inf`` beyond ``cutoff``."""
        if a == b:
            return 0.0
        ha, da = self._node_label(a)
        hb, db = self._node_label(b)
        if counters is not None:
            counters.queries += 1
            counters.settled_nodes += len(ha) + len(hb)
        d = self._join(ha, da, hb, db)
        return d if d <= cutoff else INF

    def position_distance(
        self,
        a: NetworkPosition,
        b: NetworkPosition,
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> float:
        """Exact ``δ(a, b)`` by sorted label merge (Equation 1).

        Same-edge pairs short-circuit by the paper's fiat rule before
        any label is touched, exactly like the other backends.
        """
        if a.edge_id == b.edge_id:
            return abs(a.offset - b.offset)
        ha, da = self._position_label(a)
        hb, db = self._position_label(b)
        if counters is not None:
            counters.queries += 1
            counters.settled_nodes += len(ha) + len(hb)
        d = self._join(ha, da, hb, db)
        return d if d <= cutoff else INF

    def position_matrix(
        self,
        positions: Sequence[NetworkPosition],
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ) -> Dict[Tuple[int, int], float]:
        """The full pairwise matrix as an ``(i, j) → δ`` dict.

        A thin wrapper over :meth:`position_matrix_array` for callers
        that speak the dict protocol (the prefetch pair cache).  Keys
        are index pairs ``(i, j)`` with ``i < j``; values follow the
        same same-edge / cutoff contract as :meth:`position_distance`.
        """
        pos_list = list(positions)
        n = len(pos_list)
        if n < 2:
            return {}
        dist = self.position_matrix_array(
            pos_list, cutoff=cutoff, counters=counters
        )
        out: Dict[Tuple[int, int], float] = {}
        for i in range(n):
            row = dist[i].tolist()
            for j in range(i + 1, n):
                out[(i, j)] = row[j]
        return out

    def position_matrix_array(
        self,
        positions: Sequence[NetworkPosition],
        cutoff: float = INF,
        counters: Optional[BackendCounters] = None,
    ):
        """The full pairwise matrix via the batched label-join kernel.

        Groups every position-label entry by hub — only hubs appearing
        in at least two labels can join — then expands each shared
        hub's group into its within-group position pairs and min-plus
        reduces the candidate sums per matrix cell in one sorted
        ``minimum.reduceat`` sweep, chunked to bound scratch memory.
        Returns the dense symmetric ``n × n`` float64 array (diagonal
        0) with the same-edge fiat and cutoff contracts already
        applied — no per-pair Python in the whole pass, which is what
        lets the array greedy consume it directly.
        """
        np = self._np
        pos_list = list(positions)
        n = len(pos_list)
        if n < 2:
            return np.zeros((n, n), dtype=np.float64)
        labels = [self._position_label(p) for p in pos_list]
        entries = sum(len(h) for h, _ in labels)
        if counters is not None:
            counters.queries += n
            counters.settled_nodes += entries
        all_h = np.concatenate([h for h, _ in labels])
        all_d = np.concatenate([d for _, d in labels])
        all_p = np.concatenate([
            np.full(len(h), i, dtype=np.int64)
            for i, (h, _) in enumerate(labels)
        ])
        order = np.argsort(all_h, kind="stable")
        h, d, p = all_h[order], all_d[order], all_p[order]
        newgrp = np.empty(len(h), dtype=bool)
        newgrp[:1] = True
        newgrp[1:] = h[1:] != h[:-1]
        grp = np.cumsum(newgrp) - 1
        counts = np.bincount(grp)
        shared = counts >= 2  # hubs reached by >= 2 positions
        keep = shared[grp]
        kernel_hits = int(keep.sum())
        dist = np.full((n, n), INF)
        if kernel_hits:
            dk = d[keep]
            pk = p[keep]
            gk_raw = grp[keep]
            new_g = np.empty(kernel_hits, dtype=bool)
            new_g[:1] = True
            new_g[1:] = gk_raw[1:] != gk_raw[:-1]
            gk = np.cumsum(new_g) - 1
            counts_all = np.bincount(gk)
            starts_all = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts_all[:-1]))
            )
            # Hubs near the top of the hierarchy sit in almost every
            # label; expanding their c² pairs through the sort path
            # costs more than one dense n² broadcast, so large groups
            # go dense and only the (many, small) rest are expanded.
            big = counts_all * counts_all * 4 >= n * n
            for g in np.flatnonzero(big):
                s0 = int(starts_all[g])
                e0 = s0 + int(counts_all[g])
                col = np.full(n, INF)
                col[pk[s0:e0]] = dk[s0:e0]
                np.minimum(dist, col[:, None] + col[None, :], out=dist)
            small = ~big[gk]
            dk = dk[small]
            pk = pk[small]
            counts_k = counts_all[~big]
            group_starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts_k[:-1]))
            )
            pair_counts = counts_k * counts_k
            # Chunk whole hub groups so a block's scratch pair count
            # stays under the budget (one oversized group still gets a
            # block of its own).
            budget = max(
                int(_KERNEL_CELL_BUDGET),
                int(pair_counts.max()) if len(pair_counts) else 1,
            )
            excl = np.cumsum(pair_counts) - pair_counts
            block_of_group = excl // budget
            num_groups = len(counts_k)
            bounds = np.flatnonzero(
                np.concatenate(
                    ([True], block_of_group[1:] != block_of_group[:-1])
                )
            )
            bounds = np.append(bounds, num_groups)
            flat = dist.reshape(-1)
            for gs, ge in zip(bounds[:-1], bounds[1:]):
                c_sel = counts_k[gs:ge]
                pc = c_sel * c_sel
                total = int(pc.sum())
                bstart = np.concatenate(
                    (np.zeros(1, dtype=np.int64), np.cumsum(pc[:-1]))
                )
                gid = np.repeat(np.arange(ge - gs), pc)
                local = np.arange(total) - bstart[gid]
                cg = c_sel[gid]
                li = group_starts[gs:ge][gid] + local // cg
                ri = group_starts[gs:ge][gid] + local % cg
                pi, pj = pk[li], pk[ri]
                tri = pi < pj  # upper triangle only; (i, i) is unused
                cells = pi[tri] * n + pj[tri]
                sums = dk[li][tri] + dk[ri][tri]
                order = np.argsort(cells, kind="stable")
                cells, sums = cells[order], sums[order]
                bound = np.empty(len(cells), dtype=bool)
                bound[:1] = True
                bound[1:] = cells[1:] != cells[:-1]
                cell_starts = np.flatnonzero(bound)
                if len(cell_starts):
                    mins = np.minimum.reduceat(sums, cell_starts)
                    ucells = cells[cell_starts]  # unique within block
                    flat[ucells] = np.minimum(flat[ucells], mins)
        # Contracts, vectorized: inf beyond the cutoff, then the
        # same-edge fiat rule (which bypasses the cutoff), symmetric
        # with a zero diagonal.
        dist = np.minimum(dist, dist.T)
        dist = np.where(dist <= cutoff, dist, INF)
        edge_ids = np.fromiter(
            (pos.edge_id for pos in pos_list), np.int64, n
        )
        offsets = np.fromiter(
            (pos.offset for pos in pos_list), np.float64, n
        )
        order = np.argsort(edge_ids, kind="stable")
        sorted_edges = edge_ids[order]
        run_starts = np.flatnonzero(
            np.concatenate(([True], sorted_edges[1:] != sorted_edges[:-1]))
        )
        for s, e in zip(run_starts, np.append(run_starts[1:], n)):
            if e - s < 2:
                continue
            rows = order[s:e]
            offs = offsets[rows]
            dist[np.ix_(rows, rows)] = np.abs(offs[:, None] - offs[None, :])
        np.fill_diagonal(dist, 0.0)
        if counters is not None:
            counters.bucket_hits += kernel_hits
            counters.matrix_cells += n * (n - 1) // 2
        return dist

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """A JSON-able build summary for metrics records and gauges."""
        return {
            "nodes": self.num_nodes,
            "labels": self.num_labels,
            "label_entries": self.label_entries,
            "label_entries_unpruned": self.label_entries_unpruned,
            "pruned_entries": self.pruned_entries,
            "avg_label_size": self.avg_label_size,
            "max_label_size": self.max_label_size,
            "build_seconds": self.build_seconds,
            "ch_shortcuts_added": self.ch.shortcuts_added,
            "ch_preprocess_seconds": self.ch.preprocess_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"HubLabelBackend(nodes={self.num_nodes}, "
            f"entries={self.label_entries}, "
            f"avg_label={self.avg_label_size:.1f})"
        )
