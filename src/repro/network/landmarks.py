"""Landmark (ALT-style) network-distance bounds.

The paper's COM algorithm prunes with the triangle inequality through
the query point: ``δ(a, b) ≤ δ(a, q) + δ(q, b)``.  Landmarks give
strictly tighter machinery: pre-compute exact distances from a few
well-spread *landmark* nodes to every node, then for any two positions

``LB(a, b) = max_L |δ(L, a) − δ(L, b)|``   (reverse triangle inequality)
``UB(a, b) = min_L  δ(L, a) + δ(L, b)``    (triangle inequality)

Both bounds are exact consequences of the metric, so plugging the
upper bound into COM's θ-skip preserves the algorithm's answers while
skipping more exact pairwise Dijkstras — the ablation benchmark
``benchmarks/test_ablation_landmarks.py`` quantifies the saving.

Landmark selection uses the standard farthest-point heuristic; the
pre-computation runs one full Dijkstra per landmark through the given
adjacency provider (charged I/O when the provider is the CCAM store,
i.e. an honest index-construction cost).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .distance import AdjacencyProvider, node_source_distances
from .graph import NetworkPosition, RoadNetwork

__all__ = ["LandmarkIndex"]


class LandmarkIndex:
    """Distance bounds from a set of pre-computed landmark maps."""

    def __init__(
        self,
        provider: AdjacencyProvider,
        network: RoadNetwork,
        num_landmarks: int = 8,
        seed_node: Optional[int] = None,
    ) -> None:
        if num_landmarks < 1:
            raise GraphError("need at least one landmark")
        if network.num_nodes == 0:
            raise GraphError("cannot build landmarks on an empty network")
        self._network = network
        self._landmarks: List[int] = []
        self._maps: List[Dict[int, float]] = []

        start = seed_node if seed_node is not None else next(
            iter(n.node_id for n in network.nodes())
        )
        current = start
        min_dist: Dict[int, float] = {}
        for _ in range(min(num_landmarks, network.num_nodes)):
            node_map = node_source_distances(provider, current)
            self._landmarks.append(current)
            self._maps.append(node_map)
            # Farthest-point step: the next landmark maximises the
            # distance to the closest landmark chosen so far.
            for node, d in node_map.items():
                prev = min_dist.get(node)
                if prev is None or d < prev:
                    min_dist[node] = d
            if not min_dist:
                break
            current = max(min_dist, key=min_dist.get)

    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> Sequence[int]:
        return tuple(self._landmarks)

    def _position_distances(self, pos: NetworkPosition) -> List[float]:
        """Exact δ(L, pos) for every landmark (Equation 1)."""
        edge = self._network.edge(pos.edge_id)
        out = []
        for node_map in self._maps:
            d1 = node_map.get(edge.n1)
            d2 = node_map.get(edge.n2)
            best = float("inf")
            if d1 is not None:
                best = d1 + pos.offset
            if d2 is not None:
                best = min(best, d2 + (edge.weight - pos.offset))
            out.append(best)
        return out

    def bounds(
        self, a: NetworkPosition, b: NetworkPosition
    ) -> Tuple[float, float]:
        """``(lower, upper)`` bounds on ``δ(a, b)``."""
        if a.edge_id == b.edge_id:
            d = abs(a.offset - b.offset)
            return d, d
        da = self._position_distances(a)
        db = self._position_distances(b)
        lower = 0.0
        upper = float("inf")
        for x, y in zip(da, db):
            if x == float("inf") or y == float("inf"):
                continue
            lower = max(lower, abs(x - y))
            upper = min(upper, x + y)
        return lower, upper

    def lower_bound(self, a: NetworkPosition, b: NetworkPosition) -> float:
        return self.bounds(a, b)[0]

    def upper_bound(self, a: NetworkPosition, b: NetworkPosition) -> float:
        return self.bounds(a, b)[1]
