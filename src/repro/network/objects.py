"""Spatio-textual objects and the object store (paper §2.1).

An object is a point on an edge plus a set of keywords.  The
:class:`ObjectStore` keeps the master copy of every object, the
per-edge object lists ordered by offset (the "visiting order along the
edge" that §3.3 partitions), and snapping of raw 2-d points onto their
closest edges via the network R-tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..errors import DatasetError, GraphError
from ..spatial.geometry import Point, project_onto_segment
from ..spatial.rtree import RTree, RTreeEntry
from .graph import Edge, NetworkPosition, RoadNetwork

__all__ = ["SpatioTextualObject", "ObjectStore", "snap_point_to_edge"]


@dataclass(frozen=True)
class SpatioTextualObject:
    """A spatio-textual object: a network position and a keyword set."""

    object_id: int
    position: NetworkPosition
    keywords: FrozenSet[str]

    def contains_all(self, terms: Iterable[str]) -> bool:
        """AND semantics of the boolean SK query."""
        return all(t in self.keywords for t in terms)

    def contains_any(self, terms: Iterable[str]) -> bool:
        return any(t in self.keywords for t in terms)


def snap_point_to_edge(
    network: RoadNetwork, edge_rtree: RTree, p: Point, candidates: int = 8
) -> NetworkPosition:
    """Snap a raw 2-d point onto its closest road segment.

    Paper §5: "we move an object to its closest road segment if it does
    not lie on any edge".  The network R-tree prunes in a
    branch-and-bound fashion (§2.2); ``candidates`` nearest MBRs are
    refined with exact point-segment projection.
    """
    entries = edge_rtree.nearest(p, k=candidates)
    if not entries:
        raise GraphError("cannot snap onto an empty network")
    best: Optional[Tuple[float, Edge, float]] = None
    for entry in entries:
        edge = network.edge(entry.payload)
        closest, t = project_onto_segment(p, edge.p1, edge.p2)
        dist = p.distance_to(closest)
        if best is None or dist < best[0]:
            best = (dist, edge, t)
    _, edge, t = best
    return NetworkPosition(edge.edge_id, edge.weight * t)


class ObjectStore:
    """Master store of spatio-textual objects, grouped by edge.

    Objects on the same edge are kept sorted by offset, matching the
    paper's "objects indexed by their visiting order along the edge"
    (§3.3).  The store itself is an in-memory catalogue; disk-resident
    access paths over it are built by the index implementations in
    :mod:`repro.index`.
    """

    def __init__(self, network: RoadNetwork) -> None:
        self._network = network
        self._objects: Dict[int, SpatioTextualObject] = {}
        self._by_edge: Dict[int, List[int]] = {}
        # Monotonic id source: ``len(self._objects)`` would recycle ids
        # after a remove(), aliasing a new object with postings that
        # still reference the deleted one.
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self, position: NetworkPosition, keywords: Iterable[str]
    ) -> SpatioTextualObject:
        """Add an object at ``position``; keywords must be non-empty."""
        kw = frozenset(keywords)
        if not kw:
            raise DatasetError("an object must carry at least one keyword")
        edge = self._network.edge(position.edge_id)
        if position.offset > edge.weight + 1e-9:
            raise DatasetError(
                f"object offset {position.offset} beyond edge weight {edge.weight}"
            )
        obj = SpatioTextualObject(self._next_id, position, kw)
        self._next_id += 1
        self._objects[obj.object_id] = obj
        self._by_edge.setdefault(position.edge_id, []).append(obj.object_id)
        return obj

    def remove(self, object_id: int) -> SpatioTextualObject:
        """Remove an object; returns the removed object.

        Ids are never reused (see ``_next_id``), so stale index
        postings referencing the removed id resolve to "unknown object"
        instead of silently aliasing a newer insert.
        """
        obj = self.get(object_id)
        del self._objects[object_id]
        ids = self._by_edge.get(obj.position.edge_id)
        if ids is not None:
            ids.remove(object_id)
            if not ids:
                del self._by_edge[obj.position.edge_id]
        return obj

    def rescale_edge_offsets(self, edge_id: int, factor: float) -> None:
        """Rescale object offsets on one edge by ``factor``.

        Offsets are in *weight* units, so an edge reweight from ``w`` to
        ``w'`` moves every resident object's offset by ``w'/w`` — the
        object stays at the same geometric point (same fraction along
        the edge).  Visiting order is preserved (factor > 0).
        """
        if factor <= 0:
            raise DatasetError("rescale factor must be positive")
        for oid in self._by_edge.get(edge_id, []):
            old = self._objects[oid]
            self._objects[oid] = SpatioTextualObject(
                old.object_id,
                NetworkPosition(edge_id, old.position.offset * factor),
                old.keywords,
            )

    def freeze(self) -> None:
        """Sort every per-edge list by offset (call once after loading)."""
        for edge_id in self._by_edge:
            self.resort_edge(edge_id)

    def resort_edge(self, edge_id: int) -> None:
        """Restore the visiting order of one edge after an insertion."""
        ids = self._by_edge.get(edge_id)
        if ids:
            ids.sort(key=lambda oid: self._objects[oid].position.offset)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SpatioTextualObject]:
        return iter(self._objects.values())

    @property
    def network(self) -> RoadNetwork:
        return self._network

    def get(self, object_id: int) -> SpatioTextualObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise DatasetError(f"unknown object {object_id}") from None

    def objects_on_edge(self, edge_id: int) -> List[SpatioTextualObject]:
        """Objects on ``edge_id`` ordered by offset from the reference node."""
        return [self._objects[oid] for oid in self._by_edge.get(edge_id, [])]

    def edges_with_objects(self) -> Iterator[int]:
        return iter(self._by_edge.keys())

    def object_point(self, object_id: int) -> Point:
        return self._network.position_point(self.get(object_id).position)

    # ------------------------------------------------------------------
    # Statistics (Table 2)
    # ------------------------------------------------------------------
    def vocabulary(self) -> FrozenSet[str]:
        vocab = set()
        for obj in self._objects.values():
            vocab.update(obj.keywords)
        return frozenset(vocab)

    def keyword_frequencies(self) -> Dict[str, int]:
        """Term frequency (number of objects containing each keyword)."""
        freq: Dict[str, int] = {}
        for obj in self._objects.values():
            for term in obj.keywords:
                freq[term] = freq.get(term, 0) + 1
        return freq

    def average_keywords_per_object(self) -> float:
        if not self._objects:
            return 0.0
        return sum(len(o.keywords) for o in self._objects.values()) / len(self._objects)


def build_edge_rtree(network: RoadNetwork, file) -> RTree:
    """Bulk load the network R-tree over edge MBRs (paper §2.2)."""
    rtree = RTree(file)
    entries = [RTreeEntry(edge.mbr, edge.edge_id) for edge in network.edges()]
    rtree.bulk_load(entries)
    return rtree
