"""The numpy import gate for the array-native core.

numpy is a declared dependency (``pyproject.toml``), but the
pure-Python paths — bounded-Dijkstra distances, scalar scoring — must
keep working in stripped-down environments, so nothing imports numpy
unconditionally.  Every array-native module pulls ``np`` from here;
``np is None`` means the feature is unavailable and
:func:`require_numpy` raises a :class:`~repro.errors.DependencyError`
naming the feature instead of an opaque ``ImportError`` deep inside a
kernel.
"""

from __future__ import annotations

from .errors import DependencyError

try:  # pragma: no cover — exercised by monkeypatching ``np`` in tests
    import numpy as np
except ImportError:  # pragma: no cover — numpy is a declared dependency
    np = None

__all__ = ["np", "HAVE_NUMPY", "require_numpy"]

#: Whether the array-native paths (CSR graph, hub labels, vectorized
#: scoring) are available in this environment.
HAVE_NUMPY = np is not None


def require_numpy(feature: str):
    """Return ``np`` or raise a clear error naming the blocked feature."""
    if np is None:
        raise DependencyError(
            f"{feature} requires numpy (declared in pyproject.toml but "
            "not importable here); install it, or stay on the "
            "pure-Python paths (--distance-backend dijkstra / scalar "
            "scoring)"
        )
    return np
