"""Observability: counters, histograms, stage timers and record sinks.

The metrics layer makes the serving-performance story measurable: each
:class:`~repro.core.database.Database` owns a
:class:`~repro.obs.metrics.MetricsRegistry`; every query records its
wall time, per-stage breakdown (INE expansion, signature verification,
pairwise Dijkstras, greedy/core-pair maintenance, simulated buffer
I/O) and cache/buffer counter deltas into it, and emits one JSON-able
record per query to any attached sink.
"""

from .metrics import Counter, Histogram, MetricsRegistry, StageClock
from .sinks import InMemorySink, JsonLinesSink, Sink

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "StageClock",
    "InMemorySink",
    "JsonLinesSink",
    "Sink",
]
