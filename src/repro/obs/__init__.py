"""Observability: counters, histograms, stage timers and record sinks.

The metrics layer makes the serving-performance story measurable: each
:class:`~repro.core.database.Database` owns a
:class:`~repro.obs.metrics.MetricsRegistry`; every query records its
wall time, per-stage breakdown (INE expansion, signature verification,
pairwise Dijkstras, greedy/core-pair maintenance, simulated buffer
I/O) and cache/buffer counter deltas into it, and emits one JSON-able
record per query to any attached sink.

The tracing layer (:mod:`repro.obs.tracing`) complements the flat
metrics with per-query span trees — concurrency-native via
:class:`~repro.obs.tracing.TraceCollector`; :mod:`repro.obs.explain`
renders them as EXPLAIN reports, :mod:`repro.obs.export` serialises
traces to Chrome trace-event JSON and registries to Prometheus text,
:mod:`repro.obs.slowlog` captures threshold-crossing queries with
their span trees, and :mod:`repro.obs.slo` evaluates declarative
service-level objectives against a registry snapshot.

The live plane builds on those primitives: :mod:`repro.obs.rollup`
keeps a sliding window of recent latency/error/cache-hit data and
feeds the same declarative SLO rules *continuously*
(:class:`~repro.obs.rollup.LiveSLOMonitor`);
:mod:`repro.obs.profiler` samples wall-clock stacks and attributes
them to the executing plan; :mod:`repro.obs.server` serves it all over
HTTP (``/metrics``, ``/healthz``, ``/vars``, ``/slowlog``,
``/profile``, ``/slo``) for scraping while a workload runs.
"""

from .explain import ExplainReport, render_span_tree
from .export import (
    chrome_trace,
    database_gauges,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from .export import escape_label_value
from .metrics import Counter, Histogram, MetricsRegistry, StageClock
from .profiler import (
    SamplingProfiler,
    executing_plan,
    parse_folded,
    render_profile,
)
from .rollup import LiveSLOMonitor, SlidingWindowRollup, WindowSnapshot
from .server import TelemetryServer
from .sinks import InMemorySink, JsonLinesSink, Sink
from .slo import SLOCheck, SLORule, SLOSpec, evaluate_slo
from .slowlog import (
    SlowQueryLog,
    SlowQueryThreshold,
    render_breach_record,
    render_record,
    stats_to_dict,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceCollector,
    TraceRecord,
    Tracer,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "StageClock",
    "InMemorySink",
    "JsonLinesSink",
    "Sink",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceCollector",
    "TraceRecord",
    "ExplainReport",
    "render_span_tree",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
    "write_prometheus",
    "database_gauges",
    "SlowQueryLog",
    "SlowQueryThreshold",
    "render_record",
    "render_breach_record",
    "stats_to_dict",
    "SLOSpec",
    "SLORule",
    "SLOCheck",
    "evaluate_slo",
    "SlidingWindowRollup",
    "WindowSnapshot",
    "LiveSLOMonitor",
    "SamplingProfiler",
    "executing_plan",
    "parse_folded",
    "render_profile",
    "TelemetryServer",
    "escape_label_value",
]
