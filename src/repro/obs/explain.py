"""EXPLAIN: render a query's span tree as a pruning-decision report.

:meth:`repro.core.database.Database.explain` runs one query under a
temporary tracer and wraps the resulting span tree in an
:class:`ExplainReport`.  The report renders the tree as an indented
text document in which every span is narrated in terms of the paper's
pruning machinery — how many edges the signature filter dropped
(§3.1/§3.3), how far the INE frontier travelled (§2.3), which COM
round triggered the §4.3 early termination — rather than as raw
attribute dicts.  ``repro explain`` on the CLI prints exactly this.

The report also exposes the structured side (``spans``,
``signature_stats``, ``terminated_early``) so tests can assert on
pruning behaviour without parsing the rendered text.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from .tracing import Span

__all__ = ["ExplainReport", "render_span_tree"]


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def _num(value: Any) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:.4g}"
    return str(value)


def _ratio(part: int, whole: int) -> str:
    if whole <= 0:
        return f"{part}/{whole}"
    return f"{part}/{whole} ({100.0 * part / whole:.0f}%)"


# ----------------------------------------------------------------------
# Per-span narration
# ----------------------------------------------------------------------
def _describe_query_sk(span: Span) -> str:
    a = span.attrs
    terms = "+".join(a.get("terms", ())) or "?"
    return (
        f"SK range query [{a.get('index', '?')}] terms={terms} "
        f"δmax={_num(a.get('delta_max', '?'))} → "
        f"{a.get('results', '?')} results in {_ms(span.duration)}"
    )


def _describe_query_knn(span: Span) -> str:
    a = span.attrs
    terms = "+".join(a.get("terms", ())) or "?"
    return (
        f"SK kNN query [{a.get('index', '?')}] terms={terms} "
        f"k={a.get('k', '?')} → {a.get('results', '?')} results "
        f"in {_ms(span.duration)}"
    )


def _describe_query_diversified(span: Span) -> str:
    a = span.attrs
    terms = "+".join(a.get("terms", ())) or "?"
    line = (
        f"diversified query/{a.get('method', '?')} [{a.get('index', '?')}] "
        f"terms={terms} k={a.get('k', '?')} λ={_num(a.get('lambda_', '?'))} "
        f"δmax={_num(a.get('delta_max', '?'))} → "
        f"{a.get('results', '?')}/{a.get('candidates', '?')} objects, "
        f"objective {_num(a.get('objective_value', '?'))}, "
        f"{_ms(span.duration)}"
    )
    backend = a.get("backend")
    if backend and backend != "dijkstra":
        line += f"  [distances via {backend}]"
    if a.get("terminated_early"):
        line += "  [expansion terminated early]"
    return line


def _describe_ine_round(span: Span) -> str:
    a = span.attrs
    frac = a.get("watermark_fraction")
    frac_s = f" ({_num(frac)}·δmax)" if frac is not None else ""
    return (
        f"INE round #{a.get('round', '?')}: settled "
        f"{a.get('nodes_settled', '?')} nodes, frontier "
        f"{a.get('frontier', '?')}, watermark "
        f"{_num(a.get('watermark', '?'))}{frac_s}, "
        f"{a.get('objects_emitted', 0)} objects emitted"
    )


def _describe_signature_filter(span: Span) -> str:
    a = span.attrs
    pruned = a.get("edges_pruned", 0)
    probed = a.get("edges_probed", 0)
    tested = a.get("candidates_tested", 0)
    false_pos = a.get("false_positives", 0)
    line = (
        f"signature filter [{a.get('partition', '?')}]: dropped "
        f"{_ratio(pruned, pruned + probed)} visited edges; "
        f"{tested} candidate objects verified"
    )
    if tested:
        line += f", {_ratio(false_pos, tested)} false positives"
    return line


def _describe_pairwise(span: Span) -> str:
    a = span.attrs
    return (
        f"pairwise Dijkstra from edge {a.get('source_edge', '?')}: "
        f"{a.get('map_nodes', '?')} nodes mapped in {_ms(span.duration)}"
    )


def _describe_ch_query(span: Span) -> str:
    a = span.attrs
    return (
        f"CH point query edge {a.get('source_edge', '?')} → "
        f"edge {a.get('target_edge', '?')} in {_ms(span.duration)}"
    )


def _describe_ch_many_to_many(span: Span) -> str:
    a = span.attrs
    return (
        f"CH many-to-many: {a.get('positions', '?')} positions → "
        f"{a.get('pairs', '?')} matrix pairs in {_ms(span.duration)}"
    )


def _describe_hub_query(span: Span) -> str:
    a = span.attrs
    return (
        f"hub-label point query edge {a.get('source_edge', '?')} → "
        f"edge {a.get('target_edge', '?')}: "
        f"{a.get('entries_scanned', '?')} label entries merged "
        f"in {_ms(span.duration)}"
    )


def _describe_hub_many_to_many(span: Span) -> str:
    a = span.attrs
    return (
        f"hub-label kernel: {a.get('positions', '?')} positions → "
        f"{a.get('pairs', '?')} matrix pairs, "
        f"{a.get('entries_scanned', '?')} label entries scanned, "
        f"{a.get('kernel_hits', '?')} kernel hits in {_ms(span.duration)}"
    )


def _describe_com_round(span: Span) -> str:
    a = span.attrs
    action = a.get("action", "?")
    base = (
        f"COM round (candidate #{a.get('candidate', '?')}): "
        f"γ={_num(a.get('gamma', '?'))} θ_T={_num(a.get('theta_t', '?'))}"
    )
    if action == "terminate":
        return (
            base
            + f" ub(unvisited)={_num(a.get('ub_unvisited', '?'))} < θ_T"
            + " → TERMINATE expansion (§4.3)"
        )
    if action == "unvisited_pair_possible":
        return (
            base
            + f" ub(unvisited)={_num(a.get('ub_unvisited', '?'))} ≥ θ_T"
            + " → keep expanding"
        )
    if action == "visited_pair_possible":
        extra = ""
        if a.get("pruned"):
            extra = f", pruned {a['pruned']} visited objects"
        return base + f" → a visited object may still pair{extra}"
    if action == "cp_not_full":
        return base + " → core pairs not full yet"
    if action == "no_pruning":
        return base + " → pruning disabled (ablation)"
    return base + f" → {action}"


def _describe_com_maintenance(span: Span) -> str:
    a = span.attrs
    line = (
        f"COM maintenance: {a.get('candidates', '?')} candidates, "
        f"{a.get('theta_evaluations', '?')} θ evaluations, "
        f"pruned {a.get('pruned_objects', 0)} objects, "
        f"ub wins triangle={a.get('ub_triangle_wins', 0)}"
        f"/landmark={a.get('ub_landmark_wins', 0)}"
    )
    line += (
        ", terminated early"
        if a.get("terminated_early")
        else ", ran to exhaustion"
    )
    return line


def _describe_greedy(span: Span) -> str:
    a = span.attrs
    return (
        f"greedy diversification: {a.get('candidates', '?')} candidates "
        f"→ top-{a.get('k', '?')} in {_ms(span.duration)}"
    )


def _describe_knn_round(span: Span) -> str:
    a = span.attrs
    return (
        f"kNN round #{a.get('attempt', '?')}: radius "
        f"{_num(a.get('radius', '?'))} → {a.get('matches', '?')} matches "
        f"({a.get('nodes_settled', '?')} nodes settled)"
    )


def _describe_generic(span: Span) -> str:
    attrs = ", ".join(f"{k}={_num(v)}" for k, v in span.attrs.items())
    line = f"{span.name} ({_ms(span.duration)})"
    if attrs:
        line += f": {attrs}"
    return line


_FORMATTERS = {
    "query.sk": _describe_query_sk,
    "query.knn": _describe_query_knn,
    "query.diversified": _describe_query_diversified,
    "ine.round": _describe_ine_round,
    "signature.filter": _describe_signature_filter,
    "pairwise.dijkstra": _describe_pairwise,
    "ch.query": _describe_ch_query,
    "ch.many_to_many": _describe_ch_many_to_many,
    "hub.query": _describe_hub_query,
    "hub.many_to_many": _describe_hub_many_to_many,
    "com.round": _describe_com_round,
    "com.maintenance": _describe_com_maintenance,
    "greedy.select": _describe_greedy,
    "knn.round": _describe_knn_round,
}

_EVENT_LABELS = {
    "signature.prune": "edges pruned by signature",
    "signature.partial_prune": "edges partially pruned (SIF-P segments)",
    "pairwise.cache_hit": "pairwise distances answered from cache",
    "com.core_pair": "core-pair insertions",
    "com.early_termination": "early termination",
    "ine.terminated": "expansion stop",
}

#: Collapse runs of same-named siblings longer than this into a summary
#: line — a COM trace can hold hundreds of per-arrival rounds, and the
#: interesting ones (first, termination) survive the collapse.
_MAX_SIBLINGS_PER_NAME = 6


def describe_span(span: Span) -> str:
    """One-line narration of a span, by name."""
    return _FORMATTERS.get(span.name, _describe_generic)(span)


def _event_lines(span: Span) -> List[str]:
    counts: Dict[str, int] = {}
    for name, _ts, _attrs in span.events:
        counts[name] = counts.get(name, 0) + 1
    lines = []
    for name, count in counts.items():
        label = _EVENT_LABELS.get(name, name)
        lines.append(f"· {count} × {label}")
    if span.dropped_events:
        lines.append(f"· ({span.dropped_events} events dropped at capacity)")
    return lines


def _render_into(span: Span, depth: int, out: List[str]) -> None:
    pad = "  " * depth
    out.append(pad + describe_span(span))
    for line in _event_lines(span):
        out.append(pad + "  " + line)

    # Group consecutive same-named children so huge fan-outs (one
    # com.round per arrival) stay readable: keep head and tail of each
    # run, summarise the middle.
    children = span.children
    i = 0
    while i < len(children):
        j = i
        while j < len(children) and children[j].name == children[i].name:
            j += 1
        run = children[i:j]
        if len(run) <= _MAX_SIBLINGS_PER_NAME:
            for child in run:
                _render_into(child, depth + 1, out)
        else:
            head = run[: _MAX_SIBLINGS_PER_NAME - 2]
            for child in head:
                _render_into(child, depth + 1, out)
            hidden = run[len(head):-1]
            total = sum(c.duration for c in hidden)
            out.append(
                "  " * (depth + 1)
                + f"… {len(hidden)} more {run[0].name} spans "
                f"({_ms(total)} total) …"
            )
            _render_into(run[-1], depth + 1, out)
        i = j
    if span.dropped_children:
        out.append(
            "  " * (depth + 1)
            + f"({span.dropped_children} child spans dropped at capacity)"
        )


def render_span_tree(root: Span) -> str:
    """The indented text report for one trace."""
    out: List[str] = []
    _render_into(root, 0, out)
    return "\n".join(out)


class ExplainReport:
    """A query's span tree plus its result, with a text renderer.

    ``plan`` optionally carries the executed
    :class:`~repro.engine.plan.QueryPlan`; when present the rendered
    report opens with the planner's description (algorithm choice,
    cost hints, rationale) ahead of the span tree.
    """

    def __init__(
        self,
        trace: Optional[Span],
        result: Any = None,
        plan: Any = None,
        slow_threshold: Any = None,
    ) -> None:
        if trace is None:
            raise ValueError(
                "explain produced no trace — was the query executed with "
                "tracing enabled?"
            )
        self.trace = trace
        self.result = result
        self.plan = plan
        #: Optional :class:`~repro.obs.slowlog.SlowQueryThreshold`; when
        #: set the rendered report closes with its SLOW/OK verdict.
        self.slow_threshold = slow_threshold

    @property
    def digest(self) -> Optional[str]:
        """The result's flight-recorder digest, when a result is held.

        The same :func:`repro.obs.recorder.result_digest` the flight
        recorder and shadow execution compute — so an EXPLAIN of one
        query is directly comparable against a captured flight record
        or a divergence note, without re-running anything.
        """
        if self.result is None or not hasattr(self.result, "items"):
            return None
        from .recorder import result_digest

        return result_digest(self.result)

    # -- structured access (tests) ------------------------------------
    def spans(self, name: str) -> List[Span]:
        """Every span named ``name`` in the trace, depth-first."""
        return self.trace.find_all(name)

    def span(self, name: str) -> Optional[Span]:
        return self.trace.find(name)

    def signature_stats(self) -> Dict[str, Any]:
        """Attrs of the per-query ``signature.filter`` summary span.

        Empty dict when the query recorded none (e.g. an index without
        signatures).
        """
        found = self.trace.find("signature.filter")
        return dict(found.attrs) if found is not None else {}

    @property
    def terminated_early(self) -> bool:
        """Whether the COM §4.3 bound terminated the expansion."""
        root_attr = self.trace.attrs.get("terminated_early")
        if root_attr is not None:
            return bool(root_attr)
        maint = self.trace.find("com.maintenance")
        return bool(maint is not None and maint.attrs.get("terminated_early"))

    @property
    def pruned_edges(self) -> int:
        return int(self.signature_stats().get("edges_pruned", 0))

    def top_level_breakdown(self) -> List[Dict[str, Any]]:
        """Wall-clock spent per direct child of the root span.

        Same-named children are merged; ``share`` is the fraction of
        the root span's duration (clamped to 1 for clock jitter).
        """
        total = self.trace.duration
        merged: Dict[str, Dict[str, Any]] = {}
        for child in self.trace.children:
            slot = merged.setdefault(
                child.name, {"name": child.name, "seconds": 0.0, "count": 0}
            )
            slot["seconds"] += child.duration
            slot["count"] += 1
        rows = sorted(merged.values(), key=lambda r: -r["seconds"])
        for row in rows:
            row["share"] = min(row["seconds"] / total, 1.0) if total > 0 else 0.0
        return rows

    def slow_verdict(self) -> Optional[str]:
        """The threshold's SLOW/OK one-liner, or ``None`` without one."""
        if self.slow_threshold is None:
            return None
        stats = getattr(self.result, "stats", None)
        wall = stats.wall_seconds if stats is not None else self.trace.duration
        nodes = stats.nodes_accessed if stats is not None else 0
        return self.slow_threshold.verdict(wall, nodes)

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        header = f"EXPLAIN  ({_ms(self.trace.duration)} total)"
        parts = [header]
        if self.plan is not None:
            parts.append(self.plan.describe())
        parts.append(render_span_tree(self.trace))
        breakdown = self.top_level_breakdown()
        if breakdown:
            lines = ["wall clock by top-level span:"]
            for row in breakdown:
                count = f" ×{row['count']}" if row["count"] > 1 else ""
                lines.append(
                    f"  {row['name']}{count}: {_ms(row['seconds'])} "
                    f"({row['share'] * 100:.0f}%)"
                )
            parts.append("\n".join(lines))
        digest = self.digest
        if digest is not None:
            parts.append(
                f"result digest: {digest} "
                f"({len(self.result.items)} results)"
            )
        verdict = self.slow_verdict()
        if verdict is not None:
            parts.append(f"slow-query verdict: {verdict}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
