"""Trace and metric exporters for external tooling.

Two wire formats, both dependency-free:

* **Chrome trace-event JSON** — the ``traceEvents`` array format that
  `Perfetto <https://ui.perfetto.dev>`_ and ``chrome://tracing`` load
  directly.  Each span becomes a complete ("ph": "X") event, each span
  event an instant ("ph": "i").  A serial :class:`Tracer` lays every
  per-query trace on its own track (``tid``); a
  :class:`~repro.obs.tracing.TraceCollector` (possibly fed by a
  concurrent ``execute_many``) merges into **one trace with one tid
  lane per worker thread** — queries executed by the same worker stack
  horizontally on that worker's lane, all on the collector's shared
  time origin.

* **Prometheus text exposition** — every registry counter becomes a
  ``counter`` metric, every histogram a ``summary`` with quantile
  lines plus ``_sum``/``_count``, and caller-supplied point-in-time
  values (distance-cache hit rates, buffer-pool evictions — see
  :func:`database_gauges`) become ``gauge`` metrics.  Names are
  sanitised to the Prometheus grammar.  This is a point-in-time scrape
  written to a file, not a live endpoint — enough to diff workload
  runs or feed a pushgateway.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .metrics import MetricsRegistry
from .tracing import Span, TraceCollector, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "database_gauges",
    "escape_label_value",
    "VALID_METRIC_NAME",
    "VALID_LABEL_NAME",
]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _us(seconds: float) -> float:
    """Trace-event timestamps are microseconds."""
    return round(seconds * 1e6, 3)


def _clean_args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe args: tuples/frozensets become sorted lists."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (set, frozenset)):
            out[key] = sorted(value)
        elif isinstance(value, tuple):
            out[key] = list(value)
        else:
            out[key] = value
    return out


def _span_events(span: Span, tid: int, out: List[Dict[str, Any]]) -> None:
    out.append({
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",
        "ts": _us(span.start),
        "dur": _us(span.duration),
        "pid": 0,
        "tid": tid,
        "args": _clean_args(span.attrs),
    })
    for name, ts, attrs in span.events:
        out.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": _us(ts),
            "pid": 0,
            "tid": tid,
            "args": _clean_args(attrs),
        })
    for child in span.children:
        _span_events(child, tid, out)


def _query_label(root: Span) -> str:
    label = root.name
    index_name = root.attrs.get("index")
    if index_name:
        label = f"{label} [{index_name}]"
    return label


def _collector_trace(collector: TraceCollector) -> Dict[str, Any]:
    """Merged document: one ``tid`` lane per worker thread.

    Every query a worker executed lands on that worker's lane; spans
    share the collector's time origin, so concurrent queries overlap
    on screen exactly as they overlapped in time.
    """
    events: List[Dict[str, Any]] = []
    named_lanes: Dict[int, str] = {}
    for record in collector.records:
        if record.lane not in named_lanes:
            named_lanes[record.lane] = record.worker
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": record.lane,
                "args": {"name": f"worker {record.lane}: {record.worker}"},
            })
        _span_events(record.span, record.lane, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace(
    source: Union[Tracer, TraceCollector, Iterable[Span]]
) -> Dict[str, Any]:
    """The trace-event document for a tracer, collector or root spans.

    A :class:`TraceCollector` merges every collected query into one
    document with a ``tid`` lane per worker; a plain :class:`Tracer`
    (or an explicit span iterable) keeps the historic one-lane-per-
    query layout.
    """
    if isinstance(source, TraceCollector):
        return _collector_trace(source)
    traces = list(source.traces if isinstance(source, Tracer) else source)
    events: List[Dict[str, Any]] = []
    for tid, root in enumerate(traces, start=1):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": f"query {tid}: {_query_label(root)}"},
        })
        _span_events(root, tid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path],
    source: Union[Tracer, TraceCollector, Iterable[Span]],
) -> Path:
    """Write the Perfetto-loadable trace JSON; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(chrome_trace(source), fh, indent=1)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
#: The exposition-format grammar for metric names (strict scrapers
#: reject anything else); label names additionally forbid the colon.
VALID_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
VALID_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _metric_name(name: str, prefix: str) -> str:
    sanitised = _NAME_RE.sub("_", f"{prefix}_{name}" if prefix else name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _label_name(name: str) -> str:
    sanitised = _NAME_RE.sub("_", name).replace(":", "_")
    if not sanitised or sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline.

    Plan labels like ``SIF/COM`` are legal label *values* as-is (any
    UTF-8 goes), but quotes/backslashes/newlines must be escaped or
    the scrape line is unparseable.
    """
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _split_labelled(name: str):
    """Split the ``family#value`` labelled-counter convention.

    Counters named e.g. ``query.plan#SIF/COM`` expose one Prometheus
    family ``query_plan`` with a label named after the family's last
    segment: ``repro_query_plan{plan="SIF/COM"}``.  Returns
    ``(family, label_name, label_value)``; label parts are ``None``
    for plain names.
    """
    family, sep, value = name.partition("#")
    if not sep:
        return name, None, None
    label = _label_name(family.rsplit(".", 1)[-1] or "label")
    return family, label, value


class _Family:
    """One exposition family: TYPE/HELP emitted once, then samples."""

    __slots__ = ("metric", "kind", "help", "samples")

    def __init__(self, metric: str, kind: str, help_text: str) -> None:
        self.metric = metric
        self.kind = kind
        self.help = help_text
        self.samples: List[str] = []

    def lines(self) -> List[str]:
        return [
            f"# HELP {self.metric} {self.help}",
            f"# TYPE {self.metric} {self.kind}",
            *self.samples,
        ]


def prometheus_text(
    registry: MetricsRegistry,
    prefix: str = "repro",
    gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Point-in-time exposition of every counter and histogram.

    ``gauges`` adds caller-supplied point-in-time values (cache hit
    rates, pool occupancy — see :func:`database_gauges`) as ``gauge``
    metrics.  Empty histograms are skipped entirely — a summary with
    NaN quantiles scrapes as an error in strict parsers.

    The output follows the exposition format strictly: names are
    sanitised to the metric-name grammar, ``# HELP``/``# TYPE`` are
    emitted exactly once per family (two raw names that sanitise to
    the same family share one header instead of emitting a duplicate,
    which strict parsers reject), label values are escaped, and
    counters following the ``family#value`` convention (e.g. the
    per-plan ``query.plan#SIF/COM``) become labelled samples of one
    family.  The registry is read under its lock, so scraping a
    database mid-workload never observes a half-sorted histogram.
    """
    families: Dict[str, _Family] = {}

    def family(raw: str, kind: str) -> _Family:
        metric = _metric_name(raw, prefix)
        existing = families.get(metric)
        if existing is None:
            # HELP text references the *sanitised* family name only —
            # raw dotted names never leak into the exposition.
            existing = families[metric] = _Family(
                metric, kind, f"repro {kind} {metric}"
            )
        return existing

    locked = getattr(registry, "locked", None)
    lock_cm = locked() if locked is not None else _null_cm()
    with lock_cm:
        for name, value in registry.counters().items():
            base, label, label_value = _split_labelled(name)
            fam = family(base, "counter")
            if label is None:
                fam.samples.append(f"{fam.metric} {value}")
            else:
                fam.samples.append(
                    f'{fam.metric}{{{label}="'
                    f'{escape_label_value(label_value)}"}} {value}'
                )
        for name, hist in sorted(registry.histograms().items()):
            if not hist.count:
                continue
            fam = family(name, "summary")
            for q in (0.5, 0.95, 0.99):
                fam.samples.append(
                    f'{fam.metric}{{quantile="{q}"}} '
                    f"{_fmt_value(hist.percentile(q * 100))}"
                )
            fam.samples.append(f"{fam.metric}_sum {_fmt_value(hist.total)}")
            fam.samples.append(f"{fam.metric}_count {hist.count}")
    for name, value in sorted((gauges or {}).items()):
        if not math.isfinite(value):
            # A NaN/Inf gauge (e.g. hit rate before any access) reads
            # as a measurement to downstream alerting; omit it, like
            # empty histograms.
            continue
        base, label, label_value = _split_labelled(name)
        fam = family(base, "gauge")
        if label is None:
            fam.samples.append(f"{fam.metric} {_fmt_value(value)}")
        else:
            fam.samples.append(
                f'{fam.metric}{{{label}="'
                f'{escape_label_value(label_value)}"}} {_fmt_value(value)}'
            )
    lines: List[str] = []
    for fam in families.values():
        lines.extend(fam.lines())
    return "\n".join(lines) + "\n"


class _null_cm:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def database_gauges(db) -> Dict[str, float]:
    """Point-in-time gauge values for a database's shared caches.

    Duck-typed against :class:`~repro.core.database.Database`: whatever
    of the shared distance cache and the disk buffer pool is present
    contributes its hit/miss/eviction state, plus derived hit rates
    (``NaN``-free: a cache that was never consulted reports rate 0).
    """
    gauges: Dict[str, float] = {}
    cache = getattr(db, "distance_cache", None)
    if cache is not None:
        stats = cache.stats()
        lookups = stats["hits"] + stats["misses"]
        gauges["distance_cache.entries"] = float(stats["entries"])
        gauges["distance_cache.max_entries"] = float(stats["max_entries"])
        gauges["distance_cache.hits"] = float(stats["hits"])
        gauges["distance_cache.misses"] = float(stats["misses"])
        gauges["distance_cache.evictions"] = float(stats["evictions"])
        gauges["distance_cache.hit_rate"] = (
            stats["hits"] / lookups if lookups else 0.0
        )
        gauges["distance_cache.epoch"] = float(stats.get("epoch", 0))
        gauges["distance_cache.stale_puts"] = float(
            stats.get("stale_puts", 0)
        )
        gauges["distance_cache.invalidations"] = float(
            stats.get("invalidations", 0)
        )
    backend = getattr(db, "distance_backend", None)
    if backend is not None:
        # One-hot backend label: repro_distance_backend_ch 1.0 says the
        # scrape came from a CH-backed run without needing label pairs.
        for name in ("dijkstra", "ch", "hub"):
            gauges[f"distance_backend.{name}"] = (
                1.0 if backend == name else 0.0
            )
    scoring = getattr(db, "scoring_mode", None)
    if scoring is not None:
        for name in ("array", "scalar"):
            gauges[f"scoring_mode.{name}"] = (
                1.0 if scoring == name else 0.0
            )
    frontier = getattr(db, "frontier_mode", None)
    if frontier is not None:
        for name in ("csr", "dict"):
            gauges[f"frontier_mode.{name}"] = (
                1.0 if frontier == name else 0.0
            )
    indexes = getattr(db, "indexes", None)
    if indexes:
        # Packed signature footprint across every index built on this
        # database (SIF/SIF-G expose a SignatureFile; SIF-P accounts
        # for its virtual-edge matrix itself).
        sig_bytes = 0.0
        signed_terms = 0.0
        seen_any = False
        for index in indexes:
            sig = getattr(index, "signatures", None)
            if sig is not None:
                sig_bytes += float(sig.size_bytes())
                signed_terms += float(sig.num_signed_terms)
                seen_any = True
                continue
            size_fn = getattr(index, "signature_size_bytes", None)
            if callable(size_fn):
                sig_bytes += float(size_fn())
                signed_terms += float(
                    getattr(index, "num_signed_terms", 0)
                )
                seen_any = True
        if seen_any:
            gauges["signature.bytes"] = sig_bytes
            gauges["signature.signed_terms"] = signed_terms
    oracle = getattr(db, "_ch_oracle", None)
    if oracle is not None:
        gauges["ch.preprocess_seconds"] = float(oracle.preprocess_seconds)
        gauges["ch.shortcuts_added"] = float(oracle.shortcuts_added)
        gauges["ch.upward_edges"] = float(oracle.upward_edges)
        gauges["ch.nodes"] = float(oracle.num_nodes)
    hub = getattr(db, "_hub_oracle", None)
    if hub is not None:
        gauges["hub_label.build_seconds"] = float(hub.build_seconds)
        gauges["hub_label.labels"] = float(hub.num_labels)
        gauges["hub_label.label_entries"] = float(hub.label_entries)
        gauges["hub_label.pruned_entries"] = float(
            getattr(hub, "pruned_entries", 0)
        )
        gauges["hub_label.avg_label_size"] = float(hub.avg_label_size)
        gauges["hub_label.max_label_size"] = float(hub.max_label_size)
    data_version = getattr(db, "data_version", None)
    if data_version is not None:
        gauges["data_version"] = float(data_version)
    journal = getattr(db, "update_journal", None)
    if journal is not None:
        gauges["updates.journal_length"] = float(len(journal))
        for kind, count in journal.counts().items():
            gauges[f"updates.{kind}"] = float(count)
    recorder = getattr(db, "flight_recorder", None)
    if recorder is not None:
        stats = recorder.summary()
        gauges["recorder.observed"] = float(stats["observed"])
        gauges["recorder.buffered"] = float(stats["buffered"])
        gauges["recorder.dropped"] = float(stats["dropped"])
        gauges["recorder.updates"] = float(stats["updates"])
        gauges["recorder.max_records"] = float(stats["max_records"])
    result_cache = getattr(db, "result_cache", None)
    if result_cache is not None:
        stats = result_cache.stats()
        lookups = stats["hits"] + stats["misses"]
        gauges["result_cache.entries"] = float(stats["entries"])
        gauges["result_cache.hits"] = float(stats["hits"])
        gauges["result_cache.misses"] = float(stats["misses"])
        gauges["result_cache.invalidated"] = float(stats["invalidated"])
        gauges["result_cache.evictions"] = float(stats["evictions"])
        gauges["result_cache.hit_rate"] = (
            stats["hits"] / lookups if lookups else 0.0
        )
    disk = getattr(db, "disk", None)
    buffer = getattr(disk, "buffer", None)
    if buffer is not None:
        lookups = buffer.hits + buffer.misses
        gauges["buffer_pool.capacity"] = float(buffer.capacity)
        gauges["buffer_pool.hits"] = float(buffer.hits)
        gauges["buffer_pool.misses"] = float(buffer.misses)
        gauges["buffer_pool.evictions"] = float(buffer.evictions)
        gauges["buffer_pool.hit_rate"] = (
            buffer.hits / lookups if lookups else 0.0
        )
    return gauges


def write_prometheus(
    path: Union[str, Path],
    registry: MetricsRegistry,
    prefix: str = "repro",
    gauges: Optional[Dict[str, float]] = None,
) -> Path:
    """Write the exposition text; returns the path."""
    path = Path(path)
    path.write_text(
        prometheus_text(registry, prefix=prefix, gauges=gauges),
        encoding="utf-8",
    )
    return path
