"""Trace and metric exporters for external tooling.

Two wire formats, both dependency-free:

* **Chrome trace-event JSON** — the ``traceEvents`` array format that
  `Perfetto <https://ui.perfetto.dev>`_ and ``chrome://tracing`` load
  directly.  Each span becomes a complete ("ph": "X") event, each span
  event an instant ("ph": "i"); every per-query trace is laid out on
  its own track (``tid``) so queries stack vertically in the UI.

* **Prometheus text exposition** — every registry counter becomes a
  ``counter`` metric, every histogram a ``summary`` with quantile
  lines plus ``_sum``/``_count``, names sanitised to the Prometheus
  grammar.  This is a point-in-time scrape written to a file, not a
  live endpoint — enough to diff workload runs or feed a pushgateway.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .metrics import MetricsRegistry
from .tracing import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _us(seconds: float) -> float:
    """Trace-event timestamps are microseconds."""
    return round(seconds * 1e6, 3)


def _clean_args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe args: tuples/frozensets become sorted lists."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (set, frozenset)):
            out[key] = sorted(value)
        elif isinstance(value, tuple):
            out[key] = list(value)
        else:
            out[key] = value
    return out


def _span_events(span: Span, tid: int, out: List[Dict[str, Any]]) -> None:
    out.append({
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",
        "ts": _us(span.start),
        "dur": _us(span.duration),
        "pid": 0,
        "tid": tid,
        "args": _clean_args(span.attrs),
    })
    for name, ts, attrs in span.events:
        out.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": _us(ts),
            "pid": 0,
            "tid": tid,
            "args": _clean_args(attrs),
        })
    for child in span.children:
        _span_events(child, tid, out)


def chrome_trace(source: Union[Tracer, Iterable[Span]]) -> Dict[str, Any]:
    """The trace-event document for a tracer (or explicit root spans)."""
    traces = list(source.traces if isinstance(source, Tracer) else source)
    events: List[Dict[str, Any]] = []
    for tid, root in enumerate(traces, start=1):
        label = root.name
        index_name = root.attrs.get("index")
        if index_name:
            label = f"{label} [{index_name}]"
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": f"query {tid}: {label}"},
        })
        _span_events(root, tid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], source: Union[Tracer, Iterable[Span]]
) -> Path:
    """Write the Perfetto-loadable trace JSON; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(chrome_trace(source), fh, indent=1)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    sanitised = _NAME_RE.sub("_", f"{prefix}_{name}" if prefix else name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Point-in-time exposition of every counter and histogram.

    Empty histograms are skipped entirely — a summary with NaN
    quantiles scrapes as an error in strict parsers.
    """
    lines: List[str] = []
    for name, value in registry.counters().items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, hist in sorted(registry.histograms().items()):
        if not hist.count:
            continue
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for q in (0.5, 0.95, 0.99):
            lines.append(
                f'{metric}{{quantile="{q}"}} '
                f"{_fmt_value(hist.percentile(q * 100))}"
            )
        lines.append(f"{metric}_sum {_fmt_value(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: Union[str, Path], registry: MetricsRegistry, prefix: str = "repro"
) -> Path:
    """Write the exposition text; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(registry, prefix=prefix), encoding="utf-8")
    return path
