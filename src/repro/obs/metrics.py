"""Metric primitives: counters, histograms and per-stage timers.

The paper reports one number per experiment (average response time);
a serving system needs to know *where* each query's time went and what
the tail looks like.  This module supplies the three primitives the
rest of the library records into:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Histogram` — a sample store with percentile queries
  (p50/p95/p99) over everything observed.
* :class:`StageClock` — a per-query accumulator of named stage
  durations (``expansion``, ``pairwise_dijkstra``, ...).

:class:`MetricsRegistry` names and owns the counters and histograms of
one :class:`~repro.core.database.Database` and fans per-query records
out to sinks (:mod:`repro.obs.sinks`).

Instrumentation overhead matters: the hot paths (buffer accesses,
distance-cache probes) keep plain integer attributes that are read as
*deltas* at query granularity; only a few dozen registry calls happen
per query, keeping the overhead well under the ~5 % budget.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

__all__ = ["Counter", "Histogram", "StageClock", "MetricsRegistry"]


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Stores observed samples and answers percentile queries.

    Samples are kept exactly up to ``max_samples``; beyond that the
    store is halved and the sampling stride doubled, so what remains is
    always a uniform systematic subsample of the whole stream (without
    the stride, post-halving observations would arrive at full rate
    and recent values would dominate the percentiles).  Memory stays
    bounded on long workloads while count/sum/min/max remain exact.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_max_samples", "_sorted", "_stride", "_pending")

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._sorted = True
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        self._samples.append(value)
        self._sorted = False
        if len(self._samples) > self._max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        """Mean of all observations; NaN when nothing was observed.

        NaN (not 0.0) so an empty histogram can never be mistaken for
        one that observed genuinely-zero durations in a report.
        """
        return self.total / self.count if self.count else math.nan

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100); NaN when no samples."""
        if not self._samples:
            return math.nan
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        if len(self._samples) == 1:
            return self._samples[0]
        rank = (p / 100.0) * (len(self._samples) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(self._samples) - 1)
        frac = rank - lo
        return self._samples[lo] * (1.0 - frac) + self._samples[hi] * frac

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"Histogram({self.name}, n={self.count})"


class StageClock:
    """Accumulates wall time per named stage for one query execution.

    Stages may nest or overlap (e.g. ``pairwise_dijkstra`` time is also
    inside ``maintenance`` for COM); consumers must not assume the
    stage times partition the query wall time.
    """

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: Dict[str, float] = {}

    def add(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    @contextmanager
    def stage(self, name: str):
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - t0)

    def timed_iter(self, iterable, stage: str):
        """Wrap an iterator, charging time spent producing items.

        Closing the wrapper closes the underlying iterator, preserving
        COM's early-termination contract (Algorithm 6 line 16).
        """
        iterator = iter(iterable)
        try:
            while True:
                t0 = time.perf_counter()
                try:
                    item = next(iterator)
                except StopIteration:
                    self.add(stage, time.perf_counter() - t0)
                    return
                self.add(stage, time.perf_counter() - t0)
                yield item
        finally:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()


class MetricsRegistry:
    """Named counters + histograms of one database, with record sinks.

    Thread-safe: recording (``inc``/``observe``/``emit``) and
    creation/lookup run under one internal re-entrant lock, so queries
    executing concurrently (``QueryEngine.execute_many``) never lose
    increments or interleave sink writes.  Only a few dozen registry
    calls happen per query, so the lock is off the hot path.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sinks: List = []
        self._lock = threading.RLock()

    # -- creation / lookup --------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    # -- recording ----------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.histogram(name).observe(value)

    def observe_stages(
        self, stages: Dict[str, float], prefix: str = "stage."
    ) -> None:
        """Record one query's per-stage seconds into stage histograms."""
        for stage, seconds in stages.items():
            self.observe(f"{prefix}{stage}.seconds", seconds)

    # -- sinks --------------------------------------------------------
    def add_sink(self, sink) -> None:
        """Attach a sink; it receives every record passed to :meth:`emit`."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, record: Dict) -> None:
        """Fan one record (a JSON-able dict) out to every sink."""
        with self._lock:
            for sink in self._sinks:
                sink.emit(record)

    def close(self) -> None:
        """Close every attached sink.

        Every sink's ``close`` is attempted even when an earlier one
        raises (the first error re-raises once all have been tried), so
        a failing sink can never leave another's file handle open.
        """
        first_error: Optional[BaseException] = None
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is None:
                continue
            try:
                close()
            except BaseException as exc:  # noqa: BLE001 — deferred re-raise
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting ----------------------------------------------------
    @contextmanager
    def locked(self):
        """Hold the registry lock across a multi-step read.

        A live scrape (:func:`repro.obs.export.prometheus_text`) reads
        histogram percentiles — which sort the sample store in place —
        while workers keep observing; taking the same lock the
        recording paths use makes the whole exposition one consistent,
        race-free snapshot.
        """
        with self._lock:
            yield self

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                name: c.value for name, c in sorted(self._counters.items())
            }

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def snapshot(self) -> Dict[str, Dict]:
        """One JSON-able dict of every counter and histogram summary.

        Histograms that never observed a sample are omitted: their
        percentiles are NaN (not JSON-serialisable) and an all-zero row
        in a workload report reads as a measurement rather than an
        absence.
        """
        with self._lock:
            return {
                "counters": self.counters(),
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                    if h.count
                },
            }

    def percentiles(
        self, name: str, ps: Sequence[float] = (50, 95, 99)
    ) -> Optional[Dict[float, float]]:
        h = self._histograms.get(name)
        if h is None or not h.count:
            return None
        return {p: h.percentile(p) for p in ps}
