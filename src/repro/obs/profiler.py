"""Always-on sampling wall-clock profiler (flamegraph-ready).

A :class:`SamplingProfiler` is a daemon thread that wakes ``hz`` times
per second, grabs ``sys._current_frames()`` and folds every sampled
thread's stack into a bounded ``stack → count`` table.  The folded
keys are the classic *flamegraph* format — frames joined by ``;``,
root first — so the output of :meth:`SamplingProfiler.folded_text`
feeds ``flamegraph.pl`` (or speedscope's "folded" importer) directly.

Two properties make it serviceable in a live system:

* **Plan-label attribution.**  The query engine publishes the plan
  label of the query each worker thread is currently executing
  (:func:`executing_plan`); sampled stacks are prefixed with it plus
  the distance backend, so the table splits by ``SIF/COM`` vs
  ``SIF/SEQ`` (and ``dijkstra`` vs ``ch``) without any per-sample
  bookkeeping in the hot path — the engine pays two dict writes per
  *query*, not per sample.

* **Bounded memory.**  At most ``max_stacks`` distinct folded stacks
  are kept; beyond that, new stacks collapse into a single
  ``<overflow>`` bucket (counted, never silently dropped), and stack
  depth is truncated at ``max_depth`` frames.

Overhead scales with ``hz`` times the number of live threads; at the
default 67 Hz it stays within the repo's ≤5 % observability budget
(``benchmarks/test_profiler_overhead.py`` measures it).  67 is prime
so the sampling beat cannot phase-lock with second-aligned workload
periodicity.

``repro profile FILE`` renders a persisted folded file as a top-N
report; the telemetry server serves the live table at ``/profile``.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SamplingProfiler",
    "executing_plan",
    "current_plan_labels",
    "parse_folded",
    "render_profile",
]

DEFAULT_HZ = 67.0

#: thread ident → plan label, published by the query engine for the
#: duration of each query.  A plain dict: per-entry set/delete are
#: GIL-atomic, and the sampler only ever reads a copy.
_PLAN_LABELS: Dict[int, str] = {}


class _PlanLabelScope:
    """Context manager publishing this thread's current plan label."""

    __slots__ = ("_ident",)

    def __init__(self, label: str) -> None:
        self._ident = threading.get_ident()
        _PLAN_LABELS[self._ident] = label

    def __enter__(self) -> "_PlanLabelScope":
        return self

    def __exit__(self, *exc) -> None:
        _PLAN_LABELS.pop(self._ident, None)


def executing_plan(label: str) -> _PlanLabelScope:
    """Attribute this thread's samples to ``label`` while inside."""
    return _PlanLabelScope(label)


def current_plan_labels() -> Dict[int, str]:
    """Snapshot of thread ident → executing plan label (for tests)."""
    return dict(_PLAN_LABELS)


def _frame_name(frame) -> str:
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    return f"{filename}:{code.co_name}"


class SamplingProfiler:
    """Sampling wall-clock profiler over ``sys._current_frames()``.

    ``hz`` sets the sampling rate; ``max_stacks``/``max_depth`` bound
    memory.  ``only_labelled=True`` restricts samples to threads that
    are currently executing a query plan (the load-driver default:
    dataset building and the driver's own sleep loop stay out of the
    flamegraph); the default samples every thread, attributing
    unlabelled ones to their thread name.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_stacks: int = 4096,
        max_depth: int = 64,
        only_labelled: bool = False,
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        if max_stacks < 1 or max_depth < 1:
            raise ValueError("max_stacks and max_depth must be >= 1")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self.only_labelled = only_labelled
        self._interval = 1.0 / self.hz
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Total samples taken (one per sampled thread per wake-up).
        self.samples = 0
        #: Wake-ups that found nothing to sample (all threads idle or
        #: unlabelled under ``only_labelled``).
        self.empty_wakeups = 0
        #: Distinct stacks that collapsed into the overflow bucket.
        self.overflowed = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self.started_at = time.monotonic()
        self.stopped_at = None
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling; idempotent, joins the sampler thread."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.stopped_at is None:
            self.stopped_at = time.monotonic()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self._interval):
            self._sample_once(own_ident)

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        labels = dict(_PLAN_LABELS)
        names: Dict[int, str] = {}
        if not self.only_labelled:
            for thread in threading.enumerate():
                ident = thread.ident
                if ident is not None:
                    names[ident] = thread.name
        sampled = 0
        folded: List[str] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            label = labels.get(ident)
            if label is None:
                if self.only_labelled:
                    continue
                label = names.get(ident, f"thread-{ident}")
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_name(frame))
                frame = frame.f_back
                depth += 1
            stack.append(label)
            stack.reverse()
            folded.append(";".join(stack))
            sampled += 1
        with self._lock:
            self.samples += sampled
            if not sampled:
                self.empty_wakeups += 1
            for key in folded:
                self._record(key)

    def _record(self, key: str) -> None:
        """Count one folded stack, bounded by ``max_stacks``.

        Callers hold ``self._lock`` (the sampler thread does); the test
        suite drives this directly to exercise the overflow bucket
        deterministically.
        """
        count = self._counts.get(key)
        if count is not None:
            self._counts[key] = count + 1
        elif len(self._counts) < self.max_stacks:
            self._counts[key] = 1
        else:
            self.overflowed += 1
            self._counts["<overflow>"] = (
                self._counts.get("<overflow>", 0) + 1
            )

    # -- reporting -----------------------------------------------------
    def folded(self) -> Dict[str, int]:
        """Snapshot of the folded-stack table (stack → sample count)."""
        with self._lock:
            return dict(self._counts)

    def folded_text(self) -> str:
        """The flamegraph.pl-ready text: ``stack count`` per line."""
        table = self.folded()
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                table.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.folded_text(), encoding="utf-8")

    def stats(self) -> Dict[str, float]:
        elapsed = None
        if self.started_at is not None:
            end = self.stopped_at if self.stopped_at is not None else time.monotonic()
            elapsed = end - self.started_at
        with self._lock:
            return {
                "hz": self.hz,
                "samples": self.samples,
                "distinct_stacks": len(self._counts),
                "empty_wakeups": self.empty_wakeups,
                "overflowed": self.overflowed,
                "elapsed_seconds": elapsed if elapsed is not None else 0.0,
            }


# ----------------------------------------------------------------------
# Folded-file rendering (``repro profile FILE``)
# ----------------------------------------------------------------------
def parse_folded(lines: Iterable[str]) -> Dict[str, int]:
    """Parse ``stack count`` lines back into a folded table.

    Blank and malformed lines are skipped (a truncated file from a
    killed run still renders).
    """
    table: Dict[str, int] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            continue
        table[stack] = table.get(stack, 0) + int(count)
    return table


def _aggregate(
    table: Dict[str, int], key
) -> List[Tuple[str, int]]:
    agg: Dict[str, int] = {}
    for stack, count in table.items():
        agg[key(stack)] = agg.get(key(stack), 0) + count
    return sorted(agg.items(), key=lambda kv: (-kv[1], kv[0]))


def render_profile(table: Dict[str, int], top: int = 15) -> str:
    """Human-readable top-N report over a folded table.

    Three sections: samples by plan label (the stack root), by leaf
    frame (where the time was actually spent), and the hottest whole
    stacks.  Percentages are of all samples in the table.
    """
    total = sum(table.values())
    if not total:
        return "no profile samples"
    lines = [f"{total} samples, {len(table)} distinct stacks"]

    def _section(title: str, rows: List[Tuple[str, int]]) -> None:
        lines.append(f"\n{title}")
        for name, count in rows[:top]:
            lines.append(f"  {100.0 * count / total:5.1f}%  {count:>8}  {name}")

    _section("by plan label:", _aggregate(table, lambda s: s.split(";", 1)[0]))
    _section("by leaf frame:", _aggregate(table, lambda s: s.rsplit(";", 1)[-1]))
    hottest = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
    lines.append("\nhottest stacks:")
    for stack, count in hottest[:top]:
        frames = stack.split(";")
        shown = ";".join(frames[-4:]) if len(frames) > 4 else stack
        prefix = "…;" if len(frames) > 4 else ""
        lines.append(
            f"  {100.0 * count / total:5.1f}%  {count:>8}  {prefix}{shown}"
        )
    return "\n".join(lines)
