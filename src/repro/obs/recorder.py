"""Flight recorder: capture live queries for deterministic replay.

Three distance backends and two scoring modes all promise
byte-identical answers — but that equivalence is only exercised by
tests, never by live traffic.  The flight recorder closes the gap with
the standard production audit loop:

1. **Capture** — :class:`FlightRecorder` is a thread-safe bounded ring
   the query engine feeds with one record per executed query: the full
   query parameters (enough to re-plan it from scratch), the plan
   label and cost hints (backend, scoring mode, data epoch), a stable
   :func:`result_digest`, the latency and a complete
   :class:`~repro.core.queries.QueryStats` snapshot.  Committed
   dynamic updates are journalled inline (``flight_update`` records),
   so the capture is a self-contained history of the data the queries
   saw.  An optional JSON-lines sink persists every record as it
   happens (``--record FILE`` on the workload CLIs).

2. **Replay** — :mod:`repro.workloads.replay` re-executes a captured
   journal deterministically: re-plans each query from its recorded
   parameters, re-applies the recorded updates between epoch groups,
   and diffs digests and invariant counters against the recording
   (``repro replay FILE``, with ``--backend``/``--scoring``/
   ``--workers`` overrides for cross-backend audits).

3. **Shadow execution** — the engine's ``--shadow-backend`` mode runs
   a sampled fraction of queries a second time on another backend
   inside the same execution context and compares digests in flight
   (see :meth:`repro.engine.executor.QueryEngine.enable_shadow`).

The digest is the contract between all three: an ordered sha256 over
``object_id:distance`` pairs (distances formatted to 9 significant
digits, robust to last-ulp float noise across backends) plus the
rounded diversified objective value.  Two executions agree iff they
returned the same objects, in the same order, at the same distances
and objective.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, List, Optional

from .sinks import JsonLinesSink
from .slowlog import stats_to_dict

__all__ = [
    "FlightRecorder",
    "result_digest",
    "query_to_dict",
    "update_to_dict",
]

#: Significant digits kept when a distance/objective enters a digest.
#: 9 digits keeps full float32-class precision while absorbing the
#: last-ulp noise different summation orders can produce.
DIGEST_PRECISION = 9


def result_digest(result, precision: int = DIGEST_PRECISION) -> str:
    """A stable 16-hex-char digest of one query result.

    Covers the ordered object ids, each item's network distance
    (rounded to ``precision`` significant digits) and — for
    diversified results — the rounded objective value.  Identical
    answers from different backends/scoring modes digest identically;
    any reordering, membership change, distance drift above rounding
    noise or objective change produces a different digest.
    """
    parts: List[str] = []
    for item in getattr(result, "items", ()):
        parts.append(
            f"{item.object.object_id}:{item.distance:.{precision}g}"
        )
    objective = getattr(result, "objective_value", None)
    if objective is not None:
        parts.append(f"obj:{objective:.{precision}g}")
    payload = "|".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def query_to_dict(query) -> Dict[str, Any]:
    """JSON-able query parameters, sufficient to rebuild the query.

    Duck-typed over the three query families (SK range / kNN /
    diversified): whatever of ``delta_max``, ``k``, ``lambda_``,
    ``horizon`` and ``initial_radius`` the query carries is captured.
    """
    position = query.position
    out: Dict[str, Any] = {
        "position": {
            "edge_id": position.edge_id,
            "offset": position.offset,
        },
        "terms": sorted(query.terms),
    }
    for attr, key in (
        ("delta_max", "delta_max"),
        ("k", "k"),
        ("lambda_", "lambda"),
        ("horizon", "horizon"),
        ("initial_radius", "initial_radius"),
    ):
        value = getattr(query, attr, None)
        if value is not None:
            out[key] = value
    return out


def update_to_dict(record) -> Dict[str, Any]:
    """One committed :class:`~repro.core.updates.UpdateRecord` as JSON."""
    out: Dict[str, Any] = {
        "type": "flight_update",
        "epoch": record.epoch,
        "kind": record.kind,
        "edge_id": record.edge_id,
    }
    if record.terms:
        out["terms"] = sorted(record.terms)
    if record.position is not None:
        out["position"] = {
            "edge_id": record.position.edge_id,
            "offset": record.position.offset,
        }
    if record.object_id is not None:
        out["object_id"] = record.object_id
    if record.weight is not None:
        out["weight"] = record.weight
    return out


class FlightRecorder:
    """Thread-safe bounded ring of per-query flight records.

    ``max_records`` bounds the in-memory ring (oldest evicted first;
    ``dropped`` counts evictions).  ``path`` streams every record —
    header, queries and updates alike — to a JSON-lines journal as it
    is captured, flushing per record so a killed run still replays.
    ``metrics`` optionally counts captures into a shared registry
    (``recorder.records`` / ``recorder.updates``).
    """

    def __init__(
        self,
        max_records: int = 4096,
        path=None,
        metrics=None,
    ) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self.metrics = metrics
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._sink = JsonLinesSink(path) if path is not None else None
        self.header: Optional[Dict[str, Any]] = None
        #: Lifetime counters: queries observed (== recorded), ring
        #: evictions, updates journalled.
        self.observed = 0
        self.dropped = 0
        self.updates = 0

    @property
    def path(self):
        return self._sink.path if self._sink is not None else None

    # -- capture -------------------------------------------------------
    def set_header(self, **fields) -> Dict[str, Any]:
        """Stamp the journal with its run context (emitted first).

        The replay CLI rebuilds the dataset from these fields (profile,
        scale, seed) and restores the recorded backend/scoring unless
        overridden, so a journal is self-describing.
        """
        header = {"type": "flight_header", "version": 1}
        header.update(fields)
        with self._lock:
            self.header = header
            if self._sink is not None:
                self._sink.emit(header)
        return header

    def record_query(
        self,
        plan,
        result,
        digest: str,
        sequence: Optional[int] = None,
        worker: str = "",
        shadow: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Capture one finished query (engine hot path; one lock hold).

        ``sequence`` is the caller's batch index when known — the
        replay driver aligns on it; ``seq`` is the recorder's own
        arrival counter.  ``shadow`` carries the shadow-execution
        outcome dict when one ran alongside this query.
        """
        stats = result.stats
        record: Dict[str, Any] = {
            "type": "flight",
            "kind": plan.kind,
            "label": plan.label,
            "algorithm": plan.algorithm,
            "index": plan.index.name,
            "query": query_to_dict(plan.query),
            "epoch": getattr(stats, "epoch", 0),
            "digest": digest,
            "results": len(result),
            "result_cache_hit": getattr(stats, "result_cache_hit", False),
            "wall_seconds": stats.wall_seconds,
            "worker": worker,
            "stats": stats_to_dict(stats),
        }
        if sequence is not None:
            record["sequence"] = sequence
        hints = getattr(plan, "hints", None)
        if hints is not None:
            record["hints"] = {
                "distance_backend": hints.distance_backend,
                "scoring": hints.scoring,
                "data_version": hints.data_version,
            }
        objective = getattr(result, "objective_value", None)
        if objective is not None:
            record["objective"] = round(objective, DIGEST_PRECISION)
        if shadow is not None:
            record["shadow"] = shadow
        with self._lock:
            self.observed += 1
            record["seq"] = self.observed
            if len(self._records) >= self.max_records:
                self._records.pop(0)
                self.dropped += 1
            self._records.append(record)
            if self._sink is not None:
                self._sink.emit(record)
        if self.metrics is not None:
            self.metrics.inc("recorder.records")
        return record

    def record_update(self, update) -> Dict[str, Any]:
        """Journal one committed update inline with the query stream."""
        record = update_to_dict(update)
        with self._lock:
            self.updates += 1
            if len(self._records) >= self.max_records:
                self._records.pop(0)
                self.dropped += 1
            self._records.append(record)
            if self._sink is not None:
                self._sink.emit(record)
        if self.metrics is not None:
            self.metrics.inc("recorder.updates")
        return record

    # -- inspection ----------------------------------------------------
    def records(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Ring contents, oldest first (snapshot copy)."""
        with self._lock:
            records = list(self._records)
        if limit is not None:
            records = records[-limit:]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "recorder_summary",
                "observed": self.observed,
                "buffered": len(self._records),
                "dropped": self.dropped,
                "updates": self.updates,
                "max_records": self.max_records,
                "path": str(self.path) if self.path is not None else None,
            }

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
