"""Sliding-window metric aggregation and live SLO evaluation.

Everything else in :mod:`repro.obs` is end-of-run: the registry's
histograms cover the whole process lifetime, the Prometheus export is
a point-in-time dump of those lifetime aggregates, and ``--slo`` gates
run once against the final snapshot.  A *serving* system is judged on
what the last few seconds looked like — QPS right now, p99 over the
last 10 seconds, the error rate since the last deploy tick — so this
module adds the time dimension:

* :class:`SlidingWindowRollup` — a thread-safe ring buffer of
  per-second buckets.  Each finished query is recorded once (latency,
  error flag, cache-hit flag, named latency *stream*); snapshots
  aggregate the buckets that fall inside the requested window into
  QPS, p50/p95/p99 per stream, error rate and cache-hit rate.  Memory
  is bounded: the ring has a fixed number of buckets and each bucket
  keeps a stride-subsampled latency reservoir, exactly like
  :class:`~repro.obs.metrics.Histogram`.

* :class:`WindowSnapshot` — the aggregate over one window, with
  :meth:`WindowSnapshot.to_slo_snapshot` shaping it like a registry
  snapshot so the *same* declarative :class:`~repro.obs.slo.SLOSpec`
  rules that gate end-of-run reports evaluate against a live window.
  Derived window values (``window.qps``, ``window.error_rate``,
  ``window.cache_hit_rate``) are exposed as counters so plain
  ``counter`` rules can bound them.

* :class:`LiveSLOMonitor` — evaluates an SLO spec against the current
  window whenever asked (the telemetry server does so per scrape, the
  load driver once per tick).  Windows that fail any rule are *breach
  events*: counted into the metrics registry (``slo.breaches``, plus a
  per-rule ``slo.breach#<rule>`` labelled counter) and noted into the
  slow-query log's record stream when one is installed, so a breach
  shows up in the same ``repro slowlog`` file as the queries that
  caused it.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional

from .slo import SLOCheck, SLOSpec

__all__ = [
    "SlidingWindowRollup",
    "WindowSnapshot",
    "LiveSLOMonitor",
]

#: Default latency stream queries record into (mirrors the registry's
#: lifetime histogram of the same name).
DEFAULT_STREAM = "query.wall_seconds"


def _percentile(ordered: List[float], p: float) -> float:
    """The ``p``-th percentile of an already-sorted sample list."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class _StreamBucket:
    """Per-(bucket, stream) latency aggregate with a bounded reservoir."""

    __slots__ = ("count", "total", "max", "_samples", "_stride", "_pending",
                 "_max_samples")

    def __init__(self, max_samples: int) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        self._samples.append(value)
        if len(self._samples) > self._max_samples:
            # Halve + double the stride: what remains stays a uniform
            # systematic subsample of the bucket's stream.
            self._samples = self._samples[::2]
            self._stride *= 2

    def samples(self) -> List[float]:
        return list(self._samples)


class _Bucket:
    """One ring slot: everything recorded during one bucket interval."""

    __slots__ = ("index", "count", "errors", "cache_hits", "streams")

    def __init__(self, index: int) -> None:
        self.reset(index)

    def reset(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.errors = 0
        self.cache_hits = 0
        self.streams: Dict[str, _StreamBucket] = {}


class WindowSnapshot:
    """Aggregates over one sliding window, JSON-able."""

    __slots__ = (
        "window_seconds", "covered_seconds", "count", "errors",
        "cache_hits", "qps", "error_rate", "cache_hit_rate", "streams",
        "at",
    )

    def __init__(
        self,
        window_seconds: float,
        covered_seconds: float,
        count: int,
        errors: int,
        cache_hits: int,
        streams: Dict[str, Dict[str, float]],
        at: float,
    ) -> None:
        self.window_seconds = window_seconds
        #: Seconds of history the window actually covers — shorter than
        #: ``window_seconds`` right after start-up, so QPS is never
        #: diluted by time the rollup did not exist.
        self.covered_seconds = covered_seconds
        self.count = count
        self.errors = errors
        self.cache_hits = cache_hits
        self.qps = count / covered_seconds if covered_seconds > 0 else 0.0
        self.error_rate = errors / count if count else 0.0
        self.cache_hit_rate = cache_hits / count if count else 0.0
        #: Per-stream latency summaries (count/sum/mean/max/p50/p95/p99).
        self.streams = streams
        self.at = at

    def stream(self, name: str = DEFAULT_STREAM) -> Dict[str, float]:
        return self.streams.get(name, {"count": 0})

    def percentile(self, p: float, stream: str = DEFAULT_STREAM) -> float:
        summary = self.streams.get(stream)
        if not summary or not summary.get("count"):
            return math.nan
        return summary[f"p{int(p)}"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "covered_seconds": self.covered_seconds,
            "count": self.count,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "qps": self.qps,
            "error_rate": self.error_rate,
            "cache_hit_rate": self.cache_hit_rate,
            "streams": {name: dict(s) for name, s in self.streams.items()},
        }

    def to_slo_snapshot(self) -> Dict[str, Any]:
        """Shape this window like a registry snapshot for SLO rules.

        Latency streams become ``histograms`` entries; raw window
        totals and the derived rates become ``counters``, so every
        :class:`~repro.obs.slo.SLORule` kind works unchanged —
        ``histogram_quantile`` on ``query.wall_seconds`` p99,
        ``counter`` on ``window.qps`` or ``window.error_rate``,
        ``counter_ratio`` of ``window.errors`` over ``window.count``.
        """
        counters: Dict[str, float] = {
            "window.count": self.count,
            "window.errors": self.errors,
            "window.cache_hits": self.cache_hits,
            "window.qps": self.qps,
            "window.error_rate": self.error_rate,
            "window.cache_hit_rate": self.cache_hit_rate,
        }
        histograms = {
            name: dict(summary)
            for name, summary in self.streams.items()
            if summary.get("count")
        }
        return {"counters": counters, "histograms": histograms}


class SlidingWindowRollup:
    """Thread-safe ring buffer of per-interval query aggregates.

    ``window_seconds`` is the default reporting window;
    ``bucket_seconds`` the ring granularity.  The ring holds
    ``ceil(window / bucket) + 1`` buckets so a full window is always
    available while the newest bucket is still filling.  Recording is
    O(1) under one lock; a snapshot walks at most the ring's buckets.
    """

    def __init__(
        self,
        window_seconds: float = 10.0,
        bucket_seconds: float = 1.0,
        max_samples_per_bucket: int = 512,
        clock=time.monotonic,
    ) -> None:
        if window_seconds <= 0 or bucket_seconds <= 0:
            raise ValueError("window and bucket seconds must be positive")
        if bucket_seconds > window_seconds:
            raise ValueError("bucket_seconds cannot exceed window_seconds")
        self.window_seconds = float(window_seconds)
        self.bucket_seconds = float(bucket_seconds)
        self._max_samples = max_samples_per_bucket
        self._clock = clock
        self._num_buckets = int(math.ceil(window_seconds / bucket_seconds)) + 1
        self._buckets = [_Bucket(-1) for _ in range(self._num_buckets)]
        self._lock = threading.Lock()
        self._start = clock()
        #: Lifetime totals (exact, never windowed).
        self.total_count = 0
        self.total_errors = 0

    # -- recording -----------------------------------------------------
    def _bucket_for(self, now: float) -> _Bucket:
        index = int((now - self._start) / self.bucket_seconds)
        bucket = self._buckets[index % self._num_buckets]
        if bucket.index != index:
            bucket.reset(index)
        return bucket

    def record(
        self,
        latency_seconds: float,
        stream: str = DEFAULT_STREAM,
        error: bool = False,
        cache_hit: bool = False,
        now: Optional[float] = None,
    ) -> None:
        """Record one finished query into the current bucket."""
        if now is None:
            now = self._clock()
        with self._lock:
            bucket = self._bucket_for(now)
            bucket.count += 1
            self.total_count += 1
            if error:
                bucket.errors += 1
                self.total_errors += 1
            if cache_hit:
                bucket.cache_hits += 1
            sb = bucket.streams.get(stream)
            if sb is None:
                sb = bucket.streams[stream] = _StreamBucket(self._max_samples)
            sb.observe(latency_seconds)

    # -- reporting -----------------------------------------------------
    def snapshot(
        self,
        window_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> WindowSnapshot:
        """Aggregate every bucket inside the window ending *now*."""
        if now is None:
            now = self._clock()
        window = (
            self.window_seconds if window_seconds is None
            else float(window_seconds)
        )
        newest = int((now - self._start) / self.bucket_seconds)
        span = min(
            int(math.ceil(window / self.bucket_seconds)),
            self._num_buckets,
        )
        oldest = newest - span + 1
        count = errors = cache_hits = 0
        raw_streams: Dict[str, List[_StreamBucket]] = {}
        with self._lock:
            for bucket in self._buckets:
                if oldest <= bucket.index <= newest and bucket.count:
                    count += bucket.count
                    errors += bucket.errors
                    cache_hits += bucket.cache_hits
                    for name, sb in bucket.streams.items():
                        raw_streams.setdefault(name, []).append(sb)
            streams: Dict[str, Dict[str, float]] = {}
            for name, parts in raw_streams.items():
                samples: List[float] = []
                total = 0.0
                n = 0
                worst = 0.0
                for sb in parts:
                    samples.extend(sb.samples())
                    total += sb.total
                    n += sb.count
                    worst = max(worst, sb.max)
                samples.sort()
                streams[name] = {
                    "count": n,
                    "sum": total,
                    "mean": total / n if n else math.nan,
                    "max": worst,
                    "p50": _percentile(samples, 50),
                    "p95": _percentile(samples, 95),
                    "p99": _percentile(samples, 99),
                }
        # QPS denominator: only history that exists.  The newest bucket
        # is partially filled, so cover from the oldest *requested*
        # bucket boundary (clamped to start-up) through now.
        window_floor = max(self._start, self._start + oldest * self.bucket_seconds)
        covered = max(now - window_floor, self.bucket_seconds * 1e-6)
        return WindowSnapshot(
            window_seconds=window,
            covered_seconds=min(covered, window),
            count=count,
            errors=errors,
            cache_hits=cache_hits,
            streams=streams,
            at=now,
        )


class LiveSLOMonitor:
    """Continuously judge a live window against a declarative SLO spec.

    ``evaluate()`` snapshots the rollup's current window, runs every
    rule of ``spec`` against it, and — when any rule fails — records
    one *breach event*: ``slo.breaches`` (plus per-rule
    ``slo.breach#<rule>`` labelled counters) in the metrics registry,
    and a ``{"type": "slo_breach", ...}`` note in the slow-query log's
    stream when one is attached.  Callers decide the cadence: the
    telemetry server evaluates per ``/slo`` scrape, the load driver
    once per reporting tick.
    """

    def __init__(
        self,
        spec: SLOSpec,
        rollup: SlidingWindowRollup,
        metrics=None,
        slowlog=None,
    ) -> None:
        self.spec = spec
        self.rollup = rollup
        self.metrics = metrics
        self.slowlog = slowlog
        self._lock = threading.Lock()
        #: Lifetime evaluation / breach-window counts.
        self.evaluations = 0
        self.breaches = 0
        self._last_checks: List[SLOCheck] = []

    def evaluate(self, now: Optional[float] = None) -> List[SLOCheck]:
        window = self.rollup.snapshot(now=now)
        checks = self.spec.evaluate(window.to_slo_snapshot())
        failed = [c for c in checks if not c.passed]
        with self._lock:
            self.evaluations += 1
            if failed:
                self.breaches += 1
            self._last_checks = checks
        if failed:
            if self.metrics is not None:
                self.metrics.inc("slo.breaches")
                for check in failed:
                    self.metrics.inc(f"slo.breach#{check.rule.name}")
                self.metrics.emit(self._breach_record(window, failed))
            if self.slowlog is not None:
                note = getattr(self.slowlog, "note", None)
                if note is not None:
                    note(self._breach_record(window, failed))
        return checks

    def _breach_record(self, window: WindowSnapshot, failed) -> Dict[str, Any]:
        return {
            "type": "slo_breach",
            "spec": self.spec.name,
            "window": window.to_dict(),
            "failed": [check.to_dict() for check in failed],
        }

    def last_checks(self) -> List[SLOCheck]:
        with self._lock:
            return list(self._last_checks)

    def verdict(self) -> Dict[str, Any]:
        """JSON-able state of the most recent evaluation."""
        with self._lock:
            checks = list(self._last_checks)
            return {
                "spec": self.spec.name,
                "evaluations": self.evaluations,
                "breach_windows": self.breaches,
                "passed": all(c.passed for c in checks),
                "checks": [c.to_dict() for c in checks],
            }
