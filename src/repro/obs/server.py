"""Live observability endpoint: a stdlib HTTP server over one database.

PR 1–6 observability is end-of-run and file-based: ``--prom`` writes a
final Prometheus exposition, ``--metrics`` a JSON-lines stream you
read afterwards.  A serving process (the ROADMAP's shard-per-process
item) needs *scrape targets*: something Prometheus polls every few
seconds while traffic flows.  :class:`TelemetryServer` is that target
— a ``ThreadingHTTPServer`` on a daemon thread, reading the same
registry/gauges/slowlog/rollup/profiler state the rest of
:mod:`repro.obs` maintains, with no third-party dependencies.

Routes
------
``/metrics``   Prometheus text exposition (lifetime counters +
               histogram summaries + point-in-time gauges); the
               registry is read under its lock, so scraping a busy
               database never sees a half-updated histogram.
``/healthz``   liveness JSON: status, ``data_version`` (epoch),
               uptime, lifetime query/error counts.
``/vars``      the full JSON snapshot: registry counters + histogram
               summaries, database gauges, the current sliding-window
               rollup and the live SLO verdict when installed.
``/slowlog``   recent slow-query records as JSON (``?limit=N``;
               span trees stripped unless ``?trace=1`` — they dwarf
               the rest of the record).
``/profile``   the sampling profiler's folded stacks (flamegraph.pl
               format) when a profiler is attached.
``/slo``       evaluates the live SLO monitor against the current
               window and returns its verdict.
``/recorder``  the flight recorder's ring and summary as JSON
               (``?limit=N``; stats snapshots stripped unless
               ``?stats=1``) when one is installed.

Every hit counts ``telemetry.scrapes`` plus a per-route
``telemetry.scrape#<route>`` labelled counter, so the scrape traffic
itself is visible in ``/metrics``.

Start it in-process with :meth:`Database.serve_telemetry(port)
<repro.core.database.Database.serve_telemetry>` or from any workload
CLI with ``--telemetry-port``; ``port=0`` binds an ephemeral port
(read it back from ``server.port``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .export import database_gauges, prometheus_text

__all__ = ["TelemetryServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON = "application/json; charset=utf-8"
_TEXT = "text/plain; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`TelemetryServer`."""

    server_version = "repro-telemetry/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # scrapes every few seconds must not spam stderr

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        try:
            status, content_type, body = telemetry.handle(
                parsed.path, parse_qs(parsed.query)
            )
        except Exception as exc:  # noqa: BLE001 — a scrape must answer
            status, content_type = 500, _TEXT
            body = f"telemetry handler error: {exc!r}\n".encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class TelemetryServer:
    """The live scrape endpoint of one database (see module docstring)."""

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro",
    ) -> None:
        self.db = db
        self.prefix = prefix
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic = time.monotonic()

    # -- lifecycle -----------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryServer":
        if self.running:
            return self
        self._started_monotonic = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-telemetry-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket; idempotent."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing -------------------------------------------------------
    def handle(
        self, path: str, query: Dict[str, Any]
    ) -> Tuple[int, str, bytes]:
        """Dispatch one request; returns (status, content type, body)."""
        route = path.rstrip("/") or "/"
        handler = {
            "/": self._index,
            "/metrics": self._metrics,
            "/healthz": self._healthz,
            "/vars": self._vars,
            "/slowlog": self._slowlog,
            "/profile": self._profile,
            "/slo": self._slo,
            "/recorder": self._recorder,
        }.get(route)
        if handler is None:
            return 404, _TEXT, f"no such route {path!r}\n".encode()
        self.db.metrics.inc("telemetry.scrapes")
        self.db.metrics.inc(f"telemetry.scrape#{route.lstrip('/') or 'index'}")
        return handler(query)

    def _json(self, payload: Any, status: int = 200) -> Tuple[int, str, bytes]:
        body = json.dumps(payload, indent=1, default=str).encode() + b"\n"
        return status, _JSON, body

    # -- routes --------------------------------------------------------
    def _index(self, query) -> Tuple[int, str, bytes]:
        routes = "\n".join((
            "/metrics", "/healthz", "/vars", "/slowlog", "/profile",
            "/slo", "/recorder",
        ))
        return 200, _TEXT, (routes + "\n").encode()

    def _metrics(self, query) -> Tuple[int, str, bytes]:
        text = prometheus_text(
            self.db.metrics,
            prefix=self.prefix,
            gauges=database_gauges(self.db),
        )
        return 200, PROMETHEUS_CONTENT_TYPE, text.encode()

    def _healthz(self, query) -> Tuple[int, str, bytes]:
        counters = self.db.metrics.counters()
        return self._json({
            "status": "ok",
            "data_version": getattr(self.db, "data_version", 0),
            "epoch": getattr(self.db, "data_version", 0),
            "uptime_seconds": round(self.db.uptime_seconds(), 3),
            "queries": counters.get("query.count", 0),
            "errors": counters.get("query.errors", 0),
            "updates": len(getattr(self.db, "update_journal", ()) or ()),
        })

    def _vars(self, query) -> Tuple[int, str, bytes]:
        payload = self.db.metrics.snapshot()
        payload["gauges"] = database_gauges(self.db)
        payload["data_version"] = getattr(self.db, "data_version", 0)
        payload["uptime_seconds"] = round(self.db.uptime_seconds(), 3)
        rollup = getattr(self.db, "rollup", None)
        payload["window"] = (
            rollup.snapshot().to_dict() if rollup is not None else None
        )
        monitor = getattr(self.db, "live_slo", None)
        payload["slo"] = monitor.verdict() if monitor is not None else None
        return self._json(payload)

    def _slowlog(self, query) -> Tuple[int, str, bytes]:
        log = getattr(self.db, "slow_query_log", None)
        if log is None:
            return self._json(
                {"installed": False, "records": []}, status=200
            )
        records = log.records()
        limit = query.get("limit")
        if limit:
            try:
                records = records[-int(limit[0]):]
            except ValueError:
                return 400, _TEXT, b"limit must be an integer\n"
        want_trace = query.get("trace", ["0"])[0] not in ("0", "", "false")
        if not want_trace:
            records = [
                {key: value for key, value in record.items() if key != "trace"}
                for record in records
            ]
        return self._json({
            "installed": True,
            "summary": log.summary(),
            "records": records,
        })

    def _profile(self, query) -> Tuple[int, str, bytes]:
        profiler = getattr(self.db, "profiler", None)
        if profiler is None:
            return 404, _TEXT, b"no sampling profiler attached\n"
        return 200, _TEXT, profiler.folded_text().encode()

    def _slo(self, query) -> Tuple[int, str, bytes]:
        monitor = getattr(self.db, "live_slo", None)
        if monitor is None:
            return 404, _TEXT, b"no live SLO monitor installed\n"
        monitor.evaluate()
        return self._json(monitor.verdict())

    def _recorder(self, query) -> Tuple[int, str, bytes]:
        recorder = getattr(self.db, "flight_recorder", None)
        if recorder is None:
            return self._json({"installed": False, "records": []})
        records = recorder.records()
        limit = query.get("limit")
        if limit:
            try:
                records = records[-int(limit[0]):]
            except ValueError:
                return 400, _TEXT, b"limit must be an integer\n"
        want_stats = query.get("stats", ["0"])[0] not in ("0", "", "false")
        if not want_stats:
            # Stats snapshots dwarf the rest of a flight record; strip
            # them by default, like /slowlog strips span trees.
            records = [
                {k: v for k, v in record.items() if k != "stats"}
                for record in records
            ]
        return self._json({
            "installed": True,
            "summary": recorder.summary(),
            "records": records,
        })
