"""Metric record sinks: where per-query records go.

A *sink* receives JSON-able dict records via ``emit(record)`` and may
implement ``close()``.  Two implementations cover the two consumers we
have today:

* :class:`InMemorySink` — keeps records in a list (tests, notebooks).
* :class:`JsonLinesSink` — appends one JSON object per line to a file
  (the CLI's ``--metrics <path>``), flushing on every record so a
  killed run still leaves usable data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Union

__all__ = ["Sink", "InMemorySink", "JsonLinesSink"]


class Sink(Protocol):
    """Anything that can consume metric records."""

    def emit(self, record: Dict) -> None:
        ...


class InMemorySink:
    """Collects every record in memory."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def of_type(self, record_type: str) -> List[Dict]:
        """Records whose ``"type"`` field equals ``record_type``."""
        return [r for r in self.records if r.get("type") == record_type]

    def clear(self) -> None:
        self.records.clear()

    def close(self) -> None:
        pass


def _json_default(value):
    """Last-resort serialisation for non-JSON values (inf, numpy, ...)."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class JsonLinesSink:
    """Appends records to a file, one JSON object per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[object] = self.path.open("a", encoding="utf-8")
        self.records_written = 0

    def emit(self, record: Dict) -> None:
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        json.dump(record, self._fh, default=_json_default)
        self._fh.write("\n")
        self._fh.flush()
        self.records_written += 1

    @property
    def closed(self) -> bool:
        return self._fh is None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
