"""Declarative service-level objectives over a metrics snapshot.

An :class:`SLOSpec` is a named list of :class:`SLORule`\\ s, each a
single comparison against one derived value of a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot:

* ``histogram_quantile`` — a quantile of a recorded histogram, e.g.
  *p95 of ``query.wall_seconds`` must stay ≤ 50 ms*;
* ``counter_ratio`` — a numerator counter over the sum of denominator
  counters, e.g. *distance-cache hit rate ≥ 0.6* or *early-termination
  share of diversified queries ≥ 0.3*;
* ``counter`` — a raw counter value.

Rules compare with ``<=`` or ``>=`` (SLOs bound both "keep latency
down" and "keep hit rates up").  A rule whose metric recorded no data
passes with ``no_data`` set — an empty run should not trip a gate —
and :func:`evaluate_slo` returns one :class:`SLOCheck` per rule so the
caller (``repro ... --slo spec.json`` or a test) can render or gate on
the whole set.

Specs round-trip through plain dicts (:meth:`SLOSpec.to_dict` /
:meth:`SLOSpec.from_dict`) so they live in JSON files next to the
workloads they judge.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["SLORule", "SLOSpec", "SLOCheck", "evaluate_slo"]

_KINDS = ("histogram_quantile", "counter_ratio", "counter")
_OPS = ("<=", ">=")
_QUANTILE_KEYS = {50: "p50", 95: "p95", 99: "p99"}


class SLORule:
    """One objective: ``value(kind, metric) op threshold``."""

    __slots__ = (
        "name", "kind", "metric", "op", "threshold",
        "quantile", "denominator",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        metric: str,
        op: str,
        threshold: float,
        quantile: Optional[int] = None,
        denominator: Sequence[str] = (),
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown SLO rule kind {kind!r}; expected one of {_KINDS}")
        if op not in _OPS:
            raise ValueError(f"unknown SLO op {op!r}; expected one of {_OPS}")
        if kind == "histogram_quantile":
            if quantile not in _QUANTILE_KEYS:
                raise ValueError(
                    "histogram_quantile rules need quantile in "
                    f"{sorted(_QUANTILE_KEYS)}, got {quantile!r}"
                )
        if kind == "counter_ratio" and not denominator:
            raise ValueError("counter_ratio rules need a denominator counter list")
        self.name = name
        self.kind = kind
        self.metric = metric
        self.op = op
        self.threshold = float(threshold)
        self.quantile = quantile
        self.denominator = tuple(denominator)

    # -- evaluation ----------------------------------------------------
    def value(self, snapshot: Dict[str, Any]) -> Optional[float]:
        """The rule's observed value in ``snapshot``; ``None`` = no data."""
        if self.kind == "histogram_quantile":
            hist = snapshot.get("histograms", {}).get(self.metric)
            if not hist or not hist.get("count"):
                return None
            return float(hist[_QUANTILE_KEYS[self.quantile]])
        counters = snapshot.get("counters", {})
        if self.kind == "counter":
            if self.metric not in counters:
                return None
            return float(counters[self.metric])
        # counter_ratio
        denom = sum(counters.get(name, 0) for name in self.denominator)
        if denom <= 0:
            return None
        return float(counters.get(self.metric, 0)) / denom

    def check(self, snapshot: Dict[str, Any]) -> "SLOCheck":
        value = self.value(snapshot)
        if value is None:
            return SLOCheck(self, None, passed=True, no_data=True)
        passed = value <= self.threshold if self.op == "<=" else value >= self.threshold
        return SLOCheck(self, value, passed=passed)

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
        }
        if self.quantile is not None:
            out["quantile"] = self.quantile
        if self.denominator:
            out["denominator"] = list(self.denominator)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLORule":
        return cls(
            name=data["name"],
            kind=data["kind"],
            metric=data["metric"],
            op=data["op"],
            threshold=data["threshold"],
            quantile=data.get("quantile"),
            denominator=data.get("denominator", ()),
        )

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"SLORule({self.name!r}: {self.kind} {self.metric} {self.op} {self.threshold})"


class SLOCheck:
    """The outcome of one rule against one snapshot."""

    __slots__ = ("rule", "value", "passed", "no_data")

    def __init__(
        self,
        rule: SLORule,
        value: Optional[float],
        passed: bool,
        no_data: bool = False,
    ) -> None:
        self.rule = rule
        self.value = value
        self.passed = passed
        self.no_data = no_data

    def render(self) -> str:
        if self.no_data:
            return f"SKIP  {self.rule.name}: no data for {self.rule.metric}"
        status = "PASS" if self.passed else "FAIL"
        return (
            f"{status}  {self.rule.name}: {self.rule.metric} = "
            f"{self.value:.6g} (want {self.rule.op} {self.rule.threshold:g})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.to_dict(),
            "value": self.value,
            "passed": self.passed,
            "no_data": self.no_data,
        }


class SLOSpec:
    """A named set of rules, evaluated together."""

    def __init__(self, name: str, rules: Sequence[SLORule]) -> None:
        if not rules:
            raise ValueError("an SLO spec needs at least one rule")
        self.name = name
        self.rules = list(rules)

    def evaluate(self, snapshot: Dict[str, Any]) -> List[SLOCheck]:
        return [rule.check(snapshot) for rule in self.rules]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-slo-spec/v1",
            "name": self.name,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLOSpec":
        return cls(
            name=data.get("name", "slo"),
            rules=[SLORule.from_dict(r) for r in data["rules"]],
        )


def evaluate_slo(
    spec: SLOSpec, snapshot: Dict[str, Any]
) -> List[SLOCheck]:
    """Evaluate every rule; convenience wrapper over ``spec.evaluate``."""
    return spec.evaluate(snapshot)
