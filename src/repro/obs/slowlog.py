"""Slow-query log: capture outlier queries with their full context.

Workload reports show the p95/p99 *numbers*; when the tail moves, an
operator needs the *queries* that produced it.  This module keeps a
thread-safe, bounded log of every query that crossed a configurable
threshold — wall-clock latency, network nodes visited, or both — and
captures, per offender:

* the executed plan's label (``"SIF/COM"``-style) and kind,
* a full :class:`~repro.core.queries.QueryStats` snapshot (stage
  breakdown, I/O, cache deltas),
* the complete per-query span tree when tracing was on (serialised via
  :meth:`~repro.obs.tracing.Span.to_dict`), and
* the worker thread that ran it.

The log composes with concurrent execution: ``offer`` runs under one
internal lock and per-query tracers are context-owned, so a 4-worker
``execute_many`` never interleaves records.  An optional JSON-lines
sink persists each record as it is captured (flushing per record, so a
killed run still leaves usable data); ``repro slowlog FILE`` renders
the file back through the EXPLAIN narrator.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from .sinks import JsonLinesSink
from .tracing import Span

__all__ = [
    "SlowQueryThreshold",
    "SlowQueryLog",
    "stats_to_dict",
    "render_record",
    "render_breach_record",
    "render_divergence_record",
]


def stats_to_dict(stats) -> Dict[str, Any]:
    """A JSON-able snapshot of one query's :class:`QueryStats`."""
    out: Dict[str, Any] = {
        "wall_seconds": stats.wall_seconds,
        "nodes_accessed": stats.nodes_accessed,
        "edges_accessed": stats.edges_accessed,
        "objects_loaded": stats.objects_loaded,
        "false_hit_objects": stats.false_hit_objects,
        "candidates": stats.candidates,
        "pairwise_dijkstras": stats.pairwise_dijkstras,
        "distance_backend": stats.distance_backend,
        "backend_queries": stats.backend_queries,
        "backend_settled_nodes": stats.backend_settled_nodes,
        "backend_bucket_hits": stats.backend_bucket_hits,
        "expansion_terminated_early": stats.expansion_terminated_early,
        "epoch": getattr(stats, "epoch", 0),
        "result_cache_hit": getattr(stats, "result_cache_hit", False),
        "stage_seconds": dict(stats.stage_seconds),
        "distance_cache": {
            "hits": stats.distance_cache_hits,
            "misses": stats.distance_cache_misses,
            "evictions": stats.distance_cache_evictions,
        },
        "buffer_evictions": stats.buffer_evictions,
    }
    if stats.io is not None:
        out["io"] = {
            "logical_reads": stats.io.logical_reads,
            "physical_reads": stats.io.physical_reads,
            "buffer_hits": stats.io.buffer_hits,
        }
    return out


class SlowQueryThreshold:
    """When is a query *slow*?  Latency and/or visited-node bounds.

    A query is captured when **any** configured bound is met or
    exceeded.  ``latency_seconds=0`` deliberately matches every query
    (useful to smoke-test the capture pipeline in CI).
    """

    __slots__ = ("latency_seconds", "visited_nodes")

    def __init__(
        self,
        latency_seconds: Optional[float] = None,
        visited_nodes: Optional[int] = None,
    ) -> None:
        if latency_seconds is None and visited_nodes is None:
            raise ValueError(
                "a slow-query threshold needs latency_seconds and/or "
                "visited_nodes"
            )
        if latency_seconds is not None and latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        if visited_nodes is not None and visited_nodes < 0:
            raise ValueError("visited_nodes must be non-negative")
        self.latency_seconds = latency_seconds
        self.visited_nodes = visited_nodes

    def exceeded(
        self, wall_seconds: float, nodes_accessed: int = 0
    ) -> List[str]:
        """Which bounds this query crossed (empty list = not slow)."""
        reasons = []
        if (
            self.latency_seconds is not None
            and wall_seconds >= self.latency_seconds
        ):
            reasons.append("latency")
        if (
            self.visited_nodes is not None
            and nodes_accessed >= self.visited_nodes
        ):
            reasons.append("visited_nodes")
        return reasons

    def verdict(self, wall_seconds: float, nodes_accessed: int = 0) -> str:
        """One-line SLOW/OK judgement (used by ``repro explain``)."""
        reasons = self.exceeded(wall_seconds, nodes_accessed)
        parts = []
        if self.latency_seconds is not None:
            op = "≥" if "latency" in reasons else "<"
            parts.append(
                f"{wall_seconds * 1e3:.3f} ms {op} "
                f"{self.latency_seconds * 1e3:g} ms threshold"
            )
        if self.visited_nodes is not None:
            op = "≥" if "visited_nodes" in reasons else "<"
            parts.append(
                f"{nodes_accessed} nodes {op} "
                f"{self.visited_nodes} node threshold"
            )
        label = "SLOW" if reasons else "OK"
        return f"{label} — " + ", ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "latency_seconds": self.latency_seconds,
            "visited_nodes": self.visited_nodes,
        }

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"SlowQueryThreshold(latency_seconds={self.latency_seconds}, "
            f"visited_nodes={self.visited_nodes})"
        )


class SlowQueryLog:
    """Thread-safe bounded log of threshold-crossing queries.

    ``max_records`` bounds memory: the most recent offenders are kept,
    the oldest dropped (``dropped`` counts them).  ``path`` optionally
    streams every captured record to a JSON-lines file as it happens.
    """

    def __init__(
        self,
        threshold: SlowQueryThreshold,
        max_records: int = 256,
        path=None,
    ) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.threshold = threshold
        self.max_records = max_records
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._sink = JsonLinesSink(path) if path is not None else None
        #: Queries offered / captured / dropped-at-capacity, lifetime.
        self.observed = 0
        self.captured = 0
        self.dropped = 0

    @property
    def path(self):
        return self._sink.path if self._sink is not None else None

    def offer(
        self,
        label: str,
        kind: str,
        stats,
        algorithm: str = "",
        results: int = 0,
        trace: Optional[Span] = None,
        worker: str = "",
        digest: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """Judge one finished query; capture and return it when slow.

        ``digest`` optionally attaches the query's result digest (see
        :func:`repro.obs.recorder.result_digest`) — present whenever
        the flight recorder or shadow execution computed one, so two
        divergent captures are diffable without re-running anything.

        Returns the captured record dict, or ``None`` for fast queries.
        """
        reasons = self.threshold.exceeded(
            stats.wall_seconds, stats.nodes_accessed
        )
        with self._lock:
            self.observed += 1
            if not reasons:
                return None
            self.captured += 1
            record: Dict[str, Any] = {
                "type": "slow_query",
                "seq": self.captured,
                "label": label,
                "kind": kind,
                "algorithm": algorithm,
                "distance_backend": stats.distance_backend,
                "worker": worker,
                "wall_seconds": stats.wall_seconds,
                "nodes_accessed": stats.nodes_accessed,
                "results": results,
                "exceeded": reasons,
                "threshold": self.threshold.to_dict(),
                "stats": stats_to_dict(stats),
                "trace": trace.to_dict() if trace is not None else None,
            }
            if digest is not None:
                record["digest"] = digest
            if len(self._records) >= self.max_records:
                self._records.pop(0)
                self.dropped += 1
            self._records.append(record)
            if self._sink is not None:
                self._sink.emit(record)
            return record

    def note(self, record: Dict[str, Any]) -> None:
        """Append a non-query annotation to the log's record stream.

        Used by the live SLO monitor to interleave ``slo_breach``
        events with the slow queries of the same window, so one
        ``repro slowlog FILE`` render tells the whole story.  Notes
        share the record bound but do not count as captured queries.
        """
        with self._lock:
            if len(self._records) >= self.max_records:
                self._records.pop(0)
                self.dropped += 1
            self._records.append(record)
            if self._sink is not None:
                self._sink.emit(record)

    def records(self) -> List[Dict[str, Any]]:
        """Captured records, oldest first (snapshot copy)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def summary(self) -> Dict[str, Any]:
        """One JSON-able roll-up (emitted with workload summaries)."""
        with self._lock:
            return {
                "type": "slowlog_summary",
                "observed": self.observed,
                "captured": self.captured,
                "dropped": self.dropped,
                "threshold": self.threshold.to_dict(),
            }

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()


def render_breach_record(record: Dict[str, Any]) -> str:
    """Narrate one ``slo_breach`` note (from the live SLO monitor)."""
    window = record.get("window", {}) or {}
    header = (
        f"SLO BREACH  [{record.get('spec', '?')}]  "
        f"window {window.get('window_seconds', '?')}s: "
        f"{window.get('count', '?')} queries, "
        f"qps {window.get('qps', 0.0):.1f}, "
        f"error rate {100.0 * window.get('error_rate', 0.0):.1f}%"
    )
    lines = [header]
    for check in record.get("failed", ()):
        rule = check.get("rule", {})
        value = check.get("value")
        shown = f"{value:.6g}" if isinstance(value, (int, float)) else "?"
        lines.append(
            f"  FAIL {rule.get('name', '?')}: {rule.get('metric', '?')} = "
            f"{shown} (want {rule.get('op', '?')} "
            f"{rule.get('threshold', '?')})"
        )
    return "\n".join(lines)


def render_divergence_record(record: Dict[str, Any]) -> str:
    """Narrate one ``shadow_divergence`` note (from shadow execution).

    Both digests are shown so the two answers are diffable straight
    from the log — no re-execution needed to see *that* they differ
    and by how many results.
    """
    header = (
        f"SHADOW DIVERGENCE  [{record.get('label', '?')}]  "
        f"{record.get('primary_backend', '?')} vs "
        f"{record.get('shadow_backend', '?')} "
        f"(worker {record.get('worker') or '?'})"
    )
    lines = [
        header,
        f"  primary digest: {record.get('primary_digest', '?')} "
        f"({record.get('primary_results', '?')} results)",
        f"  shadow digest:  {record.get('shadow_digest', '?')} "
        f"({record.get('shadow_results', '?')} results)",
    ]
    return "\n".join(lines)


def render_record(record: Dict[str, Any]) -> str:
    """Narrate one slow-query record (the ``repro slowlog`` renderer).

    The header states what crossed which bound (plus the data epoch
    and a result-cache marker when present); the body reuses the
    EXPLAIN narrator over the persisted span tree when one was
    captured, and falls back to the stage breakdown otherwise.  A
    record whose span tree is absent or malformed (tracing disabled,
    truncated file, older schema) renders from its stats instead of
    failing, so one bad line never kills a whole ``repro slowlog``
    run.  ``slo_breach`` notes render through
    :func:`render_breach_record`.
    """
    from .explain import render_span_tree  # deferred: explain imports us

    if record.get("type") == "slo_breach":
        return render_breach_record(record)
    if record.get("type") == "shadow_divergence":
        return render_divergence_record(record)
    stats = record.get("stats") or {}
    wall_ms = record.get("wall_seconds", 0.0) * 1e3
    header = (
        f"SLOW QUERY #{record.get('seq', '?')}  "
        f"[{record.get('label', '?')}]  {wall_ms:.3f} ms, "
        f"{record.get('nodes_accessed', '?')} nodes visited "
        f"(exceeded: {', '.join(record.get('exceeded', ())) or '?'}; "
        f"worker {record.get('worker') or '?'})"
    )
    epoch = stats.get("epoch")
    if epoch:
        header += f"  [epoch {epoch}]"
    if stats.get("result_cache_hit"):
        header += "  [result-cache HIT]"
    if record.get("digest"):
        header += f"  [digest {record['digest']}]"
    lines = [header]
    rendered_trace = None
    trace = record.get("trace")
    if trace:
        try:
            if not isinstance(trace, dict) or "name" not in trace:
                raise ValueError("not a serialised span tree")
            rendered_trace = render_span_tree(Span.from_dict(trace))
        except Exception:  # noqa: BLE001 — malformed tree, fall back
            lines.append("  (span tree malformed — rendering stats)")
    if rendered_trace is not None:
        lines.append(rendered_trace)
    else:
        stages = stats.get("stage_seconds", {})
        if stages:
            breakdown = ", ".join(
                f"{stage} {seconds * 1e3:.3f} ms"
                for stage, seconds in sorted(
                    stages.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"  stages: {breakdown}")
        if not trace:
            lines.append("  (no span tree captured — run with tracing on)")
    return "\n".join(lines)
