"""Per-query span tracing: a hierarchical view inside one query.

The metrics layer (:mod:`repro.obs.metrics`) answers *how much* — flat
counters and stage histograms over a whole workload.  The paper's
performance arguments, however, are about decisions *inside* a single
query: which edges the signature test pruned (§3.1/§3.3), how far the
INE frontier travelled before the λ-driven bound of §4.3 terminated the
expansion, which pairwise distances were answered from cache.  This
module answers *why* at that granularity.

A :class:`Tracer` collects one span tree per query:

* :meth:`Tracer.span` opens a span — a named, nestable interval with
  start time, duration and free-form attributes.  Spans opened while
  another span is active become its children; spans opened at the top
  level start a new per-query trace.
* :meth:`Tracer.add_span` records an already-measured interval as a
  *completed* child of the current span.  Hot loops that are
  generators (the INE expansion, COM's incremental consumption) use
  this form so no span stays open across a ``yield``.
* :meth:`Tracer.event` annotates the current span with a point-in-time
  event ("this edge was pruned", "this pair hit the cache").

All capacities are bounded (``max_traces``, ``max_children``,
``max_events``) with drop counters, so tracing a long workload cannot
grow memory without bound.

The disabled path is :data:`NULL_TRACER` — a singleton whose ``span``
returns one shared no-op context manager and whose ``event`` is a
``pass``.  Every instrumented hot path guards on ``tracer.enabled``
before building attribute dicts, so a database without tracing pays one
attribute read per check and allocates nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "TraceRecord",
    "TraceCollector",
    "NullTracer",
    "NULL_TRACER",
]

#: One point-in-time annotation: (name, seconds-since-tracer-origin, attrs).
SpanEvent = Tuple[str, float, Dict[str, Any]]


class Span:
    """One named interval in a query's execution.

    A span is also its own context manager: entering starts the clock
    and pushes it on the owning tracer's stack, exiting records the
    duration and pops it.  ``set`` updates attributes while the span is
    open (or after — EXPLAIN summaries are attached post-hoc), and
    ``event`` appends point annotations subject to the tracer's
    ``max_events`` bound.
    """

    __slots__ = (
        "name", "attrs", "start", "duration", "children", "events",
        "dropped_children", "dropped_events", "_tracer",
    )

    def __init__(self, tracer: Optional["Tracer"], name: str,
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        #: Seconds since the tracer's origin; filled on __enter__ (or by
        #: Tracer.add_span for completed spans).
        self.start = 0.0
        self.duration = 0.0
        self.children: List["Span"] = []
        self.events: List[SpanEvent] = []
        self.dropped_children = 0
        self.dropped_events = 0
        self._tracer = tracer

    # -- recording ----------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        tracer = self._tracer
        limit = tracer.max_events if tracer is not None else 1024
        if len(self.events) >= limit:
            self.dropped_events += 1
            return
        now = tracer._now() if tracer is not None else 0.0
        self.events.append((name, now, attrs))

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, *exc) -> None:
        self.duration = self._tracer._now() - self.start
        self._tracer._pop(self)

    # -- introspection (tests, EXPLAIN) -------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) named ``name``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [s for s in self.walk() if s.name == name]

    def event_count(self, name: str) -> int:
        return sum(1 for ev_name, _t, _a in self.events if ev_name == name)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form of the subtree (debugging, artifacts)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }
        if self.events:
            out["events"] = [
                {"name": n, "ts": t, "attrs": a} for n, t, a in self.events
            ]
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        if self.dropped_children:
            out["dropped_children"] = self.dropped_children
        if self.dropped_events:
            out["dropped_events"] = self.dropped_events
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        Used by the slow-query log renderer (``repro slowlog``) to turn
        persisted JSON records back into trees that
        :func:`repro.obs.explain.render_span_tree` can narrate.
        """
        span = cls(None, str(data.get("name", "?")),
                   dict(data.get("attrs", {})))
        span.start = float(data.get("start", 0.0))
        span.duration = float(data.get("duration", 0.0))
        span.events = [
            (ev.get("name", "?"), float(ev.get("ts", 0.0)),
             dict(ev.get("attrs", {})))
            for ev in data.get("events", ())
        ]
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        span.dropped_children = int(data.get("dropped_children", 0))
        span.dropped_events = int(data.get("dropped_events", 0))
        return span

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"Span({self.name}, dur={self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects per-query span trees.

    One tracer is owned by one :class:`~repro.core.database.Database`;
    every query entry point opens a root span, so ``traces`` holds one
    tree per traced query (bounded by ``max_traces``; the most recent
    trees are kept by dropping the oldest, so EXPLAIN always sees the
    query it just ran).
    """

    enabled = True

    def __init__(
        self,
        max_traces: int = 64,
        max_children: int = 512,
        max_events: int = 1024,
        origin: Optional[float] = None,
    ) -> None:
        self.max_traces = max_traces
        self.max_children = max_children
        self.max_events = max_events
        self.traces: List[Span] = []
        self.dropped_traces = 0
        self._stack: List[Span] = []
        #: ``origin`` lets many tracers share one timeline — the
        #: :class:`TraceCollector` hands its own origin to every
        #: per-query tracer so concurrently-executed queries line up on
        #: a single merged Chrome-trace time axis.
        self._origin = time.perf_counter() if origin is None else origin

    # -- time ---------------------------------------------------------
    def _now(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return time.perf_counter() - self._origin

    # -- span lifecycle -----------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span to be used as a context manager."""
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        span.start = self._now()
        self._attach(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exceptions unwinding several spans at once: pop up
        # to and including the given span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def _attach(self, span: Span) -> None:
        if self._stack:
            parent = self._stack[-1]
            if len(parent.children) >= self.max_children:
                parent.dropped_children += 1
            else:
                parent.children.append(span)
        else:
            if len(self.traces) >= self.max_traces:
                self.traces.pop(0)
                self.dropped_traces += 1
            self.traces.append(span)

    def add_span(
        self,
        name: str,
        duration: float,
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Record a completed interval as a child of the current span.

        ``start`` is an absolute :func:`time.perf_counter` reading (the
        caller's own ``t0``); when omitted the span is backdated by
        ``duration`` from now.  Generator-driven hot loops use this so
        no span object is held open across a ``yield`` (closing a
        generator early would otherwise leave the tracer stack torn).
        """
        span = Span(self, name, attrs)
        if start is not None:
            span.start = start - self._origin
        else:
            span.start = self._now() - duration
        span.duration = duration
        self._attach(span)
        return span

    # -- events -------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attrs: Any) -> None:
        """Annotate the current span; dropped when no span is open."""
        if self._stack:
            self._stack[-1].event(name, **attrs)

    # -- access -------------------------------------------------------
    @property
    def last_trace(self) -> Optional[Span]:
        return self.traces[-1] if self.traces else None

    def clear(self) -> None:
        self.traces.clear()
        self.dropped_traces = 0


class TraceRecord:
    """One collected per-query trace with its worker attribution."""

    __slots__ = ("span", "worker", "lane", "seq")

    def __init__(self, span: Span, worker: str, lane: int, seq: int) -> None:
        self.span = span
        #: Thread name of the worker that executed the query.
        self.worker = worker
        #: Small dense integer per worker thread (1, 2, ...) — the
        #: ``tid`` lane the merged Chrome trace lays this query on.
        self.lane = lane
        #: Collection order (drops make it non-contiguous).
        self.seq = seq


class TraceCollector:
    """Thread-safe store of completed per-query span trees.

    The :class:`Tracer` is a per-query span *stack* and must never be
    shared between threads.  The collector inverts the ownership that
    used to sit on ``Database.tracer``: each
    :class:`~repro.engine.context.ExecutionContext` asks the collector
    for a fresh tracer (:meth:`new_tracer`, sharing the collector's
    time origin so all queries land on one timeline) and publishes the
    finished tree back (:meth:`collect`) when the query ends.  That
    makes ``QueryEngine.execute_many(workers=N)`` with tracing on
    produce N independent, well-formed span trees — no cross-thread
    stack tearing, no forced ``NULL_TRACER``.

    Collected traces are bounded by ``max_traces`` (most recent kept,
    ``dropped_traces`` counts the rest); each worker thread gets a
    stable dense ``lane`` number, which is what the Chrome-trace
    exporter uses as the per-worker ``tid``.
    """

    enabled = True

    def __init__(
        self,
        max_traces: int = 64,
        max_children: int = 512,
        max_events: int = 1024,
    ) -> None:
        self.max_traces = max_traces
        self.max_children = max_children
        self.max_events = max_events
        self.dropped_traces = 0
        self._records: List[TraceRecord] = []
        self._lanes: Dict[int, int] = {}
        self._seq = 0
        self._lock = threading.Lock()
        self._origin = time.perf_counter()

    # -- per-query tracers --------------------------------------------
    def new_tracer(self) -> Tracer:
        """A fresh single-query tracer on this collector's timeline."""
        return Tracer(
            max_traces=4,
            max_children=self.max_children,
            max_events=self.max_events,
            origin=self._origin,
        )

    def collect(self, tracer: Tracer) -> None:
        """Publish a finished per-query tracer's trees (thread-safe)."""
        traces = tracer.traces
        if not traces and not tracer.dropped_traces:
            return
        thread = threading.current_thread()
        with self._lock:
            lane = self._lanes.setdefault(
                thread.ident, len(self._lanes) + 1
            )
            self.dropped_traces += tracer.dropped_traces
            for span in traces:
                if len(self._records) >= self.max_traces:
                    self._records.pop(0)
                    self.dropped_traces += 1
                self._seq += 1
                self._records.append(
                    TraceRecord(span, thread.name, lane, self._seq)
                )

    # -- access -------------------------------------------------------
    @property
    def records(self) -> List[TraceRecord]:
        """Collected records, oldest first (snapshot copy)."""
        with self._lock:
            return list(self._records)

    @property
    def traces(self) -> List[Span]:
        """The collected root spans, oldest first (snapshot copy)."""
        with self._lock:
            return [record.span for record in self._records]

    @property
    def last_trace(self) -> Optional[Span]:
        with self._lock:
            return self._records[-1].span if self._records else None

    @property
    def workers(self) -> List[str]:
        """Distinct worker thread names seen so far, by lane order."""
        with self._lock:
            names: Dict[int, str] = {}
            for record in self._records:
                names.setdefault(record.lane, record.worker)
            return [names[lane] for lane in sorted(names)]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped_traces = 0


class _NullSpan:
    """Shared no-op span: one instance serves every disabled call site."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    events: List[SpanEvent] = []
    duration = 0.0
    start = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``Database`` installs this by default, so untraced queries pay one
    ``tracer.enabled`` attribute read per instrumentation site and
    allocate nothing — the "no measurable overhead" path.
    """

    enabled = False
    traces: Tuple = ()
    dropped_traces = 0
    max_events = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, duration: float,
                 start: Optional[float] = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    @property
    def last_trace(self) -> None:
        return None

    def clear(self) -> None:
        pass


#: The shared disabled tracer.  Identity-comparable: code may test
#: ``tracer is NULL_TRACER`` to see whether tracing is off.
NULL_TRACER = NullTracer()
