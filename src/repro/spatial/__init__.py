"""Spatial primitives: geometry, space-filling curves and spatial trees."""

from .geometry import MBR, Point, point_segment_distance, project_onto_segment
from .kdtree import KDNode, KDTreePartition
from .rtree import RTree, RTreeEntry
from .zorder import ZOrderCurve, deinterleave_bits, interleave_bits

__all__ = [
    "MBR",
    "Point",
    "point_segment_distance",
    "project_onto_segment",
    "KDNode",
    "KDTreePartition",
    "RTree",
    "RTreeEntry",
    "ZOrderCurve",
    "deinterleave_bits",
    "interleave_bits",
]
