"""Basic planar geometry: points, rectangles and segment helpers.

All coordinates live in a bounded 2-d space (the paper scales every
dataset to ``[0, 10000]^2``).  These primitives are deliberately small
and allocation-light because the index builders create millions of
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = ["Point", "MBR", "point_segment_distance", "project_onto_segment"]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-d point."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True)
class MBR:
    """A minimal bounding rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"degenerate MBR: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "MBR":
        """Smallest rectangle covering ``points`` (must be non-empty)."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build an MBR from zero points")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def contains_point(self, p: Point) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains(self, other: "MBR") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "MBR") -> bool:
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed for this MBR to also cover ``other``."""
        return self.union(other).area - self.area

    def min_distance_to_point(self, p: Point) -> float:
        """Smallest Euclidean distance from ``p`` to this rectangle."""
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        return math.hypot(dx, dy)

    @classmethod
    def union_all(cls, boxes: Sequence["MBR"]) -> "MBR":
        if not boxes:
            raise ValueError("cannot union zero MBRs")
        out = boxes[0]
        for box in boxes[1:]:
            out = out.union(box)
        return out


def project_onto_segment(p: Point, a: Point, b: Point) -> Tuple[Point, float]:
    """Project ``p`` onto segment ``ab``.

    Returns ``(closest_point, t)`` where ``t in [0, 1]`` is the fractional
    position of the projection along the segment (0 at ``a``, 1 at ``b``).
    """
    abx, aby = b.x - a.x, b.y - a.y
    seg_len_sq = abx * abx + aby * aby
    if seg_len_sq == 0.0:
        return a, 0.0
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / seg_len_sq
    t = max(0.0, min(1.0, t))
    return Point(a.x + t * abx, a.y + t * aby), t


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Euclidean distance from ``p`` to segment ``ab``."""
    closest, _ = project_onto_segment(p, a, b)
    return p.distance_to(closest)
