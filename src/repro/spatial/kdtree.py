"""KD-tree partitioning used to compact per-keyword edge signatures.

Paper §3.1: "we recursively divide the edges by KD-tree partition
method based on the center points of the edges, and each leaf node
corresponds to the signature of an edge.  Then the signature size of a
keyword can be significantly reduced by compacting the tree node if all
of its descendant nodes share the same signature value."

The tree is built once per road network over the edge centres; every
keyword's bitmap is then measured against it: the *compact size* of a
signature is the number of maximal subtrees whose leaves all share the
same bit, which is exactly the number of nodes a compacted tree would
retain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from .geometry import Point

__all__ = ["KDTreePartition", "KDNode"]


@dataclass
class KDNode:
    """One node of the KD partition tree.

    Leaves hold exactly one item id (an edge); internal nodes split the
    remaining items at the median of the alternating axis.
    """

    item_ids: Tuple[int, ...]
    axis: int
    left: Optional["KDNode"] = None
    right: Optional["KDNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class KDTreePartition:
    """A static KD-tree over item centre points.

    Parameters
    ----------
    centers:
        ``centers[i]`` is the centre point of item ``i`` (edge ``i``).
    leaf_size:
        Maximum number of items per leaf (1 reproduces the paper's
        "each leaf node corresponds to the signature of an edge").
    """

    def __init__(self, centers: Sequence[Point], leaf_size: int = 1) -> None:
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self._centers = list(centers)
        self._leaf_size = leaf_size
        self._num_nodes = 0
        if self._centers:
            ids = list(range(len(self._centers)))
            self.root: Optional[KDNode] = self._build(ids, axis=0)
        else:
            self.root = None

    def __len__(self) -> int:
        return len(self._centers)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the uncompacted tree."""
        return self._num_nodes

    def _build(self, ids: List[int], axis: int) -> KDNode:
        self._num_nodes += 1
        if len(ids) <= self._leaf_size:
            return KDNode(item_ids=tuple(ids), axis=axis)
        key = (lambda i: self._centers[i].x) if axis == 0 else (
            lambda i: self._centers[i].y
        )
        ids.sort(key=key)
        mid = len(ids) // 2
        node = KDNode(item_ids=tuple(ids), axis=axis)
        node.left = self._build(ids[:mid], axis=1 - axis)
        node.right = self._build(ids[mid:], axis=1 - axis)
        return node

    # ------------------------------------------------------------------
    # Signature compaction
    # ------------------------------------------------------------------
    def compact_node_count(self, ones: Set[int]) -> int:
        """Nodes retained after compacting a bitmap against this tree.

        ``ones`` is the set of item ids whose signature bit is 1.  A
        subtree collapses into a single node when every leaf below it
        has the same bit; the returned count is the number of nodes in
        the resulting compacted tree (internal + collapsed).
        """
        if self.root is None:
            return 0

        def visit(node: KDNode) -> Tuple[Optional[bool], int]:
            """Returns (uniform bit or None, compacted node count)."""
            if node.is_leaf:
                bits = {item in ones for item in node.item_ids}
                if len(bits) == 1:
                    return bits.pop(), 1
                return None, 1
            left_bit, left_count = visit(node.left)
            right_bit, right_count = visit(node.right)
            if left_bit is not None and left_bit == right_bit:
                return left_bit, 1  # collapse this whole subtree
            return None, 1 + left_count + right_count

        _, count = visit(self.root)
        return count

    def compact_size_bytes(self, ones: Set[int], bits_per_node: int = 2) -> int:
        """Approximate byte size of the compacted signature.

        Each retained node costs ``bits_per_node`` bits (a bit value
        plus a structure bit, as in a succinct tree encoding).
        """
        node_count = self.compact_node_count(ones)
        return (node_count * bits_per_node + 7) // 8
