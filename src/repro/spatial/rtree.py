"""A page-based R-tree over the simulated disk.

Two roles in the reproduction (paper §2.2 and §5):

* the *network R-tree* organising the MBRs of road edges, used to snap
  spatio-textual objects onto their edges in a branch-and-bound fashion;
* the *inverted R-tree* (IR) baseline, which keeps one R-tree of objects
  per keyword.

The tree is bulk loaded with Sort-Tile-Recursive (STR) packing, the
standard technique for static datasets; nodes live on pages of a
:class:`~repro.storage.pagefile.PageFile` so every traversal is charged
to the I/O model.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..storage.pagefile import PAGE_SIZE, PageFile
from .geometry import MBR, Point

__all__ = ["RTree", "RTreeEntry"]

_ENTRY_BYTES = 40  # 4 doubles for the MBR + an 8-byte pointer/payload
_NODE_HEADER_BYTES = 16


class RTreeEntry:
    """A leaf entry: an MBR plus an opaque payload (edge id, object id...)."""

    __slots__ = ("mbr", "payload")

    def __init__(self, mbr: MBR, payload: Any) -> None:
        self.mbr = mbr
        self.payload = payload


class _RNode:
    __slots__ = ("leaf", "mbr", "entries", "children")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.mbr: Optional[MBR] = None
        self.entries: List[RTreeEntry] = []          # leaf only
        self.children: List[Tuple[MBR, int]] = []    # internal: (mbr, page_no)


class RTree:
    """Disk-resident R-tree with STR bulk loading.

    Parameters
    ----------
    file:
        Page file storing the nodes.
    fanout:
        Maximum entries per node; defaults to what fits in a 4 KiB page.
    """

    def __init__(
        self,
        file: PageFile,
        fanout: Optional[int] = None,
        pin_root: bool = True,
    ) -> None:
        """``pin_root=True`` keeps the root page memory-resident, as
        index roots are in practice; other node reads are charged."""
        if fanout is None:
            fanout = max(4, (PAGE_SIZE - _NODE_HEADER_BYTES) // _ENTRY_BYTES)
        if fanout < 2:
            raise ValueError("R-tree fanout must be at least 2")
        self._file = file
        self._fanout = fanout
        self._pin_root = pin_root
        self._root_page: Optional[int] = None
        self._height = 0
        self._num_entries = 0

    def __len__(self) -> int:
        return self._num_entries

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_pages(self) -> int:
        return self._file.num_pages

    @property
    def fanout(self) -> int:
        return self._fanout

    # ------------------------------------------------------------------
    # Construction (STR bulk load)
    # ------------------------------------------------------------------
    def bulk_load(self, entries: Sequence[RTreeEntry]) -> None:
        """Build the tree bottom-up with Sort-Tile-Recursive packing."""
        if self._root_page is not None:
            raise StorageError("R-tree already built")
        self._num_entries = len(entries)
        if not entries:
            root = _RNode(leaf=True)
            self._root_page = self._write_node(root)
            self._height = 1
            return

        groups = self._str_pack(list(entries))
        pages: List[Tuple[MBR, int]] = []
        for group in groups:
            node = _RNode(leaf=True)
            node.entries = group
            node.mbr = MBR.union_all([e.mbr for e in group])
            pages.append((node.mbr, self._write_node(node)))
        self._height = 1

        while len(pages) > 1:
            next_pages: List[Tuple[MBR, int]] = []
            child_groups = self._str_pack_boxes(pages)
            for group in child_groups:
                node = _RNode(leaf=False)
                node.children = group
                node.mbr = MBR.union_all([m for m, _ in group])
                next_pages.append((node.mbr, self._write_node(node)))
            pages = next_pages
            self._height += 1
        self._root_page = pages[0][1]

    def _str_pack(self, entries: List[RTreeEntry]) -> List[List[RTreeEntry]]:
        """Sort-Tile-Recursive packing of leaf entries into node groups."""
        n = len(entries)
        per_node = self._fanout
        num_nodes = math.ceil(n / per_node)
        num_slices = max(1, math.ceil(math.sqrt(num_nodes)))
        slice_size = num_slices * per_node
        entries.sort(key=lambda e: e.mbr.center.x)
        groups: List[List[RTreeEntry]] = []
        for s in range(0, n, slice_size):
            chunk = sorted(
                entries[s : s + slice_size], key=lambda e: e.mbr.center.y
            )
            for g in range(0, len(chunk), per_node):
                groups.append(chunk[g : g + per_node])
        return groups

    def _str_pack_boxes(
        self, boxes: List[Tuple[MBR, int]]
    ) -> List[List[Tuple[MBR, int]]]:
        n = len(boxes)
        per_node = self._fanout
        num_nodes = math.ceil(n / per_node)
        num_slices = max(1, math.ceil(math.sqrt(num_nodes)))
        slice_size = num_slices * per_node
        boxes.sort(key=lambda b: b[0].center.x)
        groups: List[List[Tuple[MBR, int]]] = []
        for s in range(0, n, slice_size):
            chunk = sorted(boxes[s : s + slice_size], key=lambda b: b[0].center.y)
            for g in range(0, len(chunk), per_node):
                groups.append(chunk[g : g + per_node])
        return groups

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def window(self, region: MBR) -> Iterator[RTreeEntry]:
        """Yield every leaf entry whose MBR intersects ``region``."""
        if self._root_page is None:
            return
        stack = [self._root_page]
        while stack:
            node: _RNode = self._read(stack.pop())
            if node.leaf:
                for entry in node.entries:
                    if entry.mbr.intersects(region):
                        yield entry
            else:
                for mbr, page in node.children:
                    if mbr.intersects(region):
                        stack.append(page)

    def nearest(self, p: Point, k: int = 1) -> List[RTreeEntry]:
        """Best-first k-nearest-neighbour search by MBR distance.

        Distance to a leaf entry is the min distance from ``p`` to its
        MBR, which for degenerate (point or segment-box) entries matches
        the true geometric distance closely enough for snapping; exact
        refinement is the caller's job.
        """
        if self._root_page is None or k <= 0:
            return []
        counter = 0
        heap: List[Tuple[float, int, bool, Any]] = []
        heapq.heappush(heap, (0.0, counter, False, self._root_page))
        results: List[RTreeEntry] = []
        while heap and len(results) < k:
            dist, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                results.append(item)
                continue
            node: _RNode = self._read(item)
            if node.leaf:
                for entry in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (entry.mbr.min_distance_to_point(p), counter, True, entry),
                    )
            else:
                for mbr, page in node.children:
                    counter += 1
                    heapq.heappush(
                        heap, (mbr.min_distance_to_point(p), counter, False, page)
                    )
        return results

    def all_entries(self) -> Iterator[RTreeEntry]:
        """Unfiltered scan of every leaf entry."""
        if self._root_page is None:
            return
        stack = [self._root_page]
        while stack:
            node: _RNode = self._read(stack.pop())
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(page for _, page in node.children)

    # ------------------------------------------------------------------
    def _read(self, page_no: int) -> _RNode:
        if self._pin_root and page_no == self._root_page:
            return self._file.read_unbuffered(page_no)
        return self._file.read(page_no)

    def _write_node(self, node: _RNode) -> int:
        count = len(node.entries) if node.leaf else len(node.children)
        size = _NODE_HEADER_BYTES + count * _ENTRY_BYTES
        return self._file.allocate(node, size_bytes=min(size, PAGE_SIZE))
