"""Z-order (Morton) space-filling curve.

The CCAM layout (paper §2.2) clusters road nodes by the Z-ordering of
their coordinates, and the per-keyword B+-trees of the inverted file
(paper §3.1) key edges by the Z-order code of their centre point.  The
curve maps 2-d points in a bounded domain to 1-d codes that preserve
spatial locality.
"""

from __future__ import annotations

from .geometry import Point

__all__ = ["ZOrderCurve", "interleave_bits", "deinterleave_bits"]

_DEFAULT_BITS = 16


def interleave_bits(ix: int, iy: int, bits: int = _DEFAULT_BITS) -> int:
    """Interleave the low ``bits`` bits of ``ix`` and ``iy``.

    Bit ``i`` of ``ix`` lands at position ``2i`` and bit ``i`` of ``iy``
    at position ``2i + 1`` of the result.
    """
    code = 0
    for i in range(bits):
        code |= ((ix >> i) & 1) << (2 * i)
        code |= ((iy >> i) & 1) << (2 * i + 1)
    return code


def deinterleave_bits(code: int, bits: int = _DEFAULT_BITS) -> tuple:
    """Inverse of :func:`interleave_bits`; returns ``(ix, iy)``."""
    ix = iy = 0
    for i in range(bits):
        ix |= ((code >> (2 * i)) & 1) << i
        iy |= ((code >> (2 * i + 1)) & 1) << i
    return ix, iy


class ZOrderCurve:
    """Z-order codec over a rectangular coordinate domain.

    Coordinates are quantised onto a ``2^bits x 2^bits`` grid covering
    ``[xmin, xmax] x [ymin, ymax]`` and the grid cells are interleaved
    into a Morton code.
    """

    def __init__(
        self,
        xmin: float = 0.0,
        ymin: float = 0.0,
        xmax: float = 10000.0,
        ymax: float = 10000.0,
        bits: int = _DEFAULT_BITS,
    ) -> None:
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("Z-order domain must have positive extent")
        if not 1 <= bits <= 31:
            raise ValueError("bits must be in [1, 31]")
        self.xmin = xmin
        self.ymin = ymin
        self.xmax = xmax
        self.ymax = ymax
        self.bits = bits
        self._cells = (1 << bits) - 1
        self._sx = self._cells / (xmax - xmin)
        self._sy = self._cells / (ymax - ymin)

    def encode(self, x: float, y: float) -> int:
        """Morton code of point ``(x, y)``; clamps out-of-domain input."""
        # The small epsilon absorbs float rounding at exact cell
        # boundaries (e.g. the domain's far corner).
        ix = int(max(0.0, min(float(self._cells), (x - self.xmin) * self._sx + 1e-9)))
        iy = int(max(0.0, min(float(self._cells), (y - self.ymin) * self._sy + 1e-9)))
        return interleave_bits(ix, iy, self.bits)

    def encode_point(self, p: Point) -> int:
        return self.encode(p.x, p.y)

    def decode(self, code: int) -> Point:
        """Centre of the grid cell addressed by ``code``."""
        ix, iy = deinterleave_bits(code, self.bits)
        return Point(self.xmin + ix / self._sx, self.ymin + iy / self._sy)
