"""Simulated disk substrate: pages, buffer pool, I/O stats, B+-tree."""

from .bplustree import BPlusTree
from .buffer import BufferPool
from .iostats import IOSnapshot, IOStats
from .pagefile import PAGE_SIZE, DiskManager, Page, PageFile

__all__ = [
    "BPlusTree",
    "BufferPool",
    "IOSnapshot",
    "IOStats",
    "PAGE_SIZE",
    "DiskManager",
    "Page",
    "PageFile",
]
