"""A page-based B+-tree on the simulated disk.

The inverted file of paper §3.1 keys the edges of each keyword's
posting list by the Z-order code of the edge centre and maintains them
"by a B+ tree".  This module provides that structure: a disk-resident
B+-tree whose nodes are pages of a :class:`~repro.storage.pagefile.PageFile`,
supporting bulk loading (index construction), point search, range scans
and single-key insertion.

Keys are integers (Z-order codes, object ids, ...).  Values are opaque;
callers provide a byte-size estimate per entry so fan-out honours the
4096-byte page size.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from ..errors import StorageError
from .pagefile import PAGE_SIZE, PageFile

__all__ = ["BPlusTree"]

_NODE_HEADER_BYTES = 24
_CHILD_POINTER_BYTES = 8


class _Node:
    """In-page representation of a B+-tree node."""

    __slots__ = ("leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: List[int] = []
        self.values: List[Any] = []        # leaf only
        self.children: List[int] = []      # internal only (page numbers)
        self.next_leaf: Optional[int] = None


class BPlusTree:
    """Disk-resident B+-tree over integer keys.

    Parameters
    ----------
    file:
        Page file that stores the nodes (one node per page).
    key_bytes:
        Estimated bytes per key on disk.
    value_bytes:
        Estimated bytes per leaf value on disk.
    """

    def __init__(
        self,
        file: PageFile,
        key_bytes: int = 8,
        value_bytes: int = 8,
        pin_root: bool = True,
    ) -> None:
        """``pin_root=True`` keeps the root page memory-resident (the
        standard practice for index roots): root accesses are free, all
        other node reads are charged through the buffer pool."""
        if key_bytes <= 0 or value_bytes <= 0:
            raise ValueError("entry byte sizes must be positive")
        self._file = file
        self._key_bytes = key_bytes
        self._value_bytes = value_bytes
        self._pin_root = pin_root
        self._leaf_capacity = max(
            2, (PAGE_SIZE - _NODE_HEADER_BYTES) // (key_bytes + value_bytes)
        )
        self._internal_capacity = max(
            2, (PAGE_SIZE - _NODE_HEADER_BYTES) // (key_bytes + _CHILD_POINTER_BYTES)
        )
        self._root_page: Optional[int] = None
        self._height = 0
        self._num_entries = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_entries

    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree)."""
        return self._height

    @property
    def num_pages(self) -> int:
        return self._file.num_pages

    @property
    def leaf_capacity(self) -> int:
        return self._leaf_capacity

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def bulk_load(self, entries: List[Tuple[int, Any]]) -> None:
        """Build the tree from ``entries`` sorted by key (strictly unique).

        Bulk loading packs leaves to ~100 % occupancy, the standard
        approach for read-mostly index construction.
        """
        if self._root_page is not None:
            raise StorageError("B+-tree already built")
        if not entries:
            root = _Node(leaf=True)
            self._root_page = self._write_node(root)
            self._height = 1
            return
        for (k1, _), (k2, _) in zip(entries, entries[1:]):
            if k1 >= k2:
                raise StorageError("bulk_load requires strictly increasing keys")

        # Level 0: leaves.
        leaf_pages: List[int] = []
        level_keys: List[int] = []  # smallest key of each node on this level
        for start in range(0, len(entries), self._leaf_capacity):
            chunk = entries[start : start + self._leaf_capacity]
            node = _Node(leaf=True)
            node.keys = [k for k, _ in chunk]
            node.values = [v for _, v in chunk]
            page_no = self._write_node(node)
            if leaf_pages:
                self._patch_next_leaf(leaf_pages[-1], page_no)
            leaf_pages.append(page_no)
            level_keys.append(node.keys[0])
        self._num_entries = len(entries)
        self._height = 1

        # Upper levels.
        pages, keys = leaf_pages, level_keys
        while len(pages) > 1:
            next_pages: List[int] = []
            next_keys: List[int] = []
            for start in range(0, len(pages), self._internal_capacity):
                child_pages = pages[start : start + self._internal_capacity]
                child_keys = keys[start : start + self._internal_capacity]
                node = _Node(leaf=False)
                node.children = list(child_pages)
                node.keys = list(child_keys[1:])  # separators
                page_no = self._write_node(node)
                next_pages.append(page_no)
                next_keys.append(child_keys[0])
            pages, keys = next_pages, next_keys
            self._height += 1
        self._root_page = pages[0]

    def insert(self, key: int, value: Any) -> None:
        """Insert one entry; raises on duplicate key."""
        if self._root_page is None:
            self.bulk_load([(key, value)])
            return
        split = self._insert_into(self._root_page, key, value)
        if split is not None:
            sep_key, right_page = split
            root = _Node(leaf=False)
            root.children = [self._root_page, right_page]
            root.keys = [sep_key]
            self._root_page = self._write_node(root)
            self._height += 1
        self._num_entries += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, key: int) -> Optional[Any]:
        """Point lookup; returns the value or ``None``.

        Each node visited charges one buffered page read.
        """
        if self._root_page is None:
            return None
        node = self._read_root()
        while not node.leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = self._read_node(node.children[idx])
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        """Yield every ``(key, value)`` with ``lo <= key <= hi`` in order."""
        if self._root_page is None or lo > hi:
            return
        node = self._read_root()
        while not node.leaf:
            idx = bisect.bisect_right(node.keys, lo)
            node = self._read_node(node.children[idx])
        while True:
            start = bisect.bisect_left(node.keys, lo)
            for i in range(start, len(node.keys)):
                if node.keys[i] > hi:
                    return
                yield node.keys[i], node.values[i]
            if node.next_leaf is None:
                return
            node = self._read_node(node.next_leaf)

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Full ordered scan."""
        yield from self.range(-(1 << 62), 1 << 62)

    # ------------------------------------------------------------------
    # Node storage helpers
    # ------------------------------------------------------------------
    def _write_node(self, node: _Node) -> int:
        size = _NODE_HEADER_BYTES + len(node.keys) * self._key_bytes
        if node.leaf:
            size += len(node.values) * self._value_bytes
        else:
            size += len(node.children) * _CHILD_POINTER_BYTES
        return self._file.allocate(node, size_bytes=min(size, PAGE_SIZE))

    def _read_node(self, page_no: int) -> _Node:
        return self._file.read(page_no)

    def _read_root(self) -> _Node:
        """Root access; uncharged when the root is pinned."""
        if self._pin_root:
            return self._file.read_unbuffered(self._root_page)
        return self._file.read(self._root_page)

    def _read_node_unbuffered(self, page_no: int) -> _Node:
        return self._file.read_unbuffered(page_no)

    def _patch_next_leaf(self, page_no: int, next_page: int) -> None:
        node = self._file.read_unbuffered(page_no)
        node.next_leaf = next_page

    def _insert_into(
        self, page_no: int, key: int, value: Any
    ) -> Optional[Tuple[int, int]]:
        """Recursive insert; returns ``(separator, new_page)`` on split."""
        node = self._read_node_unbuffered(page_no)
        if node.leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                raise StorageError(f"duplicate key {key}")
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) <= self._leaf_capacity:
                return None
            mid = len(node.keys) // 2
            right = _Node(leaf=True)
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            right.next_leaf = node.next_leaf
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            right_page = self._write_node(right)
            node.next_leaf = right_page
            return right.keys[0], right_page

        idx = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right_page = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right_page)
        if len(node.children) <= self._internal_capacity:
            return None
        mid = len(node.children) // 2
        right = _Node(leaf=False)
        right.children = node.children[mid:]
        right.keys = node.keys[mid:]
        promoted = node.keys[mid - 1]
        node.children = node.children[:mid]
        node.keys = node.keys[: mid - 1]
        new_page = self._write_node(right)
        return promoted, new_page
