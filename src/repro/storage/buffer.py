"""LRU buffer pool for the simulated disk.

The paper uses "an LRU memory buffer whose size is set to 2% of the
network dataset size".  Keys are ``(file_name, page_no)`` pairs shared
across every structure of a database, so hot pages of the road network
compete with inverted-file pages exactly as they would in one real
buffer pool.

Concurrency contract: the pool is shared by queries running on
multiple threads, so every access runs under one internal lock — the
LRU order book can never be observed mid-eviction and the lifetime
hit/miss/eviction counters never lose increments.  Per-query eviction
attribution uses per-thread scopes (:meth:`BufferPool.eviction_scope`);
hits and misses are already attributed per query by the I/O layer
(:meth:`repro.storage.iostats.IOStats.scoped`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Hashable, Tuple

__all__ = ["BufferPool"]


class _EvictionScope:
    """Counts the evictions triggered by one thread's accesses."""

    __slots__ = ("evictions",)

    def __init__(self) -> None:
        self.evictions = 0


class BufferPool:
    """A counting LRU cache of page identifiers.

    The pool stores only page *identities* (payloads stay in their page
    files); its job is to decide whether an access is a buffer hit or a
    physical read, which is all the I/O model needs.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self._capacity = capacity
        self._lru: "OrderedDict[Hashable, None]" = OrderedDict()
        self._lock = threading.Lock()
        self._scopes = threading.local()
        #: Lifetime counters, sampled as per-query deltas by the
        #: metrics layer (plain ints keep the hot path allocation-free).
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lru

    def _record_eviction(self) -> None:
        self.evictions += 1
        scope = getattr(self._scopes, "scope", None)
        if scope is not None:
            scope.evictions += 1

    @contextmanager
    def eviction_scope(self):
        """Attribute evictions caused by this thread's accesses.

        Yields an object whose ``evictions`` attribute counts only the
        evictions this thread triggered while the scope was active —
        the per-query delta, exact even when other threads evict
        concurrently.  Scopes nest per thread (the innermost wins).
        """
        scope = _EvictionScope()
        previous = getattr(self._scopes, "scope", None)
        self._scopes.scope = scope
        try:
            yield scope
        finally:
            self._scopes.scope = previous

    def access(self, key: Tuple[str, int]) -> bool:
        """Touch a page; returns ``True`` on a buffer hit.

        On a miss the page is admitted and the least recently used page
        is evicted if the pool is full.  A zero-capacity pool never
        hits (every access is a physical read).
        """
        with self._lock:
            if self._capacity == 0:
                self.misses += 1
                return False
            if key in self._lru:
                self._lru.move_to_end(key)
                self.hits += 1
                return True
            self.misses += 1
            self._lru[key] = None
            if len(self._lru) > self._capacity:
                self._lru.popitem(last=False)
                self._record_eviction()
            return False

    def evict_file(self, file_name: str) -> None:
        """Evict every buffered page of one file (file drop)."""
        with self._lock:
            stale = [k for k in self._lru if k[0] == file_name]
            for key in stale:
                del self._lru[key]

    def resize(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        with self._lock:
            self._capacity = capacity
            while len(self._lru) > self._capacity:
                self._lru.popitem(last=False)
                self._record_eviction()

    def clear(self) -> None:
        """Drop every page; lifetime hit/miss/eviction counters remain."""
        with self._lock:
            self._lru.clear()

    def counters_snapshot(self) -> Tuple[int, int, int]:
        return (self.hits, self.misses, self.evictions)
