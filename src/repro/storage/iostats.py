"""I/O accounting for the simulated disk.

The paper evaluates disk-resident indexes and reports the *number of
disk accesses* next to response time.  Every page access in this
library flows through an :class:`IOStats` instance so experiments can
report logical reads, physical reads (buffer misses) and writes, broken
down by category (road network, inverted file, R-tree, ...).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["IOStats", "IOSnapshot"]


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable snapshot of the counters, used for deltas."""

    logical_reads: int
    physical_reads: int
    writes: int
    buffer_hits: int
    physical_by_category: Dict[str, int]

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        by_cat = Counter(self.physical_by_category)
        by_cat.subtract(other.physical_by_category)
        return IOSnapshot(
            logical_reads=self.logical_reads - other.logical_reads,
            physical_reads=self.physical_reads - other.physical_reads,
            writes=self.writes - other.writes,
            buffer_hits=self.buffer_hits - other.buffer_hits,
            physical_by_category={k: v for k, v in by_cat.items() if v},
        )


@dataclass
class IOStats:
    """Mutable I/O counters shared by every structure of one database."""

    logical_reads: int = 0
    physical_reads: int = 0
    writes: int = 0
    buffer_hits: int = 0
    physical_by_category: Counter = field(default_factory=Counter)

    def record_read(self, category: str, hit: bool) -> None:
        """Record one logical page read; ``hit`` marks a buffer hit."""
        self.logical_reads += 1
        if hit:
            self.buffer_hits += 1
        else:
            self.physical_reads += 1
            self.physical_by_category[category] += 1

    def record_write(self, category: str) -> None:
        self.writes += 1

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            writes=self.writes,
            buffer_hits=self.buffer_hits,
            physical_by_category=dict(self.physical_by_category),
        )

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.writes = 0
        self.buffer_hits = 0
        self.physical_by_category.clear()
