"""I/O accounting for the simulated disk.

The paper evaluates disk-resident indexes and reports the *number of
disk accesses* next to response time.  Every page access in this
library flows through an :class:`IOStats` instance so experiments can
report logical reads, physical reads (buffer misses) and writes, broken
down by category (road network, inverted file, R-tree, ...).

Concurrency contract: one :class:`IOStats` is shared by every structure
of a database, including queries running on multiple threads.  A query
execution opens a per-thread *scope* (:meth:`IOStats.scoped`); reads
and writes issued by that thread land in the scope, giving exact
per-query I/O attribution without diffing shared counters, and are
folded into the global totals (under a lock) when the scope closes.
Threads without an active scope (index builds, loading) update the
global counters directly.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["IOStats", "IOSnapshot"]


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable snapshot of the counters, used for deltas."""

    logical_reads: int
    physical_reads: int
    writes: int
    buffer_hits: int
    physical_by_category: Dict[str, int]

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        by_cat = Counter(self.physical_by_category)
        by_cat.subtract(other.physical_by_category)
        return IOSnapshot(
            logical_reads=self.logical_reads - other.logical_reads,
            physical_reads=self.physical_reads - other.physical_reads,
            writes=self.writes - other.writes,
            buffer_hits=self.buffer_hits - other.buffer_hits,
            physical_by_category={k: v for k, v in by_cat.items() if v},
        )


@dataclass
class IOStats:
    """Mutable I/O counters shared by every structure of one database."""

    logical_reads: int = 0
    physical_reads: int = 0
    writes: int = 0
    buffer_hits: int = 0
    physical_by_category: Counter = field(default_factory=Counter)
    _scopes: threading.local = field(
        default_factory=threading.local, repr=False, compare=False
    )
    _merge_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def _target(self) -> "IOStats":
        """Where this thread's increments land: its scope, or self."""
        return getattr(self._scopes, "scope", None) or self

    def record_read(self, category: str, hit: bool) -> None:
        """Record one logical page read; ``hit`` marks a buffer hit."""
        target = self._target()
        target.logical_reads += 1
        if hit:
            target.buffer_hits += 1
        else:
            target.physical_reads += 1
            target.physical_by_category[category] += 1

    def record_write(self, category: str) -> None:
        self._target().writes += 1

    def absorb(self, other: "IOStats") -> None:
        """Add another stats object's totals into this one."""
        self.logical_reads += other.logical_reads
        self.physical_reads += other.physical_reads
        self.writes += other.writes
        self.buffer_hits += other.buffer_hits
        self.physical_by_category.update(other.physical_by_category)

    @contextmanager
    def scoped(self):
        """Collect this thread's I/O into a fresh :class:`IOStats`.

        Yields the scope; its counters are exact per-scope deltas.  On
        exit the scope is folded into the global totals under a lock,
        so concurrent scopes on other threads never lose increments.
        Scopes nest per thread (inner scopes shadow outer ones and fold
        into the globals, not the outer scope, on exit).
        """
        scope = IOStats()
        previous = getattr(self._scopes, "scope", None)
        self._scopes.scope = scope
        try:
            yield scope
        finally:
            self._scopes.scope = previous
            with self._merge_lock:
                self.absorb(scope)

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            writes=self.writes,
            buffer_hits=self.buffer_hits,
            physical_by_category=dict(self.physical_by_category),
        )

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.writes = 0
        self.buffer_hits = 0
        self.physical_by_category.clear()
