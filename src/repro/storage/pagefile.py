"""Simulated disk: pages, page files and the disk manager.

The paper's experiments run against disk-resident structures with a
4096-byte page size and an LRU buffer sized at 2 % of the dataset.  We
reproduce that environment *logically*: pages live in memory, but every
access is routed through a shared :class:`~repro.storage.buffer.BufferPool`
and counted by :class:`~repro.storage.iostats.IOStats`, so the reported
"number of disk accesses" matches what a disk-resident implementation
would incur.

Payloads are ordinary Python objects; each page also records an
estimated on-disk byte size used to derive index sizes (Fig. 6(c)) and
page fan-outs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import StorageError
from .buffer import BufferPool
from .iostats import IOStats

__all__ = ["PAGE_SIZE", "Page", "PageFile", "DiskManager"]

#: Fixed page size in bytes, matching the paper's experimental setup.
PAGE_SIZE = 4096


@dataclass
class Page:
    """One simulated disk page."""

    file_name: str
    page_no: int
    payload: Any
    size_bytes: int = PAGE_SIZE


class PageFile:
    """An append-only collection of pages belonging to one structure.

    A page file has a *category* label (``"network"``, ``"inverted"``,
    ``"rtree"``, ...) used to attribute physical I/O in the statistics.
    """

    def __init__(self, name: str, category: str, disk: "DiskManager") -> None:
        self.name = name
        self.category = category
        self._disk = disk
        self._pages: List[Page] = []

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """Total on-disk size: every allocated page occupies a full page."""
        return len(self._pages) * PAGE_SIZE

    def allocate(self, payload: Any, size_bytes: int = PAGE_SIZE) -> int:
        """Append a new page; returns its page number.

        ``size_bytes`` is the estimated payload size.  Callers are
        responsible for packing payloads so they do not exceed
        :data:`PAGE_SIZE`; the estimate is not enforced because several
        structures (e.g. R-tree roots) are legitimately tiny.
        """
        page_no = len(self._pages)
        self._pages.append(Page(self.name, page_no, payload, size_bytes))
        self._disk.stats.record_write(self.category)
        return page_no

    def read(self, page_no: int) -> Any:
        """Read a page through the buffer pool; returns its payload."""
        if not 0 <= page_no < len(self._pages):
            raise StorageError(
                f"page {page_no} out of range for file {self.name!r} "
                f"({len(self._pages)} pages)"
            )
        hit = self._disk.buffer.access((self.name, page_no))
        self._disk.stats.record_read(self.category, hit)
        return self._pages[page_no].payload

    def read_unbuffered(self, page_no: int) -> Any:
        """Read a page without touching buffer or counters.

        Used only by index *builders* which would run off-line in a real
        deployment and must not pollute query-time statistics.
        """
        return self._pages[page_no].payload

    def rewrite(
        self,
        page_no: int,
        payload: Any = None,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Overwrite an existing page in place; charged as one write.

        ``payload=None`` keeps the current payload object (the caller
        mutated it through :meth:`read_unbuffered` and only needs the
        write accounted); ``size_bytes=None`` keeps the recorded size.
        This is the update path's counterpart to :meth:`allocate` —
        page numbers never move, so references held by trees and
        node-page maps stay valid.
        """
        if not 0 <= page_no < len(self._pages):
            raise StorageError(
                f"page {page_no} out of range for file {self.name!r} "
                f"({len(self._pages)} pages)"
            )
        page = self._pages[page_no]
        if payload is not None:
            page.payload = payload
        if size_bytes is not None:
            page.size_bytes = size_bytes
        self._disk.stats.record_write(self.category)


class DiskManager:
    """Owns the page files, the shared buffer pool and the I/O stats."""

    def __init__(self, buffer_pages: int = 1024) -> None:
        self.stats = IOStats()
        self.buffer = BufferPool(capacity=buffer_pages)
        self._files: Dict[str, PageFile] = {}

    def create_file(self, name: str, category: str) -> PageFile:
        if name in self._files:
            raise StorageError(f"page file {name!r} already exists")
        pf = PageFile(name, category, self)
        self._files[name] = pf
        return pf

    def get_file(self, name: str) -> PageFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"unknown page file {name!r}") from None

    def drop_file(self, name: str) -> None:
        self._files.pop(name, None)
        self.buffer.evict_file(name)

    def files(self) -> Tuple[PageFile, ...]:
        return tuple(self._files.values())

    def total_size_bytes(self, category: Optional[str] = None) -> int:
        """Total size of all files, optionally restricted to a category."""
        return sum(
            f.size_bytes
            for f in self._files.values()
            if category is None or f.category == category
        )

    def resize_buffer(self, capacity_pages: int) -> None:
        """Resize the LRU buffer (used to apply the 2 %-of-dataset rule)."""
        self.buffer.resize(capacity_pages)

    def clear_buffer(self) -> None:
        """Drop every buffered page (cold-cache experiments)."""
        self.buffer.clear()
