"""Textual substrate: vocabularies and Zipf keyword generation."""

from .vocabulary import Vocabulary, make_term_names
from .zipf import ZipfSampler, zipf_probabilities

__all__ = ["Vocabulary", "make_term_names", "ZipfSampler", "zipf_probabilities"]
