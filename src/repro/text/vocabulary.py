"""Vocabulary with term frequencies and frequency-weighted sampling.

The paper's workload chooses query keywords with probability
proportional to their dataset term frequency (§5, "the likelihood of a
keyword t being chosen as query keyword is freq(t) / Σ freq(t')"); the
on-the-fly query logs of §3.3 Remark 1 use the same principle per edge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["Vocabulary", "make_term_names"]


def make_term_names(count: int, prefix: str = "t") -> List[str]:
    """Generate ``count`` synthetic term names ``t0, t1, ...``."""
    if count <= 0:
        raise ValueError("count must be positive")
    return [f"{prefix}{i}" for i in range(count)]


class Vocabulary:
    """An immutable term catalogue with frequencies.

    Built either from explicit frequencies or counted from a corpus of
    keyword sets.  Provides frequency-weighted sampling used by the
    workload generator and the query-log models.
    """

    def __init__(self, frequencies: Mapping[str, int]) -> None:
        if not frequencies:
            raise ValueError("vocabulary must contain at least one term")
        items = sorted(frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
        self._terms: List[str] = [t for t, _ in items]
        self._freqs: np.ndarray = np.array([f for _, f in items], dtype=np.float64)
        if (self._freqs <= 0).any():
            raise ValueError("term frequencies must be positive")
        self._index: Dict[str, int] = {t: i for i, t in enumerate(self._terms)}
        self._probs = self._freqs / self._freqs.sum()

    @classmethod
    def from_corpus(cls, keyword_sets: Iterable[Iterable[str]]) -> "Vocabulary":
        freq: Dict[str, int] = {}
        for kws in keyword_sets:
            for term in kws:
                freq[term] = freq.get(term, 0) + 1
        return cls(freq)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return term in self._index

    @property
    def terms(self) -> Sequence[str]:
        """Terms ordered by decreasing frequency (rank order)."""
        return tuple(self._terms)

    def frequency(self, term: str) -> int:
        return int(self._freqs[self._index[term]])

    def probability(self, term: str) -> float:
        return float(self._probs[self._index[term]])

    def most_frequent(self, count: int) -> List[str]:
        return self._terms[:count]

    def sample_terms(
        self, count: int, rng: np.random.Generator, distinct: bool = True
    ) -> List[str]:
        """Frequency-weighted sample of ``count`` terms."""
        if not distinct:
            idx = rng.choice(len(self._terms), size=count, p=self._probs)
            return [self._terms[i] for i in idx]
        count = min(count, len(self._terms))
        chosen: set = set()
        while len(chosen) < count:
            need = count - len(chosen)
            batch = rng.choice(len(self._terms), size=max(4, 2 * need), p=self._probs)
            for i in batch:
                chosen.add(int(i))
                if len(chosen) == count:
                    break
        return [self._terms[i] for i in sorted(chosen)]

    def items(self) -> Iterable[Tuple[str, int]]:
        for i, t in enumerate(self._terms):
            yield t, int(self._freqs[i])
