"""Zipf-distributed term sampling (paper §5, dataset SYN).

The synthetic dataset draws object keywords "from a vocabulary whose
term frequencies follow the Zipf distribution where the parameter z
varies from 0.9 to 1.3".  This module provides a seeded sampler over a
rank-based Zipf law: term of rank ``r`` (1-based) has probability
proportional to ``1 / r^z``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["ZipfSampler", "zipf_probabilities"]


def zipf_probabilities(n: int, z: float) -> np.ndarray:
    """Normalised Zipf probabilities for ranks ``1..n`` with skew ``z``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if z < 0:
        raise ValueError("Zipf skew must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


class ZipfSampler:
    """Seeded sampler of vocabulary terms under a Zipf law.

    ``sample_distinct`` draws a set of *distinct* terms for one object,
    which matches objects carrying keyword *sets* rather than bags.
    """

    def __init__(self, terms: Sequence[str], z: float, seed: int = 0) -> None:
        if not terms:
            raise ValueError("vocabulary must be non-empty")
        self._terms = list(terms)
        self._probs = zipf_probabilities(len(self._terms), z)
        self._rng = np.random.default_rng(seed)
        self.z = z

    @property
    def vocabulary_size(self) -> int:
        return len(self._terms)

    def sample(self, count: int) -> List[str]:
        """Draw ``count`` terms with replacement."""
        idx = self._rng.choice(len(self._terms), size=count, p=self._probs)
        return [self._terms[i] for i in idx]

    def sample_distinct(self, count: int) -> List[str]:
        """Draw ``count`` distinct terms (capped at the vocabulary size)."""
        count = min(count, len(self._terms))
        chosen: set = set()
        # Rejection sampling preserves the Zipf marginal for small draws;
        # batches keep the numpy call count low.
        while len(chosen) < count:
            need = count - len(chosen)
            batch = self._rng.choice(
                len(self._terms), size=max(4, 2 * need), p=self._probs
            )
            for i in batch:
                chosen.add(int(i))
                if len(chosen) == count:
                    break
        return [self._terms[i] for i in sorted(chosen)]
