"""Query workload generation and execution."""

from .queries import WorkloadConfig, generate_diversified_queries, generate_sk_queries
from .runner import WorkloadReport, run_diversified_workload, run_sk_workload

__all__ = [
    "WorkloadConfig",
    "generate_diversified_queries",
    "generate_sk_queries",
    "WorkloadReport",
    "run_diversified_workload",
    "run_sk_workload",
]
