"""Query workload generation and execution."""

from .queries import WorkloadConfig, generate_diversified_queries, generate_sk_queries
from .runner import WorkloadReport, run_diversified_workload, run_sk_workload
from .updates import (
    UpdateWorkloadConfig,
    UpdateWorkloadReport,
    generate_update_ops,
    run_update_workload,
)

__all__ = [
    "WorkloadConfig",
    "generate_diversified_queries",
    "generate_sk_queries",
    "WorkloadReport",
    "run_diversified_workload",
    "run_sk_workload",
    "UpdateWorkloadConfig",
    "UpdateWorkloadReport",
    "generate_update_ops",
    "run_update_workload",
]
