"""Sustained-QPS load driver (open-loop, coordinated-omission-safe).

The workload runner (:mod:`repro.workloads.runner`) is *closed-loop*:
it issues the next query when the previous one finishes, so a slow
system is simply offered less load and its latency numbers look
flattering — the classic coordinated-omission trap.  This driver is
**open-loop**: queries are dispatched on a fixed schedule derived only
from the offered rate (query ``i`` is *due* at ``t0 + i/qps``), and
every latency is measured **from the intended send time**, not from
when a worker finally picked the query up.  A system that falls behind
therefore shows the queueing delay its users would actually feel, and
``achieved_qps`` visibly sags below ``offered_qps``.

The driver composes with the live telemetry plane:

* every observed latency feeds the database's sliding-window rollup
  (stream ``loadtest.latency_seconds``) next to the engine's own
  service-time stream, so ``/vars`` and ``/slo`` show the run live;
* when an SLO spec is given, a :class:`~repro.obs.rollup.LiveSLOMonitor`
  is evaluated once per rollup bucket during the run — breach windows
  are counted and recorded as they happen — and the **final live
  window's verdict gates the run** (CLI exit code).

``repro loadtest`` is the CLI entry; pair it with
``--telemetry-port`` to scrape ``/metrics`` while it runs.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.database import Database
from ..core.queries import DiversifiedSKQuery
from ..engine.plan import plan_diversified, plan_sk
from ..errors import QueryError
from ..index.base import ObjectIndex
from ..obs.rollup import LiveSLOMonitor
from ..obs.slo import SLOSpec

__all__ = ["LoadTestConfig", "LoadTestReport", "run_loadtest"]

#: Rollup stream the driver records observed (queue-inclusive)
#: latencies into; the engine's ``query.wall_seconds`` stream keeps
#: measuring pure service time alongside.
OBSERVED_STREAM = "loadtest.latency_seconds"


@dataclass(frozen=True)
class LoadTestConfig:
    """Knobs of one load-test run."""

    qps: float = 20.0
    duration_seconds: float = 10.0
    workers: int = 4
    method: str = "seq"

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise QueryError("qps must be positive")
        if self.duration_seconds <= 0:
            raise QueryError("duration_seconds must be positive")
        if self.workers < 1:
            raise QueryError("workers must be >= 1")
        if self.method not in ("seq", "com", "sk"):
            raise QueryError("method must be one of ('seq', 'com', 'sk')")

    @property
    def total_queries(self) -> int:
        return max(1, int(round(self.qps * self.duration_seconds)))


@dataclass
class LoadTestReport:
    """Aggregates over one open-loop run."""

    label: str
    offered_qps: float
    workers: int
    sent: int = 0
    completed: int = 0
    errors: int = 0
    #: Observed latencies: completion minus *intended* send time.
    latencies: List[float] = field(default_factory=list)
    #: Service latencies: completion minus actual execution start.
    service_latencies: List[float] = field(default_factory=list)
    #: Worst dispatch lag (actual start minus intended start) — how far
    #: behind schedule the driver itself fell.
    max_dispatch_lag: float = 0.0
    wall_clock_seconds: float = 0.0
    #: Live-SLO outcome (``LiveSLOMonitor.verdict()``), when gated.
    slo: Optional[Dict[str, Any]] = None

    @property
    def achieved_qps(self) -> float:
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.completed / self.wall_clock_seconds

    @property
    def slo_passed(self) -> bool:
        """The gate: the final live window's verdict (True when ungated)."""
        return self.slo is None or bool(self.slo.get("passed"))

    def percentile(self, p: float, service: bool = False) -> float:
        samples = self.service_latencies if service else self.latencies
        if not samples:
            return 0.0
        ordered = sorted(samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "label": self.label,
            "offered_qps": round(self.offered_qps, 2),
            "achieved_qps": round(self.achieved_qps, 2),
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p95_ms": round(self.percentile(95) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "service_p95_ms": round(
                self.percentile(95, service=True) * 1e3, 3
            ),
            "max_lag_ms": round(self.max_dispatch_lag * 1e3, 3),
            "workers": self.workers,
        }
        if self.slo is not None:
            row["slo"] = "PASS" if self.slo_passed else "FAIL"
            row["breach_windows"] = self.slo.get("breach_windows", 0)
        return row

    def summary_record(self) -> Dict[str, Any]:
        return {
            "type": "loadtest",
            "label": self.label,
            "row": self.row(),
            "wall_clock_seconds": self.wall_clock_seconds,
            "slo": self.slo,
        }


def run_loadtest(
    db: Database,
    index: ObjectIndex,
    queries: Sequence,
    config: LoadTestConfig,
    slo_spec: Optional[SLOSpec] = None,
    label: str = "",
    enable_pruning: bool = True,
) -> LoadTestReport:
    """Drive ``index`` at a constant offered rate; judge it live.

    ``queries`` are cycled to fill ``config.total_queries`` sends.
    Diversified queries route through ``config.method`` (``seq`` /
    ``com``); plain SK queries are planned as range queries.  The
    database's rollup is enabled on demand; when ``slo_spec`` is given
    a live monitor is installed for the run (and uninstalled after),
    evaluated once per rollup bucket, with the final window's verdict
    stored in ``report.slo``.
    """
    if not queries:
        raise QueryError("cannot load-test an empty query list")
    plans = []
    for i in range(config.total_queries):
        query = queries[i % len(queries)]
        if isinstance(query, DiversifiedSKQuery) and config.method != "sk":
            plans.append(plan_diversified(
                db, index, query, method=config.method,
                enable_pruning=enable_pruning,
            ))
        else:
            plans.append(plan_sk(db, index, query))
    report = LoadTestReport(
        label=label or f"{plans[0].label}@{config.qps:g}qps",
        offered_qps=config.qps,
        workers=config.workers,
    )
    rollup = db.enable_rollup()
    monitor: Optional[LiveSLOMonitor] = None
    if slo_spec is not None:
        monitor = db.use_live_slo(slo_spec)

    clock = time.monotonic
    lock = threading.Lock()
    interval = 1.0 / config.qps

    def _run_one(plan, intended: float, sequence: int) -> None:
        start = clock()
        error = False
        try:
            # The send index is the query's identity: flight records
            # and shadow-sampling decisions derive from it rather than
            # from a shared counter consumed in dispatch order, so a
            # recorded run replays identically under any --workers N.
            db.engine.execute(plan, sequence=sequence)
        except Exception:  # noqa: BLE001 — the driver must keep pace
            error = True
        end = clock()
        latency = end - intended
        rollup.record(
            latency, stream=OBSERVED_STREAM, error=error, now=end
        )
        with lock:
            report.completed += 1
            if error:
                report.errors += 1
            report.latencies.append(latency)
            report.service_latencies.append(end - start)
            lag = start - intended
            if lag > report.max_dispatch_lag:
                report.max_dispatch_lag = lag

    t0 = clock()
    next_tick = t0 + rollup.bucket_seconds
    with ThreadPoolExecutor(
        max_workers=config.workers, thread_name_prefix="repro-load"
    ) as pool:
        for i, plan in enumerate(plans):
            intended = t0 + i * interval
            now = clock()
            # Open loop: never skip a send.  When behind schedule the
            # query is submitted immediately and its latency still
            # counts from ``intended`` — the queueing delay is the
            # measurement, not an omission.
            if intended > now:
                time.sleep(intended - now)
            pool.submit(_run_one, plan, intended, i)
            report.sent += 1
            if monitor is not None and clock() >= next_tick:
                monitor.evaluate()
                next_tick += rollup.bucket_seconds
        # Context exit drains the queue (shutdown(wait=True)).
    report.wall_clock_seconds = clock() - t0
    if monitor is not None:
        # The gating verdict: the live window as the run ends.
        monitor.evaluate()
        report.slo = monitor.verdict()
        db.live_slo = None
    db.metrics.emit(report.summary_record())
    return report
