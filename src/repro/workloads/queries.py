"""Query workload generation (paper §5, "Workload").

A workload consists of 500 queries by default.  Query locations are
drawn from the locations of the underlying objects; the number of query
keywords ``l`` defaults to 3 and the maximal search distance to
``500 × l`` (the paper's setting in the ``[0, 10000]^2`` space).

Two keyword-sampling modes are provided:

* ``"object"`` (default) — the query keywords are drawn from the
  keyword set of one randomly chosen object, weighted by global term
  frequency.  This mirrors the co-occurrence structure of the paper's
  *real* datasets (a user queries words that actually describe some
  business), guaranteeing the AND constraint is satisfiable somewhere.
* ``"frequency"`` — the paper's literal rule: each keyword ``t`` is
  chosen independently with probability ``freq(t) / Σ freq(t')``.
  Under our synthetic *independent* keyword generator, multi-keyword
  conjunctions of independent draws are rarely satisfied, so this mode
  mainly exercises the pruning paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.database import Database
from ..core.queries import DiversifiedSKQuery, SKQuery
from ..errors import QueryError
from ..text.vocabulary import Vocabulary

__all__ = ["WorkloadConfig", "generate_sk_queries", "generate_diversified_queries"]

_KEYWORD_SOURCES = ("object", "frequency")


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of one workload, with the paper's defaults."""

    num_queries: int = 500
    num_keywords: int = 3  # l
    delta_max: Optional[float] = None  # defaults to 500 * l
    k: int = 10
    lambda_: float = 0.8
    keyword_source: str = "object"
    #: In "object" mode, keywords are drawn with weight ``freq^exponent``;
    #: larger exponents favour frequent (selective-in-numbers) terms the
    #: way real query loads do.
    keyword_weight_exponent: float = 2.0
    seed: int = 101

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise QueryError("num_queries must be positive")
        if self.num_keywords <= 0:
            raise QueryError("num_keywords must be positive")
        if self.keyword_source not in _KEYWORD_SOURCES:
            raise QueryError(
                f"keyword_source must be one of {_KEYWORD_SOURCES}"
            )

    def resolved_delta_max(self) -> float:
        if self.delta_max is not None:
            return self.delta_max
        return 500.0 * self.num_keywords


class _QuerySampler:
    """Shared machinery of the two generator entry points."""

    def __init__(self, db: Database, config: WorkloadConfig) -> None:
        self._db = db
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        self._objects = list(db.store)
        if not self._objects:
            raise QueryError("cannot build a workload over an empty object store")
        self._vocab = Vocabulary(db.store.keyword_frequencies())

    def position(self):
        obj = self._objects[int(self._rng.integers(0, len(self._objects)))]
        return obj.position

    def keywords(self) -> frozenset:
        l = self._config.num_keywords
        if self._config.keyword_source == "frequency":
            return frozenset(self._vocab.sample_terms(l, self._rng))
        # "object" mode: keywords of one object, frequency-weighted.
        for _ in range(64):
            obj = self._objects[int(self._rng.integers(0, len(self._objects)))]
            terms = sorted(obj.keywords)
            if len(terms) < l:
                continue
            weights = np.array(
                [self._vocab.frequency(t) for t in terms], dtype=np.float64
            )
            weights **= self._config.keyword_weight_exponent
            weights /= weights.sum()
            idx = self._rng.choice(len(terms), size=l, replace=False, p=weights)
            return frozenset(terms[i] for i in idx)
        # Degenerate store (every object has < l keywords): fall back.
        return frozenset(self._vocab.sample_terms(l, self._rng))


def generate_sk_queries(db: Database, config: WorkloadConfig) -> List[SKQuery]:
    """SK query workload over a database."""
    sampler = _QuerySampler(db, config)
    delta_max = config.resolved_delta_max()
    return [
        SKQuery(sampler.position(), sampler.keywords(), delta_max)
        for _ in range(config.num_queries)
    ]


def generate_diversified_queries(
    db: Database, config: WorkloadConfig
) -> List[DiversifiedSKQuery]:
    """Diversified SK query workload (adds ``k`` and ``λ``)."""
    sampler = _QuerySampler(db, config)
    delta_max = config.resolved_delta_max()
    return [
        DiversifiedSKQuery(
            sampler.position(),
            sampler.keywords(),
            delta_max,
            config.k,
            config.lambda_,
        )
        for _ in range(config.num_queries)
    ]
