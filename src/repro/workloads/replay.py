"""Deterministic replay of a captured flight-recorder journal.

The flight recorder (:mod:`repro.obs.recorder`) journals every
executed query — parameters, plan label, data epoch, result digest,
invariant counters — with committed dynamic updates interleaved.
This module re-executes that journal from scratch and diffs the
outcome against the recording:

* queries are **re-planned from their recorded parameters** (position,
  terms, δmax, k, λ), with the recorded algorithm pinned so the
  planner's cost model cannot silently reroute them;
* updates are re-applied **between epoch groups**, restoring the exact
  ``data_version`` each recorded query executed against (object ids
  are sequential, so replayed inserts reproduce the recorded ids — and
  that is asserted, not assumed);
* each replayed result's :func:`~repro.obs.recorder.result_digest` and
  invariant counters (result count, candidates, objective) are diffed
  against the recording, accumulating into a
  :class:`ReplayReport` with a per-plan-label breakdown.

Run unchanged, replay proves determinism.  Run with a different
distance backend, scoring mode or worker count (``repro replay FILE
--backend hub --workers 4``), it is a cross-backend / concurrency
audit: any digest that moves is a real divergence, localised to a
plan label and a journal sequence number.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.knn import SKkNNQuery
from ..core.queries import DiversifiedSKQuery, SKQuery
from ..engine.plan import plan_diversified, plan_knn, plan_sk
from ..errors import QueryError
from ..network.graph import NetworkPosition
from ..obs.recorder import DIGEST_PRECISION, result_digest

__all__ = [
    "FlightJournal",
    "ReplayConfig",
    "ReplayDivergence",
    "ReplayReport",
    "load_flight_journal",
    "run_replay",
]

#: Recorded ``index`` field (the index's display name) → the
#: :meth:`Database.build_index` kind that rebuilds it.
INDEX_KIND_BY_NAME = {
    "CCAM": "ccam",
    "IR": "ir",
    "IF": "if",
    "SIF": "sif",
    "SIF-P": "sif-p",
    "SIF-G": "sif-g",
}

#: Invariant counters replay compares (beyond the digest), skipped for
#: result-cache hits — a cached answer legitimately did no expansion.
_INVARIANT_STATS = ("candidates", "nodes_accessed")


@dataclass
class FlightJournal:
    """One parsed journal: header + query records + update records."""

    header: Optional[Dict[str, Any]] = None
    queries: List[Dict[str, Any]] = field(default_factory=list)
    updates: List[Dict[str, Any]] = field(default_factory=list)
    #: Malformed/unknown lines skipped while parsing.
    skipped: int = 0

    def __len__(self) -> int:
        return len(self.queries) + len(self.updates)


def load_flight_journal(path) -> FlightJournal:
    """Parse a ``--record`` JSON-lines file into a :class:`FlightJournal`.

    Unknown record types (metric snapshots, slowlog entries — journals
    may share a sink) and malformed lines are counted, not fatal, so a
    journal truncated by a killed run still replays its valid prefix.
    """
    journal = FlightJournal()
    path = Path(path)
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                journal.skipped += 1
                continue
            kind = record.get("type") if isinstance(record, dict) else None
            if kind == "flight_header":
                journal.header = record
            elif kind == "flight":
                journal.queries.append(record)
            elif kind == "flight_update":
                journal.updates.append(record)
            else:
                journal.skipped += 1
    return journal


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs of one replay run (``None`` = use the recorded value)."""

    backend: Optional[str] = None
    scoring: Optional[str] = None
    frontier: Optional[str] = None
    workers: int = 1
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise QueryError("workers must be >= 1")
        if self.limit is not None and self.limit < 1:
            raise QueryError("limit must be >= 1")


@dataclass
class ReplayDivergence:
    """One field of one record that replayed differently."""

    seq: Any
    label: str
    fieldname: str
    recorded: Any
    replayed: Any

    def render(self) -> str:
        return (
            f"DIVERGENCE  [{self.label}]  record #{self.seq}: "
            f"{self.fieldname} recorded={self.recorded!r} "
            f"replayed={self.replayed!r}"
        )


@dataclass
class ReplayReport:
    """The verdict of one replay run, with a per-label breakdown."""

    journal_path: str = ""
    backend: str = ""
    scoring: str = ""
    frontier: str = ""
    workers: int = 1
    queries_replayed: int = 0
    updates_applied: Dict[str, int] = field(default_factory=dict)
    divergences: List[ReplayDivergence] = field(default_factory=list)
    #: label -> {"replayed": n, "diverged": m}
    per_label: Dict[str, Dict[str, int]] = field(default_factory=dict)
    skipped_lines: int = 0
    wall_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.divergences

    def _label_slot(self, label: str) -> Dict[str, int]:
        return self.per_label.setdefault(
            label, {"replayed": 0, "diverged": 0}
        )

    def diverge(
        self, seq, label: str, fieldname: str, recorded, replayed
    ) -> None:
        self.divergences.append(ReplayDivergence(
            seq=seq, label=label, fieldname=fieldname,
            recorded=recorded, replayed=replayed,
        ))

    def row(self) -> Dict[str, Any]:
        return {
            "journal": self.journal_path,
            "backend": self.backend,
            "scoring": self.scoring,
            "frontier": self.frontier,
            "workers": self.workers,
            "queries": self.queries_replayed,
            "updates": sum(self.updates_applied.values()),
            "divergences": len(self.divergences),
            "verdict": "PASS" if self.passed else "FAIL",
            "wall_s": round(self.wall_seconds, 3),
        }

    def render(self) -> str:
        updates = sum(self.updates_applied.values())
        update_mix = ", ".join(
            f"{kind} {count}"
            for kind, count in sorted(self.updates_applied.items())
        ) or "none"
        lines = [
            f"REPLAY  {self.journal_path}  "
            f"(backend={self.backend}, scoring={self.scoring}, "
            f"frontier={self.frontier}, workers={self.workers})",
            f"  {self.queries_replayed} queries re-executed, "
            f"{updates} updates re-applied ({update_mix}) "
            f"in {self.wall_seconds:.3f}s",
        ]
        if self.skipped_lines:
            lines.append(
                f"  warning: {self.skipped_lines} journal line(s) "
                "skipped (malformed or foreign record types)"
            )
        lines.append("  per plan label:")
        for label in sorted(self.per_label):
            slot = self.per_label[label]
            lines.append(
                f"    {label}: {slot['replayed']} replayed, "
                f"{slot['diverged']} diverged"
            )
        for divergence in self.divergences[:50]:
            lines.append("  " + divergence.render())
        if len(self.divergences) > 50:
            lines.append(
                f"  ... {len(self.divergences) - 50} more divergences"
            )
        lines.append(
            f"  verdict: "
            + ("PASS — zero divergences" if self.passed else
               f"FAIL — {len(self.divergences)} divergence(s)")
        )
        return "\n".join(lines)

    def summary_record(self) -> Dict[str, Any]:
        return {
            "type": "replay",
            "row": self.row(),
            "per_label": {k: dict(v) for k, v in self.per_label.items()},
            "divergences": [
                {
                    "seq": d.seq, "label": d.label, "field": d.fieldname,
                    "recorded": d.recorded, "replayed": d.replayed,
                }
                for d in self.divergences
            ],
        }


def _rebuild_query(record: Dict[str, Any]):
    """Reconstruct the query object from its recorded parameters."""
    params = record["query"]
    position = NetworkPosition(
        params["position"]["edge_id"], params["position"]["offset"]
    )
    terms = frozenset(params["terms"])
    kind = record["kind"]
    if kind == "diversified":
        return DiversifiedSKQuery(
            position=position,
            terms=terms,
            delta_max=params["delta_max"],
            k=params["k"],
            lambda_=params.get("lambda", 0.8),
        )
    if kind == "knn":
        return SKkNNQuery(
            position=position,
            terms=terms,
            k=params["k"],
            horizon=params.get("horizon", 1e9),
            initial_radius=params.get("initial_radius"),
        )
    return SKQuery(
        position=position, terms=terms, delta_max=params["delta_max"]
    )


def _build_plan(db, index, record: Dict[str, Any]):
    query = _rebuild_query(record)
    kind = record["kind"]
    if kind == "diversified":
        # Pin the recorded algorithm: replay must compare like against
        # like even if data drift would flip the planner's SEQ/COM
        # choice.
        return plan_diversified(db, index, query, method=record["algorithm"])
    if kind == "knn":
        return plan_knn(db, index, query)
    return plan_sk(db, index, query)


def _apply_update(
    db, indexes: Dict[str, Any], record: Dict[str, Any], report: ReplayReport
) -> None:
    """Re-apply one journalled update to the db and every live index."""
    kind = record["kind"]
    targets = tuple(indexes.values())
    if kind == "insert":
        position = NetworkPosition(
            record["position"]["edge_id"], record["position"]["offset"]
        )
        obj = db.insert_object(
            position, frozenset(record.get("terms", ())), indexes=targets
        )
        recorded_id = record.get("object_id")
        if recorded_id is not None and obj.object_id != recorded_id:
            report.diverge(
                f"epoch {record['epoch']}", "journal", "insert_object_id",
                recorded_id, obj.object_id,
            )
    elif kind == "delete":
        db.delete_object(record["object_id"], indexes=targets)
    elif kind == "edge_weight":
        db.update_edge_weight(
            record["edge_id"], record["weight"], indexes=targets
        )
    else:
        raise QueryError(f"unknown journalled update kind {kind!r}")
    report.updates_applied[kind] = report.updates_applied.get(kind, 0) + 1


def _compare(record: Dict[str, Any], result, report: ReplayReport) -> None:
    """Diff one replayed result against its recording."""
    seq = record.get("seq", "?")
    label = record.get("label", "?")
    slot = report._label_slot(label)
    slot["replayed"] += 1
    before = len(report.divergences)
    digest = result_digest(result)
    if digest != record.get("digest"):
        report.diverge(seq, label, "digest", record.get("digest"), digest)
    if len(result) != record.get("results"):
        report.diverge(
            seq, label, "results", record.get("results"), len(result)
        )
    recorded_objective = record.get("objective")
    objective = getattr(result, "objective_value", None)
    if recorded_objective is not None and objective is not None:
        if round(objective, DIGEST_PRECISION) != recorded_objective:
            report.diverge(
                seq, label, "objective",
                recorded_objective, round(objective, DIGEST_PRECISION),
            )
    # Invariant counters: identical answers via different machinery
    # are fine (that is the point of --backend overrides), but the
    # *search shape* must match when nothing was overridden — and for
    # candidates/nodes it matches across backends too, because backend
    # choice only changes pairwise evaluation, not INE expansion.
    # Result-cache hits did no expansion; skip them.
    recorded_stats = record.get("stats") or {}
    if not record.get("result_cache_hit") and not getattr(
        result.stats, "result_cache_hit", False
    ):
        for name in _INVARIANT_STATS:
            recorded = recorded_stats.get(name)
            replayed = getattr(result.stats, name, None)
            if recorded is not None and replayed != recorded:
                report.diverge(seq, label, name, recorded, replayed)
    if len(report.divergences) > before:
        slot["diverged"] += 1


def run_replay(
    db,
    journal: FlightJournal,
    config: ReplayConfig = ReplayConfig(),
    journal_path: str = "",
) -> ReplayReport:
    """Re-execute a parsed journal against ``db``; diff everything.

    ``db`` must be freshly built from the journal header's dataset
    profile (the CLI does this), with any backend/scoring overrides
    already applied.  Queries are grouped by their recorded epoch;
    journalled updates are re-applied between groups so every query
    runs against the same ``data_version`` it was recorded at.  Within
    an epoch group queries execute through
    ``db.engine.execute_many(workers=config.workers)`` — read-only, so
    worker count cannot change answers (and the report will prove it).
    """
    report = ReplayReport(
        journal_path=journal_path,
        backend=db.distance_backend,
        scoring=db.scoring_mode,
        frontier=getattr(db, "frontier_mode", "dict"),
        workers=config.workers,
        skipped_lines=journal.skipped,
    )
    started = time.perf_counter()
    queries = journal.queries
    if config.limit is not None:
        queries = queries[:config.limit]
    updates = sorted(journal.updates, key=lambda r: r["epoch"])

    # Group query records by recorded epoch, preserving journal order
    # within each group.
    groups: Dict[int, List[Dict[str, Any]]] = {}
    for record in queries:
        groups.setdefault(record.get("epoch", 0), []).append(record)

    indexes: Dict[str, Any] = {}

    def index_for(name: str):
        if name not in indexes:
            kind = INDEX_KIND_BY_NAME.get(name)
            if kind is None:
                raise QueryError(
                    f"journal names unknown index {name!r}; "
                    f"expected one of {sorted(INDEX_KIND_BY_NAME)}"
                )
            indexes[name] = db.build_index(kind)
        return indexes[name]

    # Build every index the journal mentions *before* replaying any
    # update: recorded updates were applied to live indexes, so the
    # rebuilt ones must see the same maintenance stream.
    for record in queries:
        index_for(record["index"])

    cursor = 0
    for epoch in sorted(groups):
        while cursor < len(updates) and updates[cursor]["epoch"] <= epoch:
            _apply_update(db, indexes, updates[cursor], report)
            cursor += 1
        if db.data_version != epoch:
            report.diverge(
                f"epoch group {epoch}", "journal", "data_version",
                epoch, db.data_version,
            )
        group = groups[epoch]
        plans = [
            _build_plan(db, index_for(record["index"]), record)
            for record in group
        ]
        results = db.engine.execute_many(plans, workers=config.workers)
        for record, result in zip(group, results):
            _compare(record, result, report)
            report.queries_replayed += 1
    # Trailing updates (after the last recorded query) still replay, so
    # the journal's full update stream is validated.
    while cursor < len(updates):
        _apply_update(db, indexes, updates[cursor], report)
        cursor += 1
    report.wall_seconds = time.perf_counter() - started
    db.metrics.emit(report.summary_record())
    return report
