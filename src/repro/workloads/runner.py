"""Workload execution and measurement.

Runs a batch of queries against one index and aggregates the metrics
the paper reports: average query response time, average number of disk
accesses (physical page reads) and average number of candidate objects.
A configurable per-I/O latency converts page counts into a simulated
response-time component, so the reported times reflect a disk-resident
deployment rather than this in-memory simulation alone (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.database import Database
from ..core.queries import DiversifiedSKQuery, SKQuery
from ..index.base import ObjectIndex

__all__ = ["WorkloadReport", "run_sk_workload", "run_diversified_workload"]

#: Simulated latency per physical page read, seconds.  The paper's 2014
#: testbed used spinning disks (~5 ms); we default to 1 ms so simulated
#: I/O dominates CPU the way it did in the original experiments without
#: inflating absolute numbers absurdly.
DEFAULT_IO_LATENCY = 1e-3


@dataclass
class WorkloadReport:
    """Aggregated metrics over one workload run."""

    label: str
    num_queries: int = 0
    total_wall_seconds: float = 0.0
    total_physical_reads: int = 0
    total_candidates: int = 0
    total_objects_loaded: int = 0
    total_false_hit_objects: int = 0
    total_results: int = 0
    io_latency: float = DEFAULT_IO_LATENCY

    @property
    def avg_response_time(self) -> float:
        """Average response time: CPU wall time + simulated I/O latency."""
        if self.num_queries == 0:
            return 0.0
        simulated = self.total_physical_reads * self.io_latency
        return (self.total_wall_seconds + simulated) / self.num_queries

    @property
    def avg_io(self) -> float:
        return self.total_physical_reads / self.num_queries if self.num_queries else 0.0

    @property
    def avg_candidates(self) -> float:
        return self.total_candidates / self.num_queries if self.num_queries else 0.0

    @property
    def avg_false_hit_objects(self) -> float:
        return (
            self.total_false_hit_objects / self.num_queries if self.num_queries else 0.0
        )

    def row(self) -> dict:
        """A flat dict for tabular reporting."""
        return {
            "label": self.label,
            "queries": self.num_queries,
            "avg_time_ms": round(self.avg_response_time * 1e3, 3),
            "avg_io": round(self.avg_io, 1),
            "avg_candidates": round(self.avg_candidates, 1),
            "avg_false_hit_objects": round(self.avg_false_hit_objects, 1),
        }


def run_sk_workload(
    db: Database,
    index: ObjectIndex,
    queries: Sequence[SKQuery],
    label: str = "",
    io_latency: float = DEFAULT_IO_LATENCY,
    cold_buffer: bool = False,
) -> WorkloadReport:
    """Execute SK queries and aggregate the paper's metrics."""
    report = WorkloadReport(label=label or index.name, io_latency=io_latency)
    for query in queries:
        if cold_buffer:
            db.disk.clear_buffer()
        result = db.sk_search(index, query)
        report.num_queries += 1
        report.total_wall_seconds += result.stats.wall_seconds
        report.total_physical_reads += result.stats.physical_reads
        report.total_candidates += result.stats.candidates
        report.total_objects_loaded += result.stats.objects_loaded
        report.total_false_hit_objects += result.stats.false_hit_objects
        report.total_results += len(result)
    return report


def run_diversified_workload(
    db: Database,
    index: ObjectIndex,
    queries: Sequence[DiversifiedSKQuery],
    method: str,
    label: str = "",
    io_latency: float = DEFAULT_IO_LATENCY,
    cold_buffer: bool = False,
    enable_pruning: bool = True,
) -> WorkloadReport:
    """Execute diversified queries via SEQ or COM and aggregate metrics."""
    report = WorkloadReport(
        label=label or f"{method.upper()}/{index.name}", io_latency=io_latency
    )
    for query in queries:
        if cold_buffer:
            db.disk.clear_buffer()
        result = db.diversified_search(
            index, query, method=method, enable_pruning=enable_pruning
        )
        report.num_queries += 1
        report.total_wall_seconds += result.stats.wall_seconds
        report.total_physical_reads += result.stats.physical_reads
        report.total_candidates += result.stats.candidates
        report.total_objects_loaded += result.stats.objects_loaded
        report.total_false_hit_objects += result.stats.false_hit_objects
        report.total_results += len(result)
    return report
