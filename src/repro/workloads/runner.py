"""Workload execution and measurement.

Runs a batch of queries against one index and aggregates the metrics
the paper reports: average query response time, average number of disk
accesses (physical page reads) and average number of candidate objects.
A configurable per-I/O latency converts page counts into a simulated
response-time component, so the reported times reflect a disk-resident
deployment rather than this in-memory simulation alone (DESIGN.md §2).

Beyond the paper's averages, a report keeps every per-query response
time (for p50/p95/p99 tail latency) and the per-stage time breakdown
(INE expansion, signature verification, pairwise Dijkstras,
greedy/core-pair maintenance, simulated buffer I/O) recorded by the
query path, plus distance-cache hit/miss deltas — the numbers that
make warm-cache serving with a shared
:class:`~repro.network.distance.DistanceCache` observable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.database import Database
from ..core.queries import DiversifiedSKQuery, QueryStats, SKQuery
from ..engine.plan import plan_diversified, plan_sk
from ..errors import QueryError
from ..index.base import ObjectIndex

__all__ = ["WorkloadReport", "run_sk_workload", "run_diversified_workload"]

#: Simulated latency per physical page read, seconds.  The paper's 2014
#: testbed used spinning disks (~5 ms); we default to 1 ms so simulated
#: I/O dominates CPU the way it did in the original experiments without
#: inflating absolute numbers absurdly.
DEFAULT_IO_LATENCY = 1e-3


@dataclass
class WorkloadReport:
    """Aggregated metrics over one workload run."""

    label: str
    num_queries: int = 0
    total_wall_seconds: float = 0.0
    total_physical_reads: int = 0
    total_candidates: int = 0
    total_objects_loaded: int = 0
    total_false_hit_objects: int = 0
    total_results: int = 0
    io_latency: float = DEFAULT_IO_LATENCY
    #: Per-query response times (wall + simulated I/O), for percentiles.
    latencies: List[float] = field(default_factory=list)
    #: Summed per-stage seconds across every query.
    stage_totals: Dict[str, float] = field(default_factory=dict)
    total_pairwise_dijkstras: int = 0
    total_distance_cache_hits: int = 0
    total_distance_cache_misses: int = 0
    total_distance_cache_evictions: int = 0
    total_buffer_evictions: int = 0
    #: Queries whose network expansion the COM §4.3 bound cut short —
    #: the pruning the diversified-search figures are really measuring.
    total_early_terminations: int = 0
    #: Thread-pool width the workload ran with (1 = serial).
    workers: int = 1
    #: End-to-end batch wall clock — with ``workers > 1`` this is what
    #: shrinks while the per-query times above stay put.
    wall_clock_seconds: float = 0.0

    def record(self, stats: QueryStats, num_results: int) -> None:
        """Absorb one query's stats into the aggregate."""
        simulated_io = stats.physical_reads * self.io_latency
        self.num_queries += 1
        self.total_wall_seconds += stats.wall_seconds
        self.total_physical_reads += stats.physical_reads
        self.total_candidates += stats.candidates
        self.total_objects_loaded += stats.objects_loaded
        self.total_false_hit_objects += stats.false_hit_objects
        self.total_results += num_results
        self.latencies.append(stats.wall_seconds + simulated_io)
        for stage, seconds in stats.stage_seconds.items():
            self.stage_totals[stage] = self.stage_totals.get(stage, 0.0) + seconds
        if simulated_io:
            self.stage_totals["io_simulated"] = (
                self.stage_totals.get("io_simulated", 0.0) + simulated_io
            )
        self.total_pairwise_dijkstras += stats.pairwise_dijkstras
        self.total_distance_cache_hits += stats.distance_cache_hits
        self.total_distance_cache_misses += stats.distance_cache_misses
        self.total_distance_cache_evictions += stats.distance_cache_evictions
        self.total_buffer_evictions += stats.buffer_evictions
        if stats.expansion_terminated_early:
            self.total_early_terminations += 1

    @property
    def avg_response_time(self) -> float:
        """Average response time: CPU wall time + simulated I/O latency."""
        if self.num_queries == 0:
            return 0.0
        simulated = self.total_physical_reads * self.io_latency
        return (self.total_wall_seconds + simulated) / self.num_queries

    @property
    def avg_io(self) -> float:
        return self.total_physical_reads / self.num_queries if self.num_queries else 0.0

    @property
    def avg_candidates(self) -> float:
        return self.total_candidates / self.num_queries if self.num_queries else 0.0

    @property
    def avg_false_hit_objects(self) -> float:
        return (
            self.total_false_hit_objects / self.num_queries if self.num_queries else 0.0
        )

    @property
    def avg_pairwise_dijkstras(self) -> float:
        return (
            self.total_pairwise_dijkstras / self.num_queries
            if self.num_queries else 0.0
        )

    @property
    def distance_cache_hit_rate(self) -> float:
        """Hit fraction of the pairwise distance-cache lookups."""
        lookups = self.total_distance_cache_hits + self.total_distance_cache_misses
        return self.total_distance_cache_hits / lookups if lookups else 0.0

    @property
    def qps(self) -> float:
        """Batch throughput: queries per second of batch wall clock."""
        if self.wall_clock_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.wall_clock_seconds

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of per-query response time."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def stage_breakdown_ms(self) -> Dict[str, float]:
        """Average per-query milliseconds per stage, largest first."""
        if not self.num_queries:
            return {}
        return {
            stage: round(total * 1e3 / self.num_queries, 3)
            for stage, total in sorted(
                self.stage_totals.items(), key=lambda kv: -kv[1]
            )
        }

    def row(self) -> dict:
        """A flat dict for tabular reporting.

        Includes the paper's averages, tail latency percentiles and one
        ``<stage>_ms`` column per recorded stage (average per query).
        """
        row = {
            "label": self.label,
            "queries": self.num_queries,
            "avg_time_ms": round(self.avg_response_time * 1e3, 3),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p95_ms": round(self.percentile(95) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "avg_io": round(self.avg_io, 1),
            "avg_candidates": round(self.avg_candidates, 1),
            "avg_false_hit_objects": round(self.avg_false_hit_objects, 1),
        }
        if (
            self.total_pairwise_dijkstras
            or self.total_distance_cache_hits
            or self.total_distance_cache_misses
        ):
            row["avg_dijkstras"] = round(self.avg_pairwise_dijkstras, 1)
            row["cache_hit_pct"] = round(100.0 * self.distance_cache_hit_rate, 1)
        if self.total_early_terminations:
            row["early_term_pct"] = round(
                100.0 * self.total_early_terminations / self.num_queries, 1
            )
        if self.wall_clock_seconds > 0.0:
            row["workers"] = self.workers
            row["qps"] = round(self.qps, 1)
        for stage, ms in self.stage_breakdown_ms().items():
            row[f"{stage}_ms"] = ms
        return row

    def summary_record(self) -> dict:
        """A JSON-able workload summary for metric sinks."""
        return {
            "type": "workload",
            "label": self.label,
            "row": self.row(),
            "stage_totals_seconds": dict(self.stage_totals),
            "distance_cache": {
                "hits": self.total_distance_cache_hits,
                "misses": self.total_distance_cache_misses,
                "evictions": self.total_distance_cache_evictions,
            },
            "buffer_evictions": self.total_buffer_evictions,
            "pairwise_dijkstras": self.total_pairwise_dijkstras,
            "early_terminations": self.total_early_terminations,
            "workers": self.workers,
            "wall_clock_seconds": self.wall_clock_seconds,
            "qps": self.qps,
        }


def _check_workers(workers: int, cold_buffer: bool) -> None:
    if workers < 1:
        raise QueryError("workers must be >= 1")
    if workers > 1 and cold_buffer:
        raise QueryError(
            "cold_buffer clears the shared buffer pool between queries "
            "and cannot be combined with workers > 1"
        )


def _run_plans(
    db: Database, plans, report: WorkloadReport, workers: int
) -> None:
    """Execute the plans (serially or pooled) and fill the report."""
    t0 = time.perf_counter()
    results = db.engine.execute_many(plans, workers=workers)
    report.wall_clock_seconds = time.perf_counter() - t0
    report.workers = workers
    for result in results:
        report.record(result.stats, len(result))


def run_sk_workload(
    db: Database,
    index: ObjectIndex,
    queries: Sequence[SKQuery],
    label: str = "",
    io_latency: float = DEFAULT_IO_LATENCY,
    cold_buffer: bool = False,
    workers: int = 1,
) -> WorkloadReport:
    """Execute SK queries and aggregate the paper's metrics.

    ``workers > 1`` runs the batch on the query engine's thread pool;
    results and aggregates match a serial run (see
    :meth:`repro.engine.executor.QueryEngine.execute_many`), only the
    report's batch wall clock (``qps``) changes.  Incompatible with
    ``cold_buffer`` (which clears the shared pool between queries).
    """
    _check_workers(workers, cold_buffer)
    report = WorkloadReport(label=label or index.name, io_latency=io_latency)
    if workers > 1:
        plans = [plan_sk(db, index, q) for q in queries]
        _run_plans(db, plans, report, workers)
    else:
        # Serial runs still execute plans with their batch index so
        # flight records carry the same ``sequence`` identity either
        # way (a recorded serial run replays under any worker count).
        t0 = time.perf_counter()
        for i, query in enumerate(queries):
            if cold_buffer:
                db.disk.clear_buffer()
            result = db.engine.execute(plan_sk(db, index, query), sequence=i)
            report.record(result.stats, len(result))
        report.wall_clock_seconds = time.perf_counter() - t0
    db.metrics.emit(report.summary_record())
    return report


def run_diversified_workload(
    db: Database,
    index: ObjectIndex,
    queries: Sequence[DiversifiedSKQuery],
    method: str,
    label: str = "",
    io_latency: float = DEFAULT_IO_LATENCY,
    cold_buffer: bool = False,
    enable_pruning: bool = True,
    workers: int = 1,
) -> WorkloadReport:
    """Execute diversified queries via SEQ or COM and aggregate metrics.

    Install a shared cache first
    (``db.use_shared_distance_cache(...)``) to serve the workload
    warm: pairwise node maps then persist across queries and the
    report's ``cache_hit_pct`` / ``avg_dijkstras`` columns show the
    saving.  The cache is thread-safe, so this composes with
    ``workers > 1`` (see :func:`run_sk_workload`).
    """
    _check_workers(workers, cold_buffer)
    report = WorkloadReport(
        label=label or f"{method.upper()}/{index.name}", io_latency=io_latency
    )
    if workers > 1:
        plans = [
            plan_diversified(
                db, index, q, method=method, enable_pruning=enable_pruning
            )
            for q in queries
        ]
        _run_plans(db, plans, report, workers)
    else:
        # Same sequence-stamped path as run_sk_workload's serial branch.
        t0 = time.perf_counter()
        for i, query in enumerate(queries):
            if cold_buffer:
                db.disk.clear_buffer()
            result = db.engine.execute(
                plan_diversified(
                    db, index, query,
                    method=method, enable_pruning=enable_pruning,
                ),
                sequence=i,
            )
            report.record(result.stats, len(result))
        report.wall_clock_seconds = time.perf_counter() - t0
    db.metrics.emit(report.summary_record())
    return report
