"""Mixed update + query workloads for the dynamic-database story.

A *mixed* workload interleaves batches of diversified queries with
batches of updates (object inserts, object deletes, edge reweights)
against a live database.  Queries inside a batch may run concurrently
(``workers > 1`` — the engine's standing contract); **updates are
applied serially between query batches**, never concurrently with
queries: the update paths mutate the graph, the CCAM pages and the
index trees in place, and the concurrency contract for queries is
read-only index structures.  The epoch machinery (pinned query epochs,
the distance cache's epoch gate, journal-validated result-cache
entries) is what keeps the *cached* state honest across the
query/update boundary.

Update generation mirrors :mod:`repro.workloads.queries`: inserts draw
their location and keywords from existing objects (so new objects land
where queries look and carry queryable terms), deletes pick live
object ids, reweights scale a random edge's weight by a factor from
``weight_factor_range``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.database import Database
from ..core.queries import DiversifiedSKQuery
from ..engine.plan import plan_diversified
from ..errors import QueryError
from ..index.base import ObjectIndex
from .runner import DEFAULT_IO_LATENCY, WorkloadReport, _check_workers

__all__ = [
    "UpdateWorkloadConfig",
    "UpdateWorkloadReport",
    "generate_update_ops",
    "run_update_workload",
]


@dataclass(frozen=True)
class UpdateWorkloadConfig:
    """Knobs of one mixed update/query workload."""

    #: Updates applied between consecutive query batches.
    updates_per_batch: int = 20
    #: Query batches (updates run between them, so ``num_batches - 1``
    #: update rounds fire for ``num_batches`` query rounds).
    num_batches: int = 4
    #: Mix of update kinds; need not be normalised.
    insert_weight: float = 0.4
    delete_weight: float = 0.4
    edge_weight_weight: float = 0.2
    #: Reweight factor drawn log-uniformly from this range.
    weight_factor_range: Tuple[float, float] = (0.5, 2.0)
    seed: int = 202

    def __post_init__(self) -> None:
        if self.updates_per_batch < 0:
            raise QueryError("updates_per_batch must be non-negative")
        if self.num_batches <= 0:
            raise QueryError("num_batches must be positive")
        total = self.insert_weight + self.delete_weight + self.edge_weight_weight
        if total <= 0:
            raise QueryError("at least one update-kind weight must be positive")
        lo, hi = self.weight_factor_range
        if lo <= 0 or hi < lo:
            raise QueryError("weight_factor_range must be 0 < lo <= hi")


@dataclass
class UpdateWorkloadReport:
    """Query aggregates plus the update side of a mixed run."""

    query_report: WorkloadReport
    updates_applied: Dict[str, int] = field(default_factory=dict)
    update_seconds: float = 0.0
    #: ``data_version`` after the final batch.
    final_epoch: int = 0

    def row(self) -> dict:
        row = self.query_report.row()
        row["updates"] = sum(self.updates_applied.values())
        for kind, count in sorted(self.updates_applied.items()):
            row[f"updates_{kind}"] = count
        row["update_ms"] = round(self.update_seconds * 1e3, 3)
        row["epoch"] = self.final_epoch
        return row

    def summary_record(self) -> dict:
        record = self.query_report.summary_record()
        record["type"] = "update_workload"
        record["updates_applied"] = dict(self.updates_applied)
        record["update_seconds"] = self.update_seconds
        record["final_epoch"] = self.final_epoch
        return record


def generate_update_ops(
    db: Database, config: UpdateWorkloadConfig, count: int, rng
) -> List[Tuple[str, tuple]]:
    """``count`` update operations as ``(kind, args)`` descriptors.

    Descriptors are resolved *lazily by kind* against the live database
    when applied — a delete picks its victim at apply time, so earlier
    deletes in the same run can't invalidate it.
    """
    kinds = ["insert", "delete", "edge_weight"]
    weights = np.array(
        [config.insert_weight, config.delete_weight, config.edge_weight_weight],
        dtype=np.float64,
    )
    weights /= weights.sum()
    return [
        (kinds[int(rng.choice(3, p=weights))], ())
        for _ in range(count)
    ]


def _apply_update(
    db: Database,
    index: ObjectIndex,
    kind: str,
    rng,
    config: UpdateWorkloadConfig,
    edge_ids: Sequence[int],
) -> Optional[str]:
    """Apply one update of ``kind``; returns the kind applied or None."""
    if kind == "insert":
        objects = list(db.store)
        if not objects:
            return None
        donor = objects[int(rng.integers(0, len(objects)))]
        keyword_donor = objects[int(rng.integers(0, len(objects)))]
        db.insert_object(
            donor.position, keyword_donor.keywords, indexes=(index,)
        )
        return "insert"
    if kind == "delete":
        objects = list(db.store)
        if not objects:
            return None
        victim = objects[int(rng.integers(0, len(objects)))]
        db.delete_object(victim.object_id, indexes=(index,))
        return "delete"
    # edge_weight
    edge_id = edge_ids[int(rng.integers(0, len(edge_ids)))]
    lo, hi = config.weight_factor_range
    factor = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
    old = db.network.edge(edge_id)
    db.update_edge_weight(edge_id, old.weight * factor, indexes=(index,))
    return "edge_weight"


def run_update_workload(
    db: Database,
    index: ObjectIndex,
    queries: Sequence[DiversifiedSKQuery],
    config: UpdateWorkloadConfig,
    method: str = "seq",
    label: str = "",
    io_latency: float = DEFAULT_IO_LATENCY,
    workers: int = 1,
) -> UpdateWorkloadReport:
    """Interleave query batches with update batches.

    The queries are split into ``config.num_batches`` contiguous
    batches; after every batch except the last,
    ``config.updates_per_batch`` updates are applied serially.  Query
    batches honour ``workers`` exactly like
    :func:`~repro.workloads.runner.run_diversified_workload`; the
    serial update window between batches is the documented concurrency
    contract for mutation.
    """
    _check_workers(workers, cold_buffer=False)
    query_report = WorkloadReport(
        label=label or f"update/{method.upper()}/{index.name}",
        io_latency=io_latency,
    )
    rng = np.random.default_rng(config.seed)
    edge_ids = [edge.edge_id for edge in db.network.edges()]
    applied: Dict[str, int] = {}
    update_seconds = 0.0

    queries = list(queries)
    batches: List[List[DiversifiedSKQuery]] = []
    size = max(1, (len(queries) + config.num_batches - 1) // config.num_batches)
    for start in range(0, len(queries), size):
        batches.append(queries[start : start + size])

    t0 = time.perf_counter()
    for batch_no, batch in enumerate(batches):
        plans = [
            plan_diversified(db, index, q, method=method) for q in batch
        ]
        results = db.engine.execute_many(plans, workers=workers)
        for result in results:
            query_report.record(result.stats, len(result))
        if batch_no == len(batches) - 1:
            break
        ops = generate_update_ops(db, config, config.updates_per_batch, rng)
        u0 = time.perf_counter()
        for kind, _args in ops:
            done = _apply_update(db, index, kind, rng, config, edge_ids)
            if done is not None:
                applied[done] = applied.get(done, 0) + 1
        update_seconds += time.perf_counter() - u0
    query_report.wall_clock_seconds = time.perf_counter() - t0
    query_report.workers = workers

    report = UpdateWorkloadReport(
        query_report=query_report,
        updates_applied=applied,
        update_seconds=update_seconds,
        final_epoch=db.data_version,
    )
    db.metrics.emit(report.summary_record())
    return report
