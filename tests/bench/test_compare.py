"""Tests for the bench regression detector (repro.bench.compare)."""

import json

import pytest

from repro.bench.compare import (
    PresenceChange,
    compare_trajectories,
    load_trajectory,
    metric_direction,
    presence_changes,
    render_comparison,
)


def _doc(figures):
    return {
        "schema": "repro-bench-trajectory/v1",
        "artifact": "BENCH.json",
        "figures": {
            slug: {"title": slug, "headline": headline, "rows": []}
            for slug, headline in figures.items()
        },
    }


class TestDirections:
    def test_latency_and_io_are_higher_worse(self):
        for name in ("avg_time_ms", "p95_ms", "avg_io", "avg_dijkstras",
                     "build_s"):
            assert metric_direction(name) == "higher_worse", name

    def test_throughput_and_rates_are_higher_better(self):
        for name in ("qps", "speedup", "cache_hit_pct", "early_term_pct"):
            assert metric_direction(name) == "higher_better", name

    def test_parameters_are_context(self):
        for name in ("k", "workers", "num_objects", "dataset"):
            assert metric_direction(name) is None, name


class TestCompare:
    def test_identical_docs_have_no_movement(self):
        doc = _doc({"fig-6": {"p95_ms": 10.0, "qps": 50.0, "k": 6}})
        deltas = compare_trajectories(doc, doc)
        assert {d.metric for d in deltas} == {"p95_ms", "qps"}
        assert all(d.change_pct == 0 for d in deltas)
        assert not any(d.is_regression(20) for d in deltas)

    def test_latency_increase_is_a_regression(self):
        old = _doc({"fig-6": {"p95_ms": 10.0}})
        new = _doc({"fig-6": {"p95_ms": 12.5}})
        (delta,) = compare_trajectories(old, new)
        assert delta.change_pct == pytest.approx(25.0)
        assert delta.is_regression(20)
        assert not delta.is_regression(30)

    def test_qps_drop_is_a_regression(self):
        old = _doc({"fig-6": {"qps": 100.0}})
        new = _doc({"fig-6": {"qps": 70.0}})
        (delta,) = compare_trajectories(old, new)
        assert delta.change_pct == pytest.approx(30.0)
        assert delta.is_regression(20)

    def test_improvements_are_not_regressions(self):
        old = _doc({"fig-6": {"p95_ms": 10.0, "qps": 100.0}})
        new = _doc({"fig-6": {"p95_ms": 5.0, "qps": 160.0}})
        deltas = compare_trajectories(old, new)
        assert all(d.is_improvement(20) for d in deltas)
        assert not any(d.is_regression(20) for d in deltas)

    def test_one_sided_figures_and_metrics_skipped(self):
        old = _doc({"fig-6": {"p95_ms": 10.0}, "fig-7": {"p95_ms": 2.0}})
        new = _doc({"fig-6": {"avg_io": 5.0}, "fig-8": {"p95_ms": 9.0}})
        assert compare_trajectories(old, new) == []

    def test_render_lists_regressions_first(self):
        old = _doc({"fig-6": {"p95_ms": 10.0, "qps": 100.0}})
        new = _doc({"fig-6": {"p95_ms": 20.0, "qps": 200.0}})
        text = render_comparison(compare_trajectories(old, new), 20)
        assert "1 regression(s)" in text
        assert "REGRESSION" in text and "improved" in text
        assert text.index("REGRESSION") < text.index("improved")


class TestLoad:
    def test_load_checks_schema(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_doc({})))
        assert load_trajectory(good)["schema"] == "repro-bench-trajectory/v1"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError):
            load_trajectory(bad)


class TestPresence:
    def test_no_changes_for_identical_docs(self):
        doc = _doc({"fig": {"avg_ms": 1.0}})
        assert presence_changes(doc, doc) == []

    def test_added_and_removed_figures(self):
        old = _doc({"a": {"avg_ms": 1.0}, "b": {"avg_ms": 2.0}})
        new = _doc({"a": {"avg_ms": 1.0}, "c": {"avg_ms": 3.0}})
        changes = presence_changes(old, new)
        assert [(c.figure, c.metric, c.status) for c in changes] == [
            ("b", None, "removed"),
            ("c", None, "added"),
        ]

    def test_added_and_removed_headline_metrics(self):
        old = _doc({"fig": {"avg_ms": 1.0, "qps": 100.0}})
        new = _doc({"fig": {"avg_ms": 1.0, "speedup": 2.0}})
        changes = presence_changes(old, new)
        by_status = {(c.metric, c.status) for c in changes}
        assert ("qps", "removed") in by_status
        assert ("speedup", "added") in by_status
        # Values travel with the change for the report.
        removed = next(c for c in changes if c.status == "removed")
        assert removed.value == 100.0

    def test_context_columns_ignored(self):
        old = _doc({"fig": {"avg_ms": 1.0, "k": 6}})
        new = _doc({"fig": {"avg_ms": 1.0, "workers": 4}})
        assert presence_changes(old, new) == []

    def test_one_sided_metric_never_crashes_compare(self):
        old = _doc({"fig": {"qps": 100.0}})
        new = _doc({"fig": {"avg_ms": 5.0}})
        deltas = compare_trajectories(old, new)
        assert deltas == []
        changes = presence_changes(old, new)
        assert len(changes) == 2

    def test_render_includes_presence_section(self):
        old = _doc({"fig": {"qps": 100.0, "avg_ms": 1.0}})
        new = _doc({"fig": {"avg_ms": 1.0}})
        changes = presence_changes(old, new)
        text = render_comparison(
            compare_trajectories(old, new), 10.0, presence=changes
        )
        assert "1 presence change(s)" in text
        assert "REMOVED" in text
        assert "fig.qps" in text
        assert "not judged" in text

    def test_render_without_presence_unchanged(self):
        old = _doc({"fig": {"avg_ms": 1.0}})
        text = render_comparison(compare_trajectories(old, old), 10.0)
        assert "presence" not in text

    def test_to_dict(self):
        change = PresenceChange("fig", "qps", "added", 5.0)
        assert change.to_dict() == {
            "figure": "fig", "metric": "qps", "status": "added", "value": 5.0,
        }
        with pytest.raises(ValueError):
            PresenceChange("fig", None, "mutated")
