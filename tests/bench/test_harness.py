"""Tests for the benchmark harness caches."""

import pytest

from repro.bench.harness import BenchContext, bench_scale
from repro.workloads.queries import WorkloadConfig


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(0.7) == 0.7

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale() == 0.25


class TestContextCaching:
    @pytest.fixture()
    def ctx(self):
        return BenchContext(scale=0.05)

    def test_database_cached(self, ctx):
        a = ctx.database("SYN")
        b = ctx.database("SYN")
        assert a is b

    def test_database_override_key(self, ctx):
        a = ctx.database("SYN")
        b = ctx.database("SYN", num_objects=100)
        assert a is not b
        assert b.dataset_statistics()["num_objects"] == 100

    def test_index_cached(self, ctx):
        a = ctx.index("SYN", "sif")
        b = ctx.index("SYN", "sif")
        assert a is b

    def test_index_kwargs_key(self, ctx):
        a = ctx.index("SYN", "sif-p", max_cuts=2, file_prefix="h2")
        b = ctx.index("SYN", "sif-p", max_cuts=3, file_prefix="h3")
        assert a is not b

    def test_sk_report_runs(self, ctx):
        report = ctx.sk_report(
            "SYN", "sif", WorkloadConfig(num_queries=3, num_keywords=2, seed=1)
        )
        assert report.num_queries == 3

    def test_diversified_report_runs(self, ctx):
        report = ctx.diversified_report(
            "SYN", "sif", "com",
            WorkloadConfig(num_queries=2, num_keywords=2, k=4, seed=2),
        )
        assert report.num_queries == 2
