"""Tests for the tabular reporting helpers."""

from repro.bench.reporting import format_table, series_table


class TestFormatTable:
    def test_empty(self):
        assert "(empty)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_alignment_and_content(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 22},
        ]
        out = format_table(rows, title="My table")
        lines = out.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "longer" in out and "22" in out
        # All data lines share the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_missing_keys_render_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        out = format_table(rows)
        assert "3" in out


class TestSeriesTable:
    def test_rows_per_x(self):
        rows = series_table("x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        assert rows == [
            {"x": 1, "s1": 10, "s2": 30},
            {"x": 2, "s1": 20, "s2": 40},
        ]

    def test_empty_series(self):
        assert series_table("x", [], {}) == []


class TestCSV:
    def test_save_and_content(self, tmp_path):
        from repro.bench.reporting import save_csv

        path = tmp_path / "out" / "rows.csv"
        save_csv([{"x": 1, "y": "a"}, {"x": 2, "y": "b"}], path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,a"
        assert len(lines) == 3

    def test_empty_rows(self, tmp_path):
        from repro.bench.reporting import save_csv

        path = tmp_path / "empty.csv"
        save_csv([], path)
        assert path.read_text() == ""


class TestSlugify:
    def test_basic(self):
        from repro.bench.reporting import slugify

        assert slugify("Fig 6(a): time (ms)") == "fig-6-a-time-ms"
        assert slugify("!!!") == "table"
