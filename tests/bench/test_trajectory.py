"""Tests for the benchmark trajectory artifact (repro.bench.trajectory)."""

import json

from repro.bench.trajectory import TrajectoryWriter, default_trajectory_path

ROWS = [
    {"dataset": "NA", "SIF": 1.5, "SIF-P": 1.0, "note": "text"},
    {"dataset": "SF", "SIF": 2.5, "SIF-P": 2.0},
]


class TestTrajectoryWriter:
    def test_record_and_write(self, tmp_path):
        path = tmp_path / "BENCH.json"
        writer = TrajectoryWriter(path)
        writer.record("Fig 6(a): SK response time (ms)", ROWS)
        assert writer.write() == path
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-bench-trajectory/v1"
        figures = doc["figures"]
        slug = "fig-6-a-sk-response-time-ms"
        assert list(figures) == [slug]
        assert figures[slug]["rows"] == ROWS
        # Headline = per-column numeric means; text columns skipped.
        assert figures[slug]["headline"] == {"SIF": 2.0, "SIF-P": 1.5}

    def test_untitled_tables_are_ignored(self, tmp_path):
        writer = TrajectoryWriter(tmp_path / "b.json")
        writer.record("", ROWS)
        assert writer.write() is None

    def test_empty_write_is_a_noop(self, tmp_path):
        path = tmp_path / "b.json"
        assert TrajectoryWriter(path).write() is None
        assert not path.exists()

    def test_later_records_replace_earlier(self, tmp_path):
        writer = TrajectoryWriter(tmp_path / "b.json")
        writer.record("Fig 1", [{"x": 1}])
        writer.record("Fig 1", [{"x": 2}])
        writer.write()
        doc = writer.load()
        assert doc["figures"]["fig-1"]["rows"] == [{"x": 2}]

    def test_load_missing_returns_none(self, tmp_path):
        assert TrajectoryWriter(tmp_path / "absent.json").load() is None

    def test_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("REPRO_BENCH_TRAJECTORY", str(target))
        assert default_trajectory_path() == target
        assert bool(TrajectoryWriter())

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TRAJECTORY", "off")
        assert default_trajectory_path() is None
        writer = TrajectoryWriter()
        assert not writer
        writer.record("Fig 1", ROWS)  # silently ignored
        assert writer.write() is None

    def test_default_is_repo_root_artifact(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_TRAJECTORY", raising=False)
        path = default_trajectory_path()
        assert path.name == "BENCH_PR10.json"

    def test_write_merges_into_existing_artifact(self, tmp_path):
        path = tmp_path / "b.json"
        first = TrajectoryWriter(path)
        first.record("Fig 1", [{"x_ms": 1.0}])
        first.record("Fig 2", [{"x_ms": 5.0}])
        first.write()
        # A partial re-run refreshes Fig 1 but must not lose Fig 2.
        second = TrajectoryWriter(path)
        second.record("Fig 1", [{"x_ms": 2.0}])
        second.write()
        doc = second.load()
        assert doc["figures"]["fig-1"]["headline"] == {"x_ms": 2.0}
        assert doc["figures"]["fig-2"]["headline"] == {"x_ms": 5.0}
