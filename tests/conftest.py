"""Shared fixtures: hand-built micro networks and small generated datasets."""

from __future__ import annotations

import pytest

from repro import Database, NetworkPosition, RoadNetwork
from repro.datasets import build_dataset
from repro.datasets.catalog import DatasetProfile


def make_line_network(num_nodes: int = 5, spacing: float = 100.0) -> RoadNetwork:
    """A path graph ``n0 - n1 - ... - n_{k-1}`` with equal edge lengths."""
    network = RoadNetwork()
    for i in range(num_nodes):
        network.add_node(i, i * spacing, 0.0)
    for i in range(num_nodes - 1):
        network.add_edge(i, i + 1)
    return network


def make_grid4() -> RoadNetwork:
    """A 2x2-cell grid (9 nodes) with unit spacing 100.

    Node ids: ``r * 3 + c`` for row ``r``, column ``c``; every
    horizontal and vertical neighbour pair is connected, so shortest
    paths are Manhattan distances times 100.
    """
    network = RoadNetwork()
    for r in range(3):
        for c in range(3):
            network.add_node(r * 3 + c, c * 100.0, r * 100.0)
    for r in range(3):
        for c in range(3):
            nid = r * 3 + c
            if c < 2:
                network.add_edge(nid, nid + 1)
            if r < 2:
                network.add_edge(nid, nid + 3)
    return network


def make_paperlike_network() -> RoadNetwork:
    """A small irregular network in the spirit of the paper's Fig. 2.

    Seven nodes, eight edges, irregular edge lengths; used for precise
    hand-checked network-distance assertions.

    Layout (edge weights in brackets)::

        n0 --10-- n1 --12-- n2
        |          |         |
       [8]       [5]       [9]
        |          |         |
        n3 --7--  n4 --6--  n5
                   |
                  [4]
                   |
                   n6
    """
    network = RoadNetwork()
    coords = {
        0: (0.0, 100.0),
        1: (100.0, 100.0),
        2: (220.0, 100.0),
        3: (0.0, 0.0),
        4: (100.0, 0.0),
        5: (160.0, 0.0),
        6: (100.0, -40.0),
    }
    for nid, (x, y) in coords.items():
        network.add_node(nid, x, y)
    network.add_edge(0, 1, weight=10, length=10)
    network.add_edge(1, 2, weight=12, length=12)
    network.add_edge(0, 3, weight=8, length=8)
    network.add_edge(1, 4, weight=5, length=5)
    network.add_edge(2, 5, weight=9, length=9)
    network.add_edge(3, 4, weight=7, length=7)
    network.add_edge(4, 5, weight=6, length=6)
    network.add_edge(4, 6, weight=4, length=4)
    return network


TINY_PROFILE = DatasetProfile(
    name="TINY",
    network_kind="planar",
    num_nodes=220,
    neighbours=3,
    num_objects=900,
    vocabulary_size=80,
    avg_keywords=6,
    zipf_z=1.0,
    num_topics=8,
    seed=5,
)


@pytest.fixture(scope="session")
def tiny_db() -> Database:
    """A small but non-trivial database shared across the test session.

    Indexes built against it must not mutate it; tests that need to add
    objects build their own database.
    """
    return build_dataset(TINY_PROFILE)


@pytest.fixture(scope="session")
def tiny_indexes(tiny_db):
    """All five index kinds over the tiny database."""
    return {
        kind: tiny_db.build_index(kind, file_prefix=f"fixture-{kind}")
        for kind in ("ccam", "ir", "if", "sif", "sif-p")
    }


@pytest.fixture()
def line_network() -> RoadNetwork:
    return make_line_network()


@pytest.fixture()
def grid_network9() -> RoadNetwork:
    return make_grid4()


@pytest.fixture()
def paper_network() -> RoadNetwork:
    return make_paperlike_network()


def pos(edge_id: int, offset: float) -> NetworkPosition:
    return NetworkPosition(edge_id, offset)
