"""Tests for the §3.2 analytical cost model, validated empirically.

The model assumes keywords drawn independently and uniformly; the
empirical check builds exactly such a dataset (``zipf_z=0``,
``num_topics=1``) and compares measured object loads per index against
the model's C1/C2/C3 predictions.
"""

import pytest

from repro.core.analysis import CostModel
from repro.core.ine import INEExpansion
from repro.datasets.catalog import DatasetProfile, build_dataset
from repro.errors import QueryError
from repro.workloads.queries import WorkloadConfig, generate_sk_queries


class TestModelAlgebra:
    def test_validation(self):
        with pytest.raises(QueryError):
            CostModel(-1, 2, 10)
        with pytest.raises(QueryError):
            CostModel(3, 20, 10)
        with pytest.raises(QueryError):
            CostModel(3, 2, 0)

    def test_presence_probability_limits(self):
        # No objects -> no keyword can be present.
        assert CostModel(0, 5, 100).keyword_presence_probability == 0.0
        # Objects covering the whole vocabulary -> always present.
        assert CostModel(3, 100, 100).keyword_presence_probability == 1.0

    def test_presence_probability_monotone_in_m(self):
        sparse = CostModel(1, 5, 100).keyword_presence_probability
        dense = CostModel(10, 5, 100).keyword_presence_probability
        assert dense > sparse

    def test_c1_independent_of_keywords(self):
        model = CostModel(4, 5, 100)
        assert model.c1_edge_store(10) == 40
        assert model.c1_edge_store(10, num_keywords=3) == 40

    def test_c2_scales_with_keywords(self):
        model = CostModel(4, 5, 100)
        assert model.c2_inverted_file(10, 2) == pytest.approx(
            2 * model.c2_inverted_file(10, 1)
        )

    def test_c3_below_c2(self):
        model = CostModel(4, 5, 100)
        for l in (1, 2, 3, 4):
            assert model.c3_signature(10, l) <= model.c2_inverted_file(10, l)

    def test_signature_gain_grows_with_keywords(self):
        """More query keywords -> stronger AND pruning -> bigger C2/C3 gap."""
        model = CostModel(2, 5, 200)
        ratios = [
            model.c3_signature(10, l) / model.c2_inverted_file(10, l)
            for l in (1, 2, 3, 4)
        ]
        assert ratios == sorted(ratios, reverse=True)

    def test_ordering_holds(self):
        model = CostModel(4, 5, 100)
        assert model.predicted_ordering_holds(10, 3)


UNIFORM = DatasetProfile(
    name="UNIFORM",
    network_kind="planar",
    num_nodes=400,
    neighbours=3,
    num_objects=4000,
    vocabulary_size=120,
    avg_keywords=5,
    zipf_z=0.0,   # uniform keywords: the model's assumption
    num_topics=1,  # independent keywords
    seed=77,
)


class TestEmpiricalValidation:
    @pytest.fixture(scope="class")
    def setup(self):
        db = build_dataset(UNIFORM)
        indexes = {
            "ccam": db.build_index("ccam"),
            "if": db.build_index("if"),
            "sif": db.build_index("sif"),
        }
        model = CostModel.from_store(db.store)
        return db, indexes, model

    def _measure(self, db, index, queries):
        """(total objects loaded, total edges accessed) over a workload."""
        index.counters.reset()
        edges = 0
        for q in queries:
            exp = INEExpansion(
                db.ccam, db.network, index, q.position, q.terms, q.delta_max
            )
            exp.run_to_completion()
            edges += exp.stats.edges_accessed
        return index.counters.objects_loaded, edges

    @pytest.mark.parametrize("l", [1, 2, 3])
    def test_predictions_match_measurements(self, setup, l):
        db, indexes, model = setup
        queries = generate_sk_queries(
            db,
            WorkloadConfig(num_queries=30, num_keywords=l,
                           keyword_source="frequency", delta_max=2500.0,
                           seed=l),
        )
        measured_c1, edges = self._measure(db, indexes["ccam"], queries)
        measured_c2, _ = self._measure(db, indexes["if"], queries)
        measured_c3, _ = self._measure(db, indexes["sif"], queries)

        predicted_c1 = model.c1_edge_store(edges)
        predicted_c2 = model.c2_inverted_file(edges, l)
        predicted_c3 = model.c3_signature(edges, l)

        # C1 and C2 predictions land within 35 % of measurements.
        assert measured_c1 == pytest.approx(predicted_c1, rel=0.35)
        assert measured_c2 == pytest.approx(predicted_c2, rel=0.35)
        # C3 assumes homogeneous edges; real edges vary in object count
        # (length-weighted placement), and dense edges both pass the
        # signature test more often *and* hold more postings, so the
        # closed form is a lower bound that loosens as l grows.
        assert predicted_c3 * 0.65 <= measured_c3 <= predicted_c3 * 2.5
        # Either way the signature never loads more than the plain
        # inverted file.
        assert measured_c3 <= measured_c2 + 1e-9

    def test_measured_ordering(self, setup):
        db, indexes, model = setup
        queries = generate_sk_queries(
            db,
            WorkloadConfig(num_queries=30, num_keywords=2,
                           keyword_source="frequency", delta_max=2500.0,
                           seed=9),
        )
        c1, _ = self._measure(db, indexes["ccam"], queries)
        c2, _ = self._measure(db, indexes["if"], queries)
        c3, _ = self._measure(db, indexes["sif"], queries)
        assert c3 <= c2 <= c1
