"""Tests for the incremental core-pair maintenance (Algorithm 5).

The key property (paper §4.2): processing a stream of objects
incrementally must yield the same objective value as running the greedy
Algorithm 1 on the full set, and θ_T must grow monotonically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.core_pairs import CorePairMaintainer
from repro.core.diversify import greedy_diversify
from repro.core.objective import DiversificationObjective
from repro.core.queries import ResultItem
from repro.network.graph import NetworkPosition
from repro.network.objects import SpatioTextualObject


def make_stream(seed, n, delta_max=100.0):
    """Synthetic objects in the plane around the query point (origin).

    Distances to the query are the radii; pair distances are Euclidean,
    so the triangle inequality through the query — which Algorithm 5's
    cheap θ upper bound relies on, and which every road-network metric
    satisfies — holds by construction.  Objects arrive in non-decreasing
    distance order, as in the INE stream.
    """
    rng = np.random.default_rng(seed)
    coords = rng.uniform(-delta_max / 1.5, delta_max / 1.5, size=(n, 2))
    radii = np.hypot(coords[:, 0], coords[:, 1])
    order = np.argsort(radii)
    coords, radii = coords[order], radii[order]
    items = []
    for i in range(n):
        obj = SpatioTextualObject(i, NetworkPosition(0, 0.0), frozenset({"x"}))
        items.append(ResultItem(obj, float(radii[i])))
    points = {i: coords[i] for i in range(n)}

    def pd(a, b):
        pa = points[a.object.object_id]
        pb = points[b.object.object_id]
        return float(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))

    return items, pd


def run_maintainer(items, pd, k, lam=0.8, delta_max=100.0):
    obj = DiversificationObjective(lam, delta_max)
    m = CorePairMaintainer(k, obj, pd)
    m.bootstrap(items[:k])
    thetas = [m.theta_t]
    for it in items[k:]:
        m.add(it)
        thetas.append(m.theta_t)
    return m, obj, thetas


def objective_of(items, pd, obj):
    dists = [it.distance for it in items]

    def pair(i, j):
        return pd(items[i], items[j])

    return obj.objective(dists, pair)


class TestBasics:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            CorePairMaintainer(1, DiversificationObjective(0.5, 10), lambda a, b: 0)

    def test_bootstrap_twice_rejected(self):
        items, pd = make_stream(0, 6)
        m, _obj, _ = run_maintainer(items, pd, k=4)
        with pytest.raises(ValueError):
            m.bootstrap(items[:4])

    def test_duplicate_arrival_ignored(self):
        items, pd = make_stream(1, 8)
        obj = DiversificationObjective(0.8, 100)
        m = CorePairMaintainer(4, obj, pd)
        m.bootstrap(items[:4])
        m.add(items[5])
        before = m.theta_t
        m.add(items[5])
        assert m.theta_t == before

    def test_core_objects_count(self):
        items, pd = make_stream(2, 20)
        m, _obj, _ = run_maintainer(items, pd, k=6)
        assert len(m.core_objects()) == 6

    def test_odd_k_fills_with_closest(self):
        items, pd = make_stream(3, 20)
        m, _obj, _ = run_maintainer(items, pd, k=5)
        out = m.core_objects()
        assert len(out) == 5

    def test_fewer_objects_than_k(self):
        items, pd = make_stream(4, 3)
        obj = DiversificationObjective(0.8, 100)
        m = CorePairMaintainer(8, obj, pd)
        m.bootstrap(items)
        assert len(m.core_objects()) == 3

    def test_prune_core_object_rejected(self):
        items, pd = make_stream(5, 10)
        m, _obj, _ = run_maintainer(items, pd, k=4)
        core_id = m.pairs[0].u.object.object_id
        with pytest.raises(ValueError):
            m.prune(core_id)

    def test_prune_removes_from_active(self):
        items, pd = make_stream(6, 10)
        m, _obj, _ = run_maintainer(items, pd, k=4)
        non_core = [
            it.object.object_id
            for it in m.active_objects()
            if not m.is_core(it.object.object_id)
        ]
        if not non_core:
            pytest.skip("all objects became core")
        m.prune(non_core[0])
        assert all(
            it.object.object_id != non_core[0] for it in m.active_objects()
        )


class TestMonotonicity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_theta_t_grows_monotonically(self, seed):
        items, pd = make_stream(seed, 40)
        _m, _obj, thetas = run_maintainer(items, pd, k=8)
        finite = [t for t in thetas if t != float("-inf")]
        assert finite == sorted(finite)


class TestEquivalenceWithBatchGreedy:
    @pytest.mark.parametrize("seed,k,lam", [
        (0, 4, 0.8), (1, 4, 0.5), (2, 6, 0.8), (3, 8, 0.9), (4, 6, 0.0),
        (5, 4, 1.0), (6, 10, 0.7),
    ])
    def test_incremental_matches_batch_objective(self, seed, k, lam):
        items, pd = make_stream(seed, 30)
        obj = DiversificationObjective(lam, 100)
        m = CorePairMaintainer(k, obj, pd)
        m.bootstrap(items[:k])
        for it in items[k:]:
            m.add(it)
        inc = objective_of(m.core_objects()[:k], pd, obj)
        batch = objective_of(greedy_diversify(items, k, obj, pd), pd, obj)
        assert inc == pytest.approx(batch, rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_property_incremental_equals_batch(self, seed):
        items, pd = make_stream(seed, 24)
        obj = DiversificationObjective(0.8, 100)
        m = CorePairMaintainer(6, obj, pd)
        m.bootstrap(items[:6])
        for it in items[6:]:
            m.add(it)
        inc = objective_of(m.core_objects()[:6], pd, obj)
        batch = objective_of(greedy_diversify(items, 6, obj, pd), pd, obj)
        assert inc == pytest.approx(batch, rel=1e-9)


class TestUpperBoundSkip:
    def test_skipping_does_not_change_result(self):
        """The triangle-inequality skip must be semantically invisible."""
        items, pd = make_stream(11, 30)
        obj = DiversificationObjective(0.8, 100)

        calls = {"n": 0}

        def counting_pd(a, b):
            calls["n"] += 1
            return pd(a, b)

        m = CorePairMaintainer(6, obj, counting_pd)
        m.bootstrap(items[:6])
        for it in items[6:]:
            m.add(it)
        with_skip = objective_of(m.core_objects()[:6], pd, obj)
        exact_calls = calls["n"]
        # Exhaustive: n * (n-1) / 2 pair evaluations would be 435.
        assert exact_calls < 30 * 29 / 2
        batch = objective_of(greedy_diversify(items, 6, obj, pd), pd, obj)
        assert with_skip == pytest.approx(batch, rel=1e-9)
