"""Tests for the Database facade."""

import pytest

from repro import Database, DiversifiedSKQuery, SKQuery
from repro.errors import QueryError, ReproError
from repro.network.graph import NetworkPosition
from repro.spatial.geometry import Point


@pytest.fixture()
def db(grid_network9):
    db = Database(grid_network9, buffer_pages=32)
    db.add_object(NetworkPosition(0, 30.0), {"pizza", "bar"})
    db.add_object(NetworkPosition(0, 60.0), {"pizza"})
    db.add_object(NetworkPosition(5, 20.0), {"pizza", "bar"})
    db.add_object_at_point(Point(150.0, 98.0), {"bar"})
    db.freeze()
    return db


class TestLifecycle:
    def test_query_before_freeze_rejected(self, grid_network9):
        fresh = Database(grid_network9, buffer_pages=8)
        with pytest.raises(ReproError):
            fresh.build_index("sif")

    def test_add_after_freeze_rejected(self, db):
        with pytest.raises(ReproError):
            db.add_object(NetworkPosition(0, 10.0), {"x"})

    def test_buffer_policy_applied(self, grid_network9):
        fresh = Database(grid_network9)
        fresh.freeze()
        assert fresh.disk.buffer.capacity >= 8

    def test_explicit_buffer_respected(self, grid_network9):
        fresh = Database(grid_network9, buffer_pages=123)
        fresh.freeze()
        assert fresh.disk.buffer.capacity == 123


class TestQueries:
    def test_sk_search_end_to_end(self, db):
        index = db.build_index("sif")
        q = SKQuery.create(NetworkPosition(0, 0.0), ["pizza"], 400.0)
        result = db.sk_search(index, q)
        ids = set(result.object_ids())
        assert {0, 1} <= ids
        assert result.stats.io is not None
        assert result.stats.wall_seconds >= 0.0

    def test_sk_search_and_semantics(self, db):
        index = db.build_index("sif", file_prefix="sif-b")
        q = SKQuery.create(NetworkPosition(0, 0.0), ["pizza", "bar"], 1000.0)
        result = db.sk_search(index, q)
        for item in result:
            assert item.object.contains_all({"pizza", "bar"})

    def test_diversified_search_end_to_end(self, db):
        index = db.build_index("sif", file_prefix="sif-c")
        q = DiversifiedSKQuery.create(
            NetworkPosition(0, 0.0), ["pizza"], 1000.0, k=2, lambda_=0.5
        )
        seq = db.diversified_search(index, q, method="seq")
        com = db.diversified_search(index, q, method="com")
        assert seq.objective_value == pytest.approx(com.objective_value)
        assert len(seq) == 2

    def test_dataset_statistics(self, db):
        stats = db.dataset_statistics()
        assert stats["num_objects"] == 4
        assert stats["num_nodes"] == 9
        assert stats["vocabulary_size"] == 2


class TestQueryValidation:
    def test_empty_terms(self):
        with pytest.raises(QueryError):
            SKQuery.create(NetworkPosition(0, 0.0), [], 100.0)

    def test_bad_delta_max(self):
        with pytest.raises(QueryError):
            SKQuery.create(NetworkPosition(0, 0.0), ["a"], 0.0)

    def test_bad_k(self):
        with pytest.raises(QueryError):
            DiversifiedSKQuery.create(NetworkPosition(0, 0.0), ["a"], 100.0, k=1)

    def test_bad_lambda(self):
        with pytest.raises(QueryError):
            DiversifiedSKQuery.create(
                NetworkPosition(0, 0.0), ["a"], 100.0, k=4, lambda_=1.5
            )

    def test_sk_query_view(self):
        q = DiversifiedSKQuery.create(NetworkPosition(0, 0.0), ["a"], 100.0, k=4)
        sk = q.sk_query
        assert sk.terms == q.terms
        assert sk.delta_max == q.delta_max
