"""Tests for SEQ and COM diversified search (paper §4, Algorithm 6)."""

import pytest

from repro.errors import QueryError
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="div-sif")


@pytest.fixture(scope="module")
def queries(tiny_db):
    return generate_diversified_queries(
        tiny_db, WorkloadConfig(num_queries=15, num_keywords=2, k=6, seed=55)
    )


class TestEquivalence:
    def test_com_matches_seq_objective(self, tiny_db, sif, queries):
        """COM's pruning must not change the answer quality (the paper
        argues exactness given distinct distances; ties may swap equal-
        value members, so we compare objective values)."""
        for q in queries:
            seq = tiny_db.diversified_search(sif, q, method="seq")
            com = tiny_db.diversified_search(sif, q, method="com")
            assert com.objective_value == pytest.approx(
                seq.objective_value, rel=1e-6
            ), f"terms={sorted(q.terms)}"

    def test_result_sizes(self, tiny_db, sif, queries):
        for q in queries:
            seq = tiny_db.diversified_search(sif, q, method="seq")
            com = tiny_db.diversified_search(sif, q, method="com")
            assert len(seq) == len(com)
            assert len(seq) <= q.k

    def test_results_satisfy_constraints(self, tiny_db, sif, queries):
        for q in queries:
            for result in (
                tiny_db.diversified_search(sif, q, method="seq"),
                tiny_db.diversified_search(sif, q, method="com"),
            ):
                for item in result:
                    assert item.object.contains_all(q.terms)
                    assert item.distance <= q.delta_max + 1e-9

    def test_no_duplicate_objects(self, tiny_db, sif, queries):
        for q in queries:
            com = tiny_db.diversified_search(sif, q, method="com")
            ids = com.object_ids()
            assert len(ids) == len(set(ids))


class TestPruningBehaviour:
    def test_com_processes_no_more_candidates_than_seq(
        self, tiny_db, sif, queries
    ):
        for q in queries:
            seq = tiny_db.diversified_search(sif, q, method="seq")
            com = tiny_db.diversified_search(sif, q, method="com")
            assert com.stats.candidates <= seq.stats.candidates

    def test_pruning_ablation_same_objective(self, tiny_db, sif, queries):
        """Ablation A2: disabling the diversity pruning changes cost,
        never the answer."""
        for q in queries[:6]:
            on = tiny_db.diversified_search(
                sif, q, method="com", enable_pruning=True
            )
            off = tiny_db.diversified_search(
                sif, q, method="com", enable_pruning=False
            )
            assert on.objective_value == pytest.approx(
                off.objective_value, rel=1e-9
            )
            assert on.stats.candidates <= off.stats.candidates

    def test_methods_validated(self, tiny_db, sif, queries):
        with pytest.raises(QueryError):
            tiny_db.diversified_search(sif, queries[0], method="magic")

    def test_stats_populated(self, tiny_db, sif, queries):
        com = tiny_db.diversified_search(sif, queries[0], method="com")
        assert com.stats.io is not None
        assert com.stats.nodes_accessed > 0
        assert com.method == "COM"
        seq = tiny_db.diversified_search(sif, queries[0], method="seq")
        assert seq.method == "SEQ"


class TestDiversityValue:
    def test_diversified_beats_topk_on_diversity(self, tiny_db, sif):
        """With λ < 1 the diversified result should (weakly) beat the
        plain distance top-k under the objective f."""
        from repro.core.objective import DiversificationObjective
        from repro.core.ine import INEExpansion
        from repro.network.distance import PairwiseDistanceComputer

        queries = generate_diversified_queries(
            tiny_db,
            WorkloadConfig(num_queries=10, num_keywords=1, k=4, lambda_=0.3, seed=77),
        )
        improved = checked = 0
        for q in queries:
            exp = INEExpansion(
                tiny_db.ccam, tiny_db.network, sif, q.position, q.terms, q.delta_max
            )
            candidates = exp.run_to_completion()
            if len(candidates) <= q.k:
                continue
            checked += 1
            topk = candidates[: q.k]
            objective = DiversificationObjective(q.lambda_, q.delta_max)
            comp = PairwiseDistanceComputer(
                tiny_db.network, tiny_db.network, cutoff=2.1 * q.delta_max
            )

            def f(items):
                dists = [it.distance for it in items]
                return objective.objective(
                    dists,
                    lambda i, j: comp.distance(
                        items[i].object.position, items[j].object.position
                    ),
                )

            result = tiny_db.diversified_search(sif, q, method="com")
            assert f(list(result)) >= f(topk) - 1e-9
            if f(list(result)) > f(topk) + 1e-9:
                improved += 1
        if checked:
            assert improved >= 1  # diversification actually does something
