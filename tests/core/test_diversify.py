"""Tests for the greedy max-sum diversification (Algorithm 1)."""

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversify import greedy_diversify
from repro.core.objective import DiversificationObjective
from repro.core.queries import ResultItem
from repro.network.graph import NetworkPosition
from repro.network.objects import SpatioTextualObject


def make_items(dists):
    items = []
    for i, d in enumerate(dists):
        obj = SpatioTextualObject(i, NetworkPosition(0, 0.0), frozenset({"x"}))
        items.append(ResultItem(obj, d))
    return items


def euclid_pairs(points):
    """Pair distance from synthetic 1-d coordinates (by object id)."""

    def pd(a, b):
        return abs(points[a.object.object_id] - points[b.object.object_id])

    return pd


class TestBasics:
    def test_k_zero(self):
        assert greedy_diversify([], 0, DiversificationObjective(0.5, 100), None) == []

    def test_fewer_candidates_than_k(self):
        items = make_items([5.0, 2.0])
        got = greedy_diversify(
            items, 5, DiversificationObjective(0.5, 100), lambda a, b: 1.0
        )
        assert [it.object.object_id for it in got] == [1, 0]  # distance order

    def test_exact_k_returned(self):
        items = make_items([1, 2, 3, 4, 5, 6])
        obj = DiversificationObjective(0.5, 100)
        got = greedy_diversify(items, 4, obj, lambda a, b: 1.0)
        assert len(got) == 4

    def test_pure_diversity_picks_far_pair(self):
        # Points on a line at 0, 1, 2, 100; diversity only.
        points = {0: 0.0, 1: 1.0, 2: 2.0, 3: 100.0}
        items = make_items([10.0, 10.0, 10.0, 10.0])
        obj = DiversificationObjective(0.0, 100)
        got = greedy_diversify(items, 2, obj, euclid_pairs(points))
        assert {it.object.object_id for it in got} == {0, 3}

    def test_pure_relevance_picks_closest(self):
        items = make_items([50.0, 10.0, 90.0, 30.0])
        obj = DiversificationObjective(1.0, 100)
        got = greedy_diversify(items, 2, obj, lambda a, b: 0.0)
        assert {it.object.object_id for it in got} == {1, 3}

    def test_odd_k_appends_closest_remaining(self):
        points = {0: 0.0, 1: 100.0, 2: 50.0, 3: 51.0}
        items = make_items([5.0, 5.0, 1.0, 9.0])
        obj = DiversificationObjective(0.0, 100)
        got = greedy_diversify(items, 3, obj, euclid_pairs(points))
        ids = {it.object.object_id for it in got}
        assert {0, 1} <= ids
        assert len(ids) == 3

    def test_result_sorted_by_distance(self):
        items = make_items([9.0, 1.0, 5.0, 7.0, 3.0, 2.0])
        obj = DiversificationObjective(0.8, 100)
        got = greedy_diversify(items, 4, obj, lambda a, b: 10.0)
        dists = [it.distance for it in got]
        assert dists == sorted(dists)


def brute_force_objective_max(items, k, obj, pd):
    """Exhaustive best f(S) over all size-k subsets."""
    best = 0.0
    for subset in combinations(items, k):
        dists = [it.distance for it in subset]

        def pair(i, j, subset=subset):
            return pd(subset[i], subset[j])

        best = max(best, obj.objective(dists, pair))
    return best


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10**6))
def test_greedy_is_2_approximation(seed):
    """Max-sum greedy guarantees f(greedy) >= f(opt) / 2."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    k = 4
    coords = rng.uniform(0, 100, size=n)
    dists = rng.uniform(0, 100, size=n)
    items = make_items(list(dists))
    points = {i: float(coords[i]) for i in range(n)}
    obj = DiversificationObjective(0.5, 100)
    pd = euclid_pairs(points)
    got = greedy_diversify(items, k, obj, pd)
    got_dists = [it.distance for it in got]

    def pair(i, j):
        return pd(got[i], got[j])

    f_greedy = obj.objective(got_dists, pair)
    f_opt = brute_force_objective_max(items, k, obj, pd)
    assert f_greedy >= f_opt / 2.0 - 1e-9


def matrix_builder_from(pd):
    """Build the n×n pair matrix the array path expects from a scalar pd."""

    def build(pool):
        n = len(pool)
        mat = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(i + 1, n):
                mat[i, j] = mat[j, i] = pd(pool[i], pool[j])
        return mat

    return build


class TestMatrixScalarIdentity:
    """The masked-argmax matrix path returns exactly what the scalar
    lazy-θ path returns — same objects, same order — including under
    ties and unreachable (inf) pairs."""

    def run_both(self, items, k, obj, pd):
        scalar = greedy_diversify(items, k, obj, pd)
        array = greedy_diversify(
            items, k, obj, pd, pair_matrix_builder=matrix_builder_from(pd)
        )
        return scalar, array

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 9))
    def test_random_pools_identical(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 16))
        coords = rng.uniform(0, 100, size=n)
        dists = rng.uniform(0, 100, size=n)
        items = make_items(list(dists))
        points = {i: float(coords[i]) for i in range(n)}
        obj = DiversificationObjective(float(rng.uniform(0, 1)), 100)
        scalar, array = self.run_both(items, k, obj, euclid_pairs(points))
        assert [it.object.object_id for it in array] == [
            it.object.object_id for it in scalar
        ]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.integers(2, 8))
    def test_heavily_tied_pools_identical(self, seed, k):
        """Quantised inputs force θ ties; both paths must break them
        the same way (lexicographically-first pair of the sorted pool)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 14))
        coords = rng.integers(0, 3, size=n).astype(float) * 50.0
        dists = rng.integers(0, 3, size=n).astype(float) * 25.0
        items = make_items(list(dists))
        points = {i: float(coords[i]) for i in range(n)}
        obj = DiversificationObjective(0.5, 100)
        scalar, array = self.run_both(items, k, obj, euclid_pairs(points))
        assert [it.object.object_id for it in array] == [
            it.object.object_id for it in scalar
        ]

    def test_all_pairs_tied(self):
        items = make_items([10.0] * 8)
        obj = DiversificationObjective(0.5, 100)
        scalar, array = self.run_both(items, 4, obj, lambda a, b: 60.0)
        assert [it.object.object_id for it in array] == [
            it.object.object_id for it in scalar
        ]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_inf_pair_distances_identical(self, seed):
        """Unreachable pairs (inf network distance) clamp to full
        diversity in both paths."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        dists = rng.uniform(0, 100, size=n)
        items = make_items(list(dists))
        base = {i: float(rng.uniform(0, 100)) for i in range(n)}
        cut = set(
            int(i) for i in rng.choice(n, size=max(1, n // 3), replace=False)
        )

        def pd(a, b):
            ia, ib = a.object.object_id, b.object.object_id
            if ia in cut or ib in cut:
                return float("inf")
            return abs(base[ia] - base[ib])

        obj = DiversificationObjective(0.5, 100)
        scalar, array = self.run_both(items, 5, obj, pd)
        assert [it.object.object_id for it in array] == [
            it.object.object_id for it in scalar
        ]

    def test_odd_k_extra_identical(self):
        items = make_items([3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3])
        obj = DiversificationObjective(0.3, 100)
        pd = lambda a, b: float(  # noqa: E731
            abs(a.object.object_id - b.object.object_id) * 10.0
        )
        scalar, array = self.run_both(items, 5, obj, pd)
        assert [it.object.object_id for it in array] == [
            it.object.object_id for it in scalar
        ]
