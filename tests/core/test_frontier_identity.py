"""Property tests: CSR-routed INE frontier ≡ dict-adjacency frontier.

The array frontier in :meth:`INEExpansion._run_csr` must be
*observationally identical* to the dict loop — same emission order
(object ids **and** bit-identical distances), same traversal counters
(``nodes_accessed``/``edges_accessed``/``objects_emitted``), same
early-termination point — because COM's Algorithm 6 closes the stream
mid-flight and any divergence in settle order changes which candidate
arrives when.  Hypothesis drives random planar worlds; dedicated cases
force the hard parts a random world rarely hits: heavy distance ties
(uniform weights), unreachable components, and generator closes at
every prefix length.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.ine import INEExpansion
from repro.datasets.generator import populate_objects
from repro.datasets.synthetic import random_planar_network
from repro.network.csr import CSRGraph
from repro.network.graph import NetworkPosition, RoadNetwork
from repro.network.objects import ObjectStore


def build_world(seed):
    rng = np.random.default_rng(seed)
    network = random_planar_network(int(rng.integers(20, 60)), seed=seed)
    db = Database(network, buffer_pages=64)
    populate_objects(
        db.store,
        num_objects=int(rng.integers(30, 120)),
        vocabulary_size=10,
        avg_keywords=3,
        zipf_z=0.7,
        seed=seed + 1,
        num_topics=1,
    )
    db.freeze()
    return db, rng


def random_query(db, rng, num_terms):
    objects = list(db.store)
    obj = objects[int(rng.integers(0, len(objects)))]
    keys = sorted(obj.keywords)
    take = min(num_terms, len(keys))
    idx = rng.choice(len(keys), size=take, replace=False)
    terms = frozenset(keys[int(i)] for i in idx)
    delta_max = float(rng.uniform(500, 6000))
    return obj.position, terms, delta_max


def run_both(db, index, position, terms, delta_max, prefix=None):
    """Run the dict and CSR frontiers; return (emissions, stats) pairs."""
    out = []
    for csr in (None, db.csr_graph()):
        expansion = INEExpansion(
            db.ccam, db.network, index, position, terms, delta_max, csr=csr
        )
        stream = expansion.run()
        if prefix is None:
            items = list(stream)
        else:
            items = []
            for item in stream:
                items.append(item)
                if len(items) >= prefix:
                    break
            stream.close()
        out.append((
            [(it.object.object_id, it.distance) for it in items],
            expansion.stats,
        ))
    return out


def assert_identical(dict_run, csr_run, compare_emitted=True):
    (dict_items, dict_stats), (csr_items, csr_stats) = dict_run, csr_run
    # Bit-identical emission: same objects, same order, == distances.
    assert csr_items == dict_items
    assert csr_stats.nodes_accessed == dict_stats.nodes_accessed
    assert csr_stats.edges_accessed == dict_stats.edges_accessed
    assert csr_stats.terminated_early == dict_stats.terminated_early
    if compare_emitted:
        assert csr_stats.objects_emitted == dict_stats.objects_emitted


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 3))
def test_frontiers_identical_on_random_worlds(seed, num_terms):
    db, rng = build_world(seed % 7)
    index = db.build_index("sif", file_prefix=f"front-{seed}")
    position, terms, delta_max = random_query(db, rng, num_terms)
    dict_run, csr_run = run_both(db, index, position, terms, delta_max)
    assert_identical(dict_run, csr_run)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 8))
def test_frontiers_identical_under_early_close(seed, prefix):
    """COM closes the stream mid-flight; both frontiers must have done
    exactly the same work at every possible close point."""
    db, rng = build_world(seed % 5)
    index = db.build_index("sif", file_prefix=f"close-{seed}")
    position, terms, delta_max = random_query(db, rng, 1)
    dict_run, csr_run = run_both(
        db, index, position, terms, delta_max, prefix=prefix
    )
    assert_identical(dict_run, csr_run)


def _tied_grid(k=4, weight=100.0):
    """A k×k grid with uniform weights: every frontier step is a tie."""
    network = RoadNetwork()
    for i in range(k * k):
        network.add_node(i, float(i % k), float(i // k))
    for r in range(k):
        for c in range(k):
            nid = r * k + c
            if c + 1 < k:
                network.add_edge(nid, nid + 1, weight=weight)
            if r + 1 < k:
                network.add_edge(nid, nid + k, weight=weight)
    return network


def test_frontiers_identical_on_tie_heavy_grid():
    db = Database(_tied_grid(), buffer_pages=32)
    rng = np.random.default_rng(3)
    for edge in list(db.network.edges()):
        db.store.add(
            NetworkPosition(edge.edge_id, float(rng.uniform(0, 90))),
            {"cafe"},
        )
    db.freeze()
    index = db.build_index("sif", file_prefix="tiegrid")
    position = NetworkPosition(0, 10.0)
    dict_run, csr_run = run_both(
        db, index, position, frozenset({"cafe"}), 350.0
    )
    assert_identical(dict_run, csr_run)


def test_frontiers_identical_with_unreachable_component():
    """Objects across a disconnected cut never emit from either loop."""
    network = RoadNetwork()
    for i in range(6):
        network.add_node(i, float(i), 0.0)
    network.add_edge(0, 1, weight=100.0)
    network.add_edge(1, 2, weight=100.0)
    network.add_edge(3, 4, weight=100.0)  # island
    network.add_edge(4, 5, weight=100.0)
    db = Database(network, buffer_pages=32)
    db.store.add(NetworkPosition(1, 50.0), {"cafe"})
    db.store.add(NetworkPosition(2, 50.0), {"cafe"})  # island object
    db.store.add(NetworkPosition(3, 50.0), {"cafe"})  # island object
    db.freeze()
    index = db.build_index("sif", file_prefix="island")
    position = NetworkPosition(0, 10.0)
    dict_run, csr_run = run_both(
        db, index, position, frozenset({"cafe"}), 1e6
    )
    assert_identical(dict_run, csr_run)
    emitted_ids = [oid for oid, _ in dict_run[0]]
    assert len(emitted_ids) == 1  # only the mainland object


def test_database_frontier_mode_switch_round_trips():
    db, _rng = build_world(11)
    assert db.frontier_mode == "csr"
    assert isinstance(db.frontier_csr(), CSRGraph)
    db.use_frontier_mode("dict")
    assert db.frontier_mode == "dict"
    assert db.frontier_csr() is None
    db.use_frontier_mode("CSR")  # case-insensitive
    assert db.frontier_mode == "csr"
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        db.use_frontier_mode("bogus")


def test_diversified_answers_identical_across_frontiers():
    """End to end: SEQ and COM return identical answers and invariant
    counters whichever frontier the database routes expansions over."""
    from repro.core.queries import DiversifiedSKQuery

    results = {}
    for mode in ("dict", "csr"):
        db, rng = build_world(23)
        db.use_frontier_mode(mode)
        index = db.build_index("sif", file_prefix=f"divfront-{mode}")
        position, terms, delta_max = random_query(db, rng, 2)
        query = DiversifiedSKQuery(position, terms, delta_max, 4, 0.5)
        for method in ("seq", "com"):
            r = db.diversified_search(index, query, method=method)
            results[(mode, method)] = (
                [(it.object.object_id, it.distance) for it in r],
                r.objective_value,
                r.stats.candidates,
                r.stats.nodes_accessed,
            )
    for method in ("seq", "com"):
        assert results[("dict", method)] == results[("csr", method)]


# ----------------------------------------------------------------------
# Provider-level structural defects the RoadNetwork cannot express
# ----------------------------------------------------------------------

def _hand_built_csr_with_loops():
    """A CSR whose entry arrays contain a self-loop and parallel edges.

    ``RoadNetwork.add_edge`` rejects both, so this exercises the array
    Dijkstra directly at the provider level — the kernel must shrug
    them off (a self-loop never improves a settled node; parallel
    entries are just two relaxations, cheapest wins).
    """
    node_ids = np.array([0, 1, 2], dtype=np.int64)
    # adjacency: 0→1 (w 1, edge 0), 0→1 (w 5, edge 1, parallel),
    #            0→0 (w 2, edge 2, self-loop), 1→2 (w 1, edge 3)
    indptr = np.array([0, 3, 6, 7], dtype=np.int64)
    indices = np.array([1, 1, 0, 0, 0, 2, 1], dtype=np.int64)
    weights = np.array(
        [1.0, 5.0, 2.0, 1.0, 5.0, 1.0, 1.0], dtype=np.float64
    )
    edge_ids = np.array([0, 1, 2, 0, 1, 3, 3], dtype=np.int64)
    return CSRGraph(node_ids, indptr, indices, weights, edge_ids)


def test_seeded_distances_tolerate_self_loops_and_parallel_edges():
    csr = _hand_built_csr_with_loops()
    dist = csr.seeded_distances({0: 0.0})
    assert dist == {0: 0.0, 1: 1.0, 2: 2.0}
    # Under a cutoff the same contract holds (settled nodes only).
    assert csr.seeded_distances({0: 0.0}, cutoff=1.0) == {0: 0.0, 1: 1.0}


def test_validate_roundtrip_rejects_structural_defects():
    from repro.errors import GraphError

    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)
    network.add_node(1, 1.0, 0.0)
    network.add_node(2, 2.0, 0.0)
    network.add_edge(0, 1, weight=1.0)
    network.add_edge(1, 2, weight=1.0)
    csr = _hand_built_csr_with_loops()
    with pytest.raises(GraphError):
        csr.validate_roundtrip(network)
