"""Incremental diversified top-k: byte-identity with re-query.

The contract under test is the ISSUE's acceptance property: after *any*
interleaving of object inserts, object deletes and edge reweights, the
incremental maintainer's answer is identical — same object ids in the
same order, same objective value — to running the diversified query
from scratch against the updated database.
"""

import random

import numpy as np
import pytest

from repro.core.incremental import IncrementalDiversifiedTopK
from repro.datasets.catalog import DatasetProfile, build_dataset
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

SMALL_PROFILE = DatasetProfile(
    name="TINY-DYN",
    network_kind="planar",
    num_nodes=120,
    neighbours=3,
    num_objects=400,
    vocabulary_size=80,
    avg_keywords=6,
    zipf_z=1.0,
    num_topics=8,
    seed=5,
)


def fresh_db():
    return build_dataset(SMALL_PROFILE)


def apply_random_update(db, index, rng):
    """Apply one random committed update; returns its kind."""
    kind = rng.choice(["insert", "insert", "delete", "edge_weight"])
    if kind == "insert":
        donor, keyword_donor = rng.sample(list(db.store), 2)
        db.insert_object(
            donor.position, set(keyword_donor.keywords), indexes=(index,)
        )
    elif kind == "delete":
        victim = rng.choice(list(db.store))
        db.delete_object(victim.object_id, indexes=(index,))
    else:
        edge = rng.choice(list(db.network.edges()))
        factor = float(np.exp(rng.uniform(np.log(0.5), np.log(2.0))))
        db.update_edge_weight(edge.edge_id, factor * edge.weight)
    return kind


def assert_identical(incremental, scratch, label):
    assert incremental.object_ids() == scratch.object_ids(), label
    assert incremental.objective_value == pytest.approx(
        scratch.objective_value, abs=1e-12
    ), label


@pytest.mark.parametrize("seed", [11, 42, 101])
def test_incremental_equals_requery_after_interleaved_updates(seed):
    db = fresh_db()
    index = db.build_index("sif", file_prefix=f"incr-{seed}")
    rng = random.Random(seed)
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=5, num_keywords=2, k=4, seed=seed)
    )
    maintainers = [
        IncrementalDiversifiedTopK(db, index, q) for q in queries
    ]
    # Round 0: no updates yet — bootstrap must already agree.
    for q, m in zip(queries, maintainers):
        assert_identical(
            m.current(),
            db.diversified_search(index, q, method="seq"),
            (seed, "bootstrap", q),
        )
    for round_no in range(4):
        for _ in range(4):
            apply_random_update(db, index, rng)
        for q, m in zip(queries, maintainers):
            assert_identical(
                m.current(),
                db.diversified_search(index, q, method="seq"),
                (seed, round_no, q),
            )
    # Both maintenance paths must have been exercised across seeds and
    # rounds for the property to mean anything; with 16 updates at a
    # 25% reweight rate a full recompute is near-certain, and inserts
    # and deletes guarantee incremental folds.
    counters = [m.counters() for m in maintainers]
    assert sum(c["refreshes"] for c in counters) > 0
    assert sum(c["incremental_refreshes"] for c in counters) > 0


def test_insert_then_delete_in_one_batch_is_a_noop(seed=7):
    db = fresh_db()
    index = db.build_index("sif", file_prefix="incr-insdel")
    rng = random.Random(seed)
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=3, num_keywords=2, k=4, seed=seed)
    )
    maintainers = [
        IncrementalDiversifiedTopK(db, index, q) for q in queries
    ]
    before = [m.current() for m in maintainers]
    donor, keyword_donor = rng.sample(list(db.store), 2)
    obj = db.insert_object(
        donor.position, set(keyword_donor.keywords), indexes=(index,)
    )
    db.delete_object(obj.object_id, indexes=(index,))
    for m, prev, q in zip(maintainers, before, queries):
        after = m.current()
        assert_identical(after, prev, q)
        assert_identical(
            after, db.diversified_search(index, q, method="seq"), q
        )


def test_irrelevant_reweight_keeps_pool_incremental():
    """A reweighted edge far outside every query radius must not force
    a full recompute."""
    db = fresh_db()
    index = db.build_index("sif", file_prefix="incr-far")
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=4, num_keywords=2, k=4, seed=3)
    )
    maintainers = [
        IncrementalDiversifiedTopK(db, index, q) for q in queries
    ]
    for m in maintainers:
        m.current()
    # Pick the edge whose midpoint is farthest from every query point
    # and nudge it by 1% — geometrically irrelevant to all of them.
    from repro.spatial.geometry import Point

    q_points = [db.network.position_point(q.position) for q in queries]
    far_edge = max(
        db.network.edges(),
        key=lambda e: min(
            Point(
                (e.p1.x + e.p2.x) / 2.0, (e.p1.y + e.p2.y) / 2.0
            ).distance_to(p)
            for p in q_points
        ),
    )
    db.update_edge_weight(far_edge.edge_id, far_edge.weight * 1.01)
    for q, m in zip(queries, maintainers):
        result = m.current()
        assert_identical(
            result, db.diversified_search(index, q, method="seq"), q
        )
    counters = [m.counters() for m in maintainers]
    # At least one maintainer must have classified the far edge as
    # irrelevant (the conservative geometric test can keep a few).
    assert any(c["full_recomputes"] == 0 for c in counters)


def test_counters_and_pool_exposed():
    db = fresh_db()
    index = db.build_index("sif", file_prefix="incr-meta")
    (query,) = generate_diversified_queries(
        db, WorkloadConfig(num_queries=1, num_keywords=2, k=4, seed=9)
    )
    m = IncrementalDiversifiedTopK(db, index, query)
    result = m.current()
    assert m.epoch == db.data_version
    assert m.pool_size >= len(result.items)
    assert result.stats.epoch == m.epoch
    c = m.counters()
    assert c["refreshes"] == 0  # bootstrap is not a refresh
    donor = next(iter(db.store))
    db.insert_object(donor.position, {"nope-kw"}, indexes=(index,))
    m.current()
    assert m.counters()["refreshes"] == 1
    assert m.epoch == db.data_version
