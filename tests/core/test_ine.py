"""Tests for the INE expansion (Algorithm 3) against brute force."""


import pytest

from repro.core.ine import INEExpansion
from repro.network.distance import network_distance
from repro.network.graph import NetworkPosition
from repro.workloads.queries import WorkloadConfig, generate_sk_queries


def brute_force_sk(db, position, terms, delta_max):
    """Ground truth: scan every object, exact distance, AND filter."""
    out = {}
    for obj in db.store:
        if not obj.contains_all(terms):
            continue
        d = network_distance(
            db.network, db.network, position, obj.position, cutoff=delta_max
        )
        if d <= delta_max:
            out[obj.object_id] = d
    return out


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="ine-sif")


class TestCorrectness:
    def test_matches_brute_force_on_workload(self, tiny_db, sif):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=25, num_keywords=2, seed=77)
        )
        for q in queries:
            exp = INEExpansion(
                tiny_db.ccam, tiny_db.network, sif, q.position, q.terms, q.delta_max
            )
            got = {it.object.object_id: it.distance for it in exp.run()}
            expected = brute_force_sk(tiny_db, q.position, q.terms, q.delta_max)
            assert set(got) == set(expected)
            for oid, d in expected.items():
                assert got[oid] == pytest.approx(d, abs=1e-6)

    def test_stream_is_sorted_by_distance(self, tiny_db, sif):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=10, num_keywords=1, seed=31)
        )
        for q in queries:
            exp = INEExpansion(
                tiny_db.ccam, tiny_db.network, sif, q.position, q.terms, q.delta_max
            )
            dists = [it.distance for it in exp.run()]
            assert dists == sorted(dists)

    def test_all_results_within_delta_max(self, tiny_db, sif):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=10, num_keywords=1, seed=13)
        )
        for q in queries:
            exp = INEExpansion(
                tiny_db.ccam, tiny_db.network, sif, q.position, q.terms, q.delta_max
            )
            for it in exp.run():
                assert it.distance <= q.delta_max + 1e-9
                assert it.object.contains_all(q.terms)

    def test_no_duplicates(self, tiny_db, sif):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=10, num_keywords=1, seed=99)
        )
        for q in queries:
            exp = INEExpansion(
                tiny_db.ccam, tiny_db.network, sif, q.position, q.terms, q.delta_max
            )
            ids = [it.object.object_id for it in exp.run()]
            assert len(ids) == len(set(ids))


class TestSmallNetworks:
    def test_query_on_object_edge(self, line_network):
        from repro.core.database import Database

        db = Database(line_network, buffer_pages=32)
        db.add_object(NetworkPosition(0, 20.0), {"a"})
        db.add_object(NetworkPosition(0, 80.0), {"a"})
        db.add_object(NetworkPosition(2, 50.0), {"a"})
        db.freeze()
        index = db.build_index("sif")
        exp = INEExpansion(
            db.ccam, db.network, index, NetworkPosition(0, 50.0),
            frozenset({"a"}), 400.0,
        )
        items = list(exp.run())
        assert [it.object.object_id for it in items] == [0, 1, 2]
        assert items[0].distance == pytest.approx(30.0)
        assert items[1].distance == pytest.approx(30.0)
        assert items[2].distance == pytest.approx(200.0)

    def test_delta_max_cuts_off(self, line_network):
        from repro.core.database import Database

        db = Database(line_network, buffer_pages=32)
        db.add_object(NetworkPosition(0, 10.0), {"a"})
        db.add_object(NetworkPosition(3, 90.0), {"a"})
        db.freeze()
        index = db.build_index("sif")
        exp = INEExpansion(
            db.ccam, db.network, index, NetworkPosition(0, 0.0),
            frozenset({"a"}), 100.0,
        )
        items = list(exp.run())
        assert [it.object.object_id for it in items] == [0]
        assert exp.stats.terminated_early is False

    def test_relaxation_through_second_endpoint(self, grid_network9):
        """An object's distance must improve when the far end-node
        offers a shorter path."""
        from repro.core.database import Database

        db = Database(grid_network9, buffer_pages=32)
        # Edge between nodes 2 (200,0) and 5 (200,100); object near node 5.
        edge = grid_network9.edge_between(2, 5)
        db.add_object(NetworkPosition(edge.edge_id, 90.0), {"a"})
        db.freeze()
        index = db.build_index("sif")
        # Query at node 8 (200,200): path to node 5 is 100, to node 2 is 200.
        q = grid_network9.node_position(8)
        exp = INEExpansion(
            db.ccam, db.network, index, q, frozenset({"a"}), 1000.0
        )
        items = list(exp.run())
        assert len(items) == 1
        # Via node 5: 100 + (100 - 90) = 110; via node 2 it would be 290.
        assert items[0].distance == pytest.approx(110.0)


class TestStats:
    def test_stats_populated(self, tiny_db, sif):
        q = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=1, num_keywords=2, seed=3)
        )[0]
        exp = INEExpansion(
            tiny_db.ccam, tiny_db.network, sif, q.position, q.terms, q.delta_max
        )
        items = list(exp.run())
        assert exp.stats.nodes_accessed > 0
        assert exp.stats.edges_accessed > 0
        assert exp.stats.objects_emitted == len(items)

    def test_closing_generator_stops_expansion(self, tiny_db, sif):
        # Query the most frequent keyword with a wide radius so the
        # stream is guaranteed to hold several results.
        freq = tiny_db.store.keyword_frequencies()
        top_term = max(freq, key=freq.get)
        position = next(iter(tiny_db.store)).position
        terms = frozenset({top_term})
        full = INEExpansion(
            tiny_db.ccam, tiny_db.network, sif, position, terms, 8000.0
        )
        n_full = len(list(full.run()))
        assert n_full >= 2
        partial = INEExpansion(
            tiny_db.ccam, tiny_db.network, sif, position, terms, 8000.0
        )
        gen = partial.run()
        next(gen)
        gen.close()
        assert partial.stats.nodes_accessed < full.stats.nodes_accessed
