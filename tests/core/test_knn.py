"""Tests for the boolean SK kNN search."""

import pytest

from repro.core.knn import SKkNNQuery
from repro.errors import QueryError
from repro.network.distance import network_distance


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="knn-sif")


def brute_force_knn(db, position, terms, k):
    scored = []
    for obj in db.store:
        if obj.contains_all(terms):
            d = network_distance(db.network, db.network, position, obj.position)
            scored.append((d, obj.object_id))
    scored.sort()
    return scored[:k]


class TestValidation:
    def test_empty_terms(self, tiny_db):
        pos = next(iter(tiny_db.store)).position
        with pytest.raises(QueryError):
            SKkNNQuery.create(pos, [], k=3)

    def test_bad_k(self, tiny_db):
        pos = next(iter(tiny_db.store)).position
        with pytest.raises(QueryError):
            SKkNNQuery.create(pos, ["a"], k=0)

    def test_bad_horizon(self, tiny_db):
        pos = next(iter(tiny_db.store)).position
        with pytest.raises(QueryError):
            SKkNNQuery.create(pos, ["a"], k=1, horizon=-5)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_matches_brute_force(self, tiny_db, sif, k):
        freq = tiny_db.store.keyword_frequencies()
        top_term = max(freq, key=freq.get)
        for obj in list(tiny_db.store)[:5]:
            query = SKkNNQuery.create(obj.position, [top_term], k=k)
            result = tiny_db.sk_knn(sif, query)
            expected = brute_force_knn(tiny_db, obj.position, {top_term}, k)
            assert len(result) == len(expected)
            got = [(it.distance, it.object.object_id) for it in result]
            for (gd, _gid), (ed, _eid) in zip(got, expected):
                assert gd == pytest.approx(ed, abs=1e-6)

    def test_ordered_by_distance(self, tiny_db, sif):
        obj = next(iter(tiny_db.store))
        term = sorted(obj.keywords)[0]
        result = tiny_db.sk_knn(sif, SKkNNQuery.create(obj.position, [term], k=6))
        dists = [it.distance for it in result]
        assert dists == sorted(dists)

    def test_fewer_matches_than_k(self, tiny_db, sif):
        """A selective conjunction with a bounded horizon returns what
        exists without spinning forever."""
        obj = next(iter(tiny_db.store))
        terms = sorted(obj.keywords)[:3] or sorted(obj.keywords)
        query = SKkNNQuery.create(obj.position, terms, k=50, horizon=20000.0)
        result = tiny_db.sk_knn(sif, query)
        assert len(result) <= 50
        assert all(it.object.contains_all(frozenset(terms)) for it in result)

    def test_adaptive_radius_growth(self, tiny_db, sif):
        """A tiny initial radius must still find the answers."""
        freq = tiny_db.store.keyword_frequencies()
        top_term = max(freq, key=freq.get)
        obj = next(iter(tiny_db.store))
        small = tiny_db.sk_knn(
            sif,
            SKkNNQuery.create(obj.position, [top_term], k=4,
                              initial_radius=10.0),
        )
        large = tiny_db.sk_knn(
            sif,
            SKkNNQuery.create(obj.position, [top_term], k=4,
                              initial_radius=50000.0),
        )
        assert [it.object.object_id for it in small] == [
            it.object.object_id for it in large
        ]

    def test_kth_distance(self, tiny_db, sif):
        freq = tiny_db.store.keyword_frequencies()
        top_term = max(freq, key=freq.get)
        obj = next(iter(tiny_db.store))
        result = tiny_db.sk_knn(
            sif, SKkNNQuery.create(obj.position, [top_term], k=3)
        )
        if result.items:
            assert result.kth_distance == result.items[-1].distance
