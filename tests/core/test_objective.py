"""Tests for the diversification objective and its pruning bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.objective import DiversificationObjective
from repro.errors import QueryError

dist = st.floats(min_value=0.0, max_value=1500.0, allow_nan=False)


class TestValidation:
    def test_bad_lambda(self):
        with pytest.raises(QueryError):
            DiversificationObjective(1.5, 100)

    def test_bad_delta_max(self):
        with pytest.raises(QueryError):
            DiversificationObjective(0.5, 0)


class TestComponents:
    def test_relevance_extremes(self):
        obj = DiversificationObjective(0.8, 1000)
        assert obj.relevance(0) == 1.0
        assert obj.relevance(1000) == 0.0
        assert obj.relevance(2000) == 0.0  # clamped

    def test_diversity_extremes(self):
        obj = DiversificationObjective(0.8, 1000)
        assert obj.diversity(0) == 0.0
        assert obj.diversity(2000) == 1.0
        assert obj.diversity(99999) == 1.0  # clamped

    def test_theta_pure_relevance(self):
        obj = DiversificationObjective(1.0, 1000)
        assert obj.theta(0, 0, 500) == 1.0
        assert obj.theta(1000, 1000, 500) == 0.0

    def test_theta_pure_diversity(self):
        obj = DiversificationObjective(0.0, 1000)
        assert obj.theta(0, 0, 2000) == 1.0
        assert obj.theta(0, 0, 0) == 0.0

    def test_theta_in_unit_interval(self):
        obj = DiversificationObjective(0.8, 1000)
        assert 0.0 <= obj.theta(300, 700, 800) <= 1.0

    @given(dist, dist, dist, dist)
    def test_theta_monotone_in_pair_distance(self, du, dv, d1, d2):
        obj = DiversificationObjective(0.6, 1000)
        lo, hi = sorted((d1, d2))
        assert obj.theta(du, dv, lo) <= obj.theta(du, dv, hi) + 1e-12

    @given(dist, dist, dist)
    def test_theta_antitone_in_query_distance(self, du, dv, pair):
        obj = DiversificationObjective(0.6, 1000)
        assert obj.theta(du, dv, pair) >= obj.theta(du + 100, dv, pair) - 1e-12


class TestObjectiveValue:
    def test_empty_and_singleton(self):
        obj = DiversificationObjective(0.8, 1000)
        assert obj.objective([], lambda i, j: 0) == 0.0
        assert obj.objective([0.0], lambda i, j: 0) == pytest.approx(0.8)

    def test_pair(self):
        obj = DiversificationObjective(0.5, 1000)
        # rel = (1 + 0.5)/2 = 0.75; div = 1000/2000 = 0.5.
        value = obj.objective([0.0, 500.0], lambda i, j: 1000.0)
        assert value == pytest.approx(0.5 * 0.75 + 0.5 * 0.5)

    def test_average_over_pairs(self):
        obj = DiversificationObjective(0.0, 1000)
        dists = [0.0, 0.0, 0.0]
        pair = {(0, 1): 2000.0, (0, 2): 0.0, (1, 2): 0.0}
        value = obj.objective(dists, lambda i, j: pair[(min(i, j), max(i, j))])
        assert value == pytest.approx(1.0 / 3.0)


class TestPruningBounds:
    """The §4.3 bounds must dominate every realisable θ."""

    @given(dist, dist, st.floats(0, 3000, allow_nan=False))
    def test_unvisited_bound_dominates(self, d1, d2, pair):
        obj = DiversificationObjective(0.8, 1000)
        gamma = min(d1, d2)  # both unvisited: at distance >= gamma
        assert obj.theta(d1, d2, pair) <= obj.theta_ub_unvisited(gamma) + 1e-12

    @given(dist, dist)
    def test_visited_bound_dominates(self, d_o, d_u):
        obj = DiversificationObjective(0.8, 1000)
        if d_u > 1000:
            return  # unvisited objects satisfy the range constraint
        gamma = d_u  # the unvisited object arrives at distance >= gamma
        pair_ub = d_o + 1000  # triangle inequality through the query
        for pair in (0.0, pair_ub / 2, pair_ub):
            assert (
                obj.theta(d_o, d_u, pair)
                <= obj.theta_ub_visited(d_o, gamma) + 1e-12
            )

    def test_bounds_decay_with_gamma(self):
        obj = DiversificationObjective(0.8, 1000)
        bounds = [obj.theta_ub_unvisited(g) for g in (0, 250, 500, 750, 1000)]
        assert bounds == sorted(bounds, reverse=True)

    def test_larger_lambda_decays_faster(self):
        """Fig. 15's early-termination claim: a larger λ shrinks the
        unvisited bound faster as the frontier advances."""
        lo = DiversificationObjective(0.5, 1000)
        hi = DiversificationObjective(0.9, 1000)
        drop_lo = lo.theta_ub_unvisited(0) - lo.theta_ub_unvisited(900)
        drop_hi = hi.theta_ub_unvisited(0) - hi.theta_ub_unvisited(900)
        assert drop_hi > drop_lo
