"""Tests for the diversification objective and its pruning bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.objective import DiversificationObjective
from repro.errors import QueryError

dist = st.floats(min_value=0.0, max_value=1500.0, allow_nan=False)


class TestValidation:
    def test_bad_lambda(self):
        with pytest.raises(QueryError):
            DiversificationObjective(1.5, 100)

    def test_bad_delta_max(self):
        with pytest.raises(QueryError):
            DiversificationObjective(0.5, 0)


class TestComponents:
    def test_relevance_extremes(self):
        obj = DiversificationObjective(0.8, 1000)
        assert obj.relevance(0) == 1.0
        assert obj.relevance(1000) == 0.0
        assert obj.relevance(2000) == 0.0  # clamped

    def test_diversity_extremes(self):
        obj = DiversificationObjective(0.8, 1000)
        assert obj.diversity(0) == 0.0
        assert obj.diversity(2000) == 1.0
        assert obj.diversity(99999) == 1.0  # clamped

    def test_theta_pure_relevance(self):
        obj = DiversificationObjective(1.0, 1000)
        assert obj.theta(0, 0, 500) == 1.0
        assert obj.theta(1000, 1000, 500) == 0.0

    def test_theta_pure_diversity(self):
        obj = DiversificationObjective(0.0, 1000)
        assert obj.theta(0, 0, 2000) == 1.0
        assert obj.theta(0, 0, 0) == 0.0

    def test_theta_in_unit_interval(self):
        obj = DiversificationObjective(0.8, 1000)
        assert 0.0 <= obj.theta(300, 700, 800) <= 1.0

    @given(dist, dist, dist, dist)
    def test_theta_monotone_in_pair_distance(self, du, dv, d1, d2):
        obj = DiversificationObjective(0.6, 1000)
        lo, hi = sorted((d1, d2))
        assert obj.theta(du, dv, lo) <= obj.theta(du, dv, hi) + 1e-12

    @given(dist, dist, dist)
    def test_theta_antitone_in_query_distance(self, du, dv, pair):
        obj = DiversificationObjective(0.6, 1000)
        assert obj.theta(du, dv, pair) >= obj.theta(du + 100, dv, pair) - 1e-12


class TestObjectiveValue:
    def test_empty_and_singleton(self):
        obj = DiversificationObjective(0.8, 1000)
        assert obj.objective([], lambda i, j: 0) == 0.0
        assert obj.objective([0.0], lambda i, j: 0) == pytest.approx(0.8)

    def test_pair(self):
        obj = DiversificationObjective(0.5, 1000)
        # rel = (1 + 0.5)/2 = 0.75; div = 1000/2000 = 0.5.
        value = obj.objective([0.0, 500.0], lambda i, j: 1000.0)
        assert value == pytest.approx(0.5 * 0.75 + 0.5 * 0.5)

    def test_average_over_pairs(self):
        obj = DiversificationObjective(0.0, 1000)
        dists = [0.0, 0.0, 0.0]
        pair = {(0, 1): 2000.0, (0, 2): 0.0, (1, 2): 0.0}
        value = obj.objective(dists, lambda i, j: pair[(min(i, j), max(i, j))])
        assert value == pytest.approx(1.0 / 3.0)


class TestPruningBounds:
    """The §4.3 bounds must dominate every realisable θ."""

    @given(dist, dist, st.floats(0, 3000, allow_nan=False))
    def test_unvisited_bound_dominates(self, d1, d2, pair):
        obj = DiversificationObjective(0.8, 1000)
        gamma = min(d1, d2)  # both unvisited: at distance >= gamma
        assert obj.theta(d1, d2, pair) <= obj.theta_ub_unvisited(gamma) + 1e-12

    @given(dist, dist)
    def test_visited_bound_dominates(self, d_o, d_u):
        obj = DiversificationObjective(0.8, 1000)
        if d_u > 1000:
            return  # unvisited objects satisfy the range constraint
        gamma = d_u  # the unvisited object arrives at distance >= gamma
        pair_ub = d_o + 1000  # triangle inequality through the query
        for pair in (0.0, pair_ub / 2, pair_ub):
            assert (
                obj.theta(d_o, d_u, pair)
                <= obj.theta_ub_visited(d_o, gamma) + 1e-12
            )

    def test_bounds_decay_with_gamma(self):
        obj = DiversificationObjective(0.8, 1000)
        bounds = [obj.theta_ub_unvisited(g) for g in (0, 250, 500, 750, 1000)]
        assert bounds == sorted(bounds, reverse=True)

    def test_larger_lambda_decays_faster(self):
        """Fig. 15's early-termination claim: a larger λ shrinks the
        unvisited bound faster as the frontier advances."""
        lo = DiversificationObjective(0.5, 1000)
        hi = DiversificationObjective(0.9, 1000)
        drop_lo = lo.theta_ub_unvisited(0) - lo.theta_ub_unvisited(900)
        drop_hi = hi.theta_ub_unvisited(0) - hi.theta_ub_unvisited(900)
        assert drop_hi > drop_lo


class TestArrayScoring:
    """The vectorized twins are bit-identical to the scalar methods."""

    @given(st.lists(dist, min_size=1, max_size=40), st.floats(0.0, 1.0))
    def test_relevance_array_bit_identical(self, dists, lam):
        import numpy as np

        obj = DiversificationObjective(lam, 1000)
        got = obj.relevance_array(np.asarray(dists, dtype=np.float64))
        assert got.tolist() == [obj.relevance(d) for d in dists]

    @given(st.lists(dist, min_size=1, max_size=40))
    def test_diversity_array_bit_identical(self, pairs):
        import numpy as np

        obj = DiversificationObjective(0.7, 1000)
        got = obj.diversity_array(np.asarray(pairs, dtype=np.float64))
        assert got.tolist() == [obj.diversity(p) for p in pairs]

    @given(dist, st.lists(dist, min_size=1, max_size=25))
    def test_theta_batch_bit_identical(self, d_u, dists_v):
        import numpy as np

        obj = DiversificationObjective(0.6, 800)
        dv = np.asarray(dists_v, dtype=np.float64)
        pairs = d_u + dv  # the triangle bound COM feeds it
        got = obj.theta_batch(d_u, dv, pairs)
        want = [
            obj.theta(d_u, v, d_u + v) for v in dists_v
        ]
        assert got.tolist() == want

    @given(st.lists(dist, min_size=2, max_size=12), st.integers(0, 10**6))
    def test_theta_matrix_bit_identical(self, dists, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        obj = DiversificationObjective(0.7, 1000)
        n = len(dists)
        pair = rng.uniform(0.0, 2000.0, size=(n, n))
        pair = (pair + pair.T) / 2.0
        theta = obj.theta_matrix(np.asarray(dists, dtype=np.float64), pair)
        for i in range(n):
            for j in range(n):
                assert theta[i, j] == obj.theta(
                    dists[i], dists[j], float(pair[i, j])
                ), (i, j)

    def test_inf_pair_distances_clamp_like_scalar(self):
        import math

        import numpy as np

        obj = DiversificationObjective(0.5, 100)
        inf = math.inf
        got = obj.diversity_array(np.asarray([inf, 0.0, 250.0]))
        assert got.tolist() == [
            obj.diversity(inf), obj.diversity(0.0), obj.diversity(250.0)
        ]

    def test_requires_numpy(self, monkeypatch):
        import repro.nplib as nplib
        from repro.errors import DependencyError

        monkeypatch.setattr(nplib, "np", None)
        obj = DiversificationObjective(0.5, 100)
        with pytest.raises(DependencyError, match="numpy"):
            obj.relevance_array([1.0])
