"""Property-style equivalence of COM and SEQ on randomized instances.

The paper argues COM's pruning and early termination are exact (given
distinct distances, §4.3); this exercises every COM variant — pruning
on/off, landmarks on/off — against the SEQ objective on small random
road networks, with all pairwise distances served through one shared
*bounded* :class:`DistanceCache`, so cross-query reuse and LRU
eviction cannot change any answer either.
"""

import numpy as np
import pytest

from repro import Database, DiversifiedSKQuery
from repro.datasets.synthetic import random_planar_network
from repro.network.distance import single_source_distances
from repro.network.graph import NetworkPosition
from repro.network.landmarks import LandmarkIndex

VOCAB = ["cafe", "fuel", "park", "pizza", "books"]
CACHE_ENTRIES = 4_000


def build_instance(seed):
    rng = np.random.default_rng(seed)
    network = random_planar_network(36, seed=seed)
    db = Database(network, buffer_pages=64)
    edges = list(network.edges())
    for _ in range(70):
        edge = edges[int(rng.integers(len(edges)))]
        offset = float(rng.uniform(0.0, edge.weight))
        terms = rng.choice(len(VOCAB), size=2, replace=False)
        db.add_object(
            NetworkPosition(edge.edge_id, offset), [VOCAB[int(t)] for t in terms]
        )
    db.freeze()
    index = db.build_index("sif", file_prefix=f"equiv-{seed}")
    return db, index, rng, edges


def make_query(db, rng, edges):
    edge = edges[int(rng.integers(len(edges)))]
    q_pos = NetworkPosition(edge.edge_id, float(rng.uniform(0.0, edge.weight)))
    reach = single_source_distances(db.network, db.network, q_pos)
    radius = max(float(np.quantile(list(reach.values()), 0.7)), 1e-3)
    term = VOCAB[int(rng.integers(len(VOCAB)))]
    return DiversifiedSKQuery.create(q_pos, [term], radius, k=4, lambda_=0.7)


@pytest.mark.parametrize("seed", [3, 11, 29, 41])
def test_com_variants_match_seq_through_shared_cache(seed):
    db, index, rng, edges = build_instance(seed)
    cache = db.use_shared_distance_cache(max_entries=CACHE_ENTRIES)
    landmarks = LandmarkIndex(db.network, db.network, num_landmarks=3)
    for _ in range(4):
        query = make_query(db, rng, edges)
        seq = db.diversified_search(index, query, method="seq")
        variants = {
            "pruning": db.diversified_search(index, query, method="com"),
            "no-pruning": db.diversified_search(
                index, query, method="com", enable_pruning=False
            ),
            "landmarks": db.diversified_search(
                index, query, method="com", landmarks=landmarks
            ),
        }
        for name, com in variants.items():
            assert com.objective_value == pytest.approx(
                seq.objective_value, rel=1e-6, abs=1e-9
            ), f"seed={seed} variant={name} terms={sorted(query.terms)}"
            assert len(com) == len(seq)
        # The shared cache honoured its bound throughout (a lone
        # oversized map is the documented exception).
        assert cache.entries <= CACHE_ENTRIES or len(cache) == 1
    # The shared cache actually served cross-variant lookups.
    assert cache.hits > 0
